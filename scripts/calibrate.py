"""Calibration matrix: run all baselines + AvgPipe candidates on each
workload and print times/memory so the simcfg constants can be tuned.

Usage: python scripts/calibrate.py [workload] [act_scale] [param_scale] [cap_mb]
"""
import sys
from dataclasses import replace

from repro.core.simcfg import SIM_CALIBRATIONS, calibration_for
from repro.baselines import BASELINE_SYSTEMS, simulate_baseline, choose_baseline_micro
from repro.core.profiler import Profiler
from repro.schedules.base import AdvanceFPSchedule

def show(cal):
    print(f'== {cal.workload} act={cal.activation_byte_scale} param={cal.param_byte_scale} cap={cal.memory_capacity_bytes/2**20:.0f}MB')
    print('   partition', cal.partition().boundaries)
    rows = {}
    for name, sys_ in BASELINE_SYSTEMS.items():
        try:
            if sys_.schedule is None:
                res = simulate_baseline(sys_, cal); m='-'
            else:
                m = choose_baseline_micro(sys_, cal)
                res = simulate_baseline(sys_, cal, num_micro=m)
            rows[name] = (m, res)
            oom = 'OOM!' if res.oom else ''
            print(f'   {name:14s} M={m!s:3s}: batch {res.batch_time*1000:8.1f}ms peak {max(res.peak_memory)/2**20:7.1f}MB util {res.avg_utilization:.2f} {oom}')
        except Exception as e:
            print(f'   {name:14s} no feasible setting ({type(e).__name__})')
    # AvgPipe candidates
    prof = Profiler(cal.layer_costs(), cal.partition(), AdvanceFPSchedule(2),
                    cal.cluster_spec(), cal.batch_size,
                    activation_byte_scale=cal.activation_byte_scale,
                    param_byte_scale=cal.param_byte_scale,
                    stash_multiplier=cal.stash_multiplier,
                    optimizer_state_factor=cal.optimizer_state_factor,
                    with_reference_model=True)
    for m, n in [(64,2),(64,3),(32,2),(32,3),(16,2),(16,3),(8,2),(4,2),(1,2)]:
        if cal.batch_size % m: continue
        res = prof.run_setting(m, n, iterations=2)
        oom = 'OOM!' if res.oom else ''
        print(f'   avgpipe M={m:3d} N={n}: batch {res.batch_time*1000:8.1f}ms peak {max(res.peak_memory)/2**20:7.1f}MB util {res.avg_utilization:.2f} {oom}')

if __name__ == '__main__':
    if len(sys.argv) > 1:
        cal = calibration_for(sys.argv[1])
        if len(sys.argv) > 2: cal = replace(cal, activation_byte_scale=float(sys.argv[2]))
        if len(sys.argv) > 3: cal = replace(cal, param_byte_scale=float(sys.argv[3]))
        if len(sys.argv) > 4: cal = replace(cal, memory_capacity_bytes=int(float(sys.argv[4])*2**20))
        show(cal)
    else:
        for wl in SIM_CALIBRATIONS:
            show(calibration_for(wl))
