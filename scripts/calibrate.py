"""Thin shim over :mod:`repro.core.calibrate` (kept for muscle memory).

The calibration matrix is a library + CLI command now:

    python -m repro calibrate [workload] [--act-scale X] [--param-scale Y] [--cap-mib Z]

Positional arguments mirror the old script: workload, activation byte
scale, param byte scale, capacity in MiB.
"""
import sys

from repro.cli import main

if __name__ == "__main__":
    argv = ["calibrate"]
    args = sys.argv[1:]
    if args:
        argv.append(args[0])
    if len(args) > 1:
        argv += ["--act-scale", args[1]]
    if len(args) > 2:
        argv += ["--param-scale", args[2]]
    if len(args) > 3:
        argv += ["--cap-mib", args[3]]
    sys.exit(main(argv))
