"""Ablation: asynchronous vs synchronous reference-model updates.

DESIGN.md ablation #3.  The paper sends local updates through message
queues "in an asynchronous manner" so the reference process never blocks
the pipelines; the cost is staleness in the reference the parallel models
dilute against.  This ablation measures that cost on BERT: epochs to the
accuracy target under queue delays 0 (sync), 1 (the paper's setup) and 4.
The expected shape: small delays are statistically free.
"""

from repro.core.trainer import AvgPipeTrainer
from repro.models import build_workload
from repro.utils import format_table

from .conftest import run_once

DELAYS = (0, 1, 4)


def run_ablation():
    spec = build_workload("bert")
    out = {}
    for delay in DELAYS:
        result = AvgPipeTrainer(
            spec, seed=0, max_epochs=10, num_pipelines=2, queue_delay=delay
        ).train()
        out[delay] = {
            "epochs": result.epochs_to_target,
            "reached": result.reached_target,
            "final": result.final_metric,
        }
    return out


def test_ablation_async_reference(benchmark, emit):
    data = run_once(benchmark, run_ablation)
    rows = [
        [f"delay={d}" + (" (sync)" if d == 0 else " (paper)" if d == 1 else ""),
         v["epochs"] if v["reached"] else f">{v['epochs']}", round(v["final"], 2)]
        for d, v in data.items()
    ]
    emit(
        "ablation_async_reference",
        format_table(["reference queue", "epochs to target", "final acc %"], rows,
                     title="Ablation — async reference staleness (BERT, N=2)"),
    )

    assert data[0]["reached"] and data[1]["reached"]
    # One iteration of staleness is statistically (almost) free.
    assert data[1]["epochs"] <= data[0]["epochs"] + 2
