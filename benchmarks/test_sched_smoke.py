"""Multi-job scheduler smoke: elastic fair-share vs static FIFO.

The ISSUE-9 acceptance scenario at benchmark scale: the canned seeded
"smoke" arrival process (8 devices, 7 mixed gnmt/bert/awd jobs) run under
the static FIFO baseline and the elastic weighted fair-share policy, plus
the real-trainer elastic-oracle numerics cross-check for every job the
elastic policy resized.

Shape asserted: elastic inter-job resizing beats static FIFO on *both*
cluster utilization and queue-wait p95, and every replayed job's
post-resize numerics are clean against the §3.2 oracle.  The rendered
report is emitted to ``benchmarks/results/sched_smoke.txt`` and pinned
byte-for-byte by ``tests/test_sched_golden.py``.
"""

from repro.sched import SchedVerdict, crosscheck_result, render_report, run_scenario

from .conftest import run_once


def build_verdict() -> SchedVerdict:
    fifo = run_scenario("smoke", "fifo", seed=0)
    fair = run_scenario("smoke", "fair", seed=0)
    return SchedVerdict(
        baseline=fifo,
        candidate=fair,
        crosschecks=crosscheck_result(fair, seed=0),
    )


def render_sched_smoke(verdict: SchedVerdict) -> str:
    return render_report(verdict).rstrip("\n")


def test_sched_smoke(benchmark, emit):
    verdict = run_once(benchmark, build_verdict)
    emit("sched_smoke", render_sched_smoke(verdict))

    assert verdict.util_improved, "elastic fair-share must beat FIFO utilization"
    assert verdict.wait_p95_improved, "elastic fair-share must beat FIFO wait p95"
    assert verdict.crosschecks, "the smoke scenario must exercise a resize"
    assert verdict.numerics_clean
    assert verdict.passed
