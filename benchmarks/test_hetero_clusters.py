"""Heterogeneous clusters: uniform vs balanced vs balanced+placement.

Fig 11/13 analogue with heterogeneity as the independent variable: for
each canned variant of the GNMT testbed, how much simulated batch time
does heterogeneity-aware planning recover over the seed's uniform
partitioner?

Shape asserted: on *every* variant both the balanced partition and the
joint partition+placement search beat the uniform plan, and on
``asym-links`` — where partitioning alone cannot fix a congested wire —
the placement pass wins by a clear extra margin.
"""

from repro.experiments import run_hetero
from repro.sim import hetero_variant_names
from repro.utils import format_table

from .conftest import run_once


def render_hetero(data) -> str:
    table = format_table(
        ["workload", "variant", "strategy", "boundaries", "placement", "batch time (ms)", "speedup"],
        [
            [
                r.workload,
                r.variant,
                r.strategy,
                str(r.boundaries),
                str(r.placement),
                "OOM" if r.oom else r.batch_time * 1e3,
                r.speedup_vs_uniform,
            ]
            for r in data["rows"]
        ],
        title="Heterogeneous clusters — planning strategies on GNMT",
    )
    return table


def test_hetero_clusters(benchmark, emit):
    data = run_once(benchmark, run_hetero)
    emit("hetero_clusters", render_hetero(data))

    for variant in hetero_variant_names():
        assert data["speedup"][("gnmt", variant, "balanced")] > 1.0, variant
        assert data["speedup"][("gnmt", variant, "balanced+placement")] > 1.0, variant
    assert (
        data["speedup"][("gnmt", "asym-links", "balanced+placement")]
        > data["speedup"][("gnmt", "asym-links", "balanced")] * 1.2
    )
