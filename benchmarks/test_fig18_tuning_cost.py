"""Figure 18: tuning cost — traversal vs the profiling method.

Shape asserted: the profiling method's measurement cost is a small
fraction of the traversal's on every workload (paper: ~2.5 h vs <3 min
for GNMT/BERT, 27 min vs 2 min for AWD).
"""

from repro.experiments import run_fig18
from repro.utils import format_table

from .conftest import run_once


def test_fig18_tuning_cost(benchmark, emit):
    data = run_once(benchmark, run_fig18)
    rows = data["rows"]
    table = format_table(
        ["workload", "method", "tuning cost (sim s)", "chosen M", "chosen N"],
        [[r.workload, r.method, round(r.tuning_cost, 2), r.m, r.n] for r in rows],
        title="Figure 18 — tuning cost (simulated measurement seconds)",
    )
    emit("fig18_tuning_cost", table)

    by = {(r.workload, r.method): r for r in rows}
    for wl in ("gnmt", "bert", "awd"):
        traversal = by[(wl, "traversal")]
        profiling = by[(wl, "profiling")]
        ratio = traversal.tuning_cost / profiling.tuning_cost
        assert ratio > 5.0, f"{wl}: traversal only {ratio:.1f}x more expensive"
