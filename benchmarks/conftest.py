"""Shared benchmark plumbing.

Every benchmark regenerates one paper figure: it runs the experiment
harness once (via ``benchmark.pedantic`` so pytest-benchmark records the
wall time without re-running a multi-minute experiment dozens of times),
prints the figure's rows, and writes them to ``benchmarks/results/`` so
the tables survive pytest's output capture.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir):
    """emit(name, text): print a figure table and persist it."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
