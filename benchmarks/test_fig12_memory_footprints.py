"""Figure 12: GPU memory footprints.

Shapes asserted: PipeDream OOM on BERT; data parallelism's replica is the
(joint-)largest footprint; each AvgPipe variant respects its matched
baseline's budget up to the relaxation its row reports (BERT needs one —
see EXPERIMENTS.md).
"""

from repro.experiments import run_fig12
from repro.experiments.common import avgpipe_matched_to
from repro.utils import format_table

from .conftest import run_once


def test_fig12_memory_footprints(benchmark, emit):
    data = run_once(benchmark, run_fig12)
    rows = data["rows"]
    table = format_table(
        ["workload", "system", "peak MiB", "weights MiB", "activations MiB", "flags"],
        [
            [
                r.workload,
                r.system,
                "OOM" if r.oom else round(r.peak_memory_mib, 1),
                "-" if r.oom else round(r.weight_mib, 1),
                "-" if r.oom else round(r.activation_mib, 1),
                ("over-capacity" if r.over_capacity else ""),
            ]
            for r in rows
        ],
        title="Figure 12 — peak GPU memory footprints",
    )
    emit("fig12_memory_footprints", table)

    by_key = {(r.workload, r.system): r for r in rows}
    assert by_key[("bert", "PipeDream")].oom

    # The paper's own anomaly: DP's BERT footprint exceeds device memory
    # while a training-time bar is still reported.
    assert by_key[("bert", "PyTorch (DP)")].over_capacity

    # AvgPipe variants stay within their (possibly relaxed) budgets.
    for wl in ("gnmt", "bert", "awd"):
        for base in ("gpipe", "pipedream-2bw", "dapple"):
            run = avgpipe_matched_to(wl, base)
            assert run.peak_memory <= run.budget_bytes * 1.001, (wl, base)

    # On GNMT, AvgPipe(2BW) reduces memory below PipeDream-2BW itself
    # (the paper reports -6.8%).
    two_bw = by_key[("gnmt", "PipeDream-2BW")].peak_memory_mib
    ours = by_key[("gnmt", "AvgPipe(2BW)")].peak_memory_mib
    assert ours < two_bw
