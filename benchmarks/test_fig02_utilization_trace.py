"""Figure 2: underutilized GPUs in vanilla pipelines (BERT).

Paper claims reproduced in shape: vanilla-pipeline peak utilization stays
well below 100% (paper: ~60% on V100s; our miniature kernels saturate
lower), and both GPipe and PipeDream-2BW idle periodically.
"""

from repro.experiments import run_fig02
from repro.utils import format_table

from .conftest import run_once


def test_fig02_vanilla_pipeline_underutilization(benchmark, emit):
    data = run_once(benchmark, run_fig02)
    rows = [
        [name, d["peak"], d["mean"], d["idle_fraction"]]
        for name, d in data.items()
    ]
    emit(
        "fig02_utilization_trace",
        format_table(
            ["system", "peak util", "mean util", "idle fraction"],
            rows,
            title="Figure 2 — GPU-0 utilization trace, BERT (vanilla pipelines)",
        ),
    )
    for name, d in data.items():
        assert d["peak"] < 0.9, f"{name}: vanilla pipeline should not saturate"
        assert d["idle_fraction"] > 0.1, f"{name}: should idle periodically"
