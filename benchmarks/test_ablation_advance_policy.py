"""Ablation: Algorithm 1's adaptive advance policy vs fixed settings.

DESIGN.md ablation #1.  Runs the adaptive controller against every fixed
advance value on BERT (N=1, where the schedule contrast is visible) and
asserts the adaptive policy lands within a small factor of the best fixed
setting while staying under the memory limit — the value of the paper's
conservative strategy is getting near-AFAB speed without hand-tuning.
"""

from repro.core.profiler import Profiler
from repro.core.simcfg import calibration_for
from repro.schedules import AdaptiveAdvanceController, AdvanceFPSchedule
from repro.utils import format_table

from .conftest import run_once

M = 16


def _measure(cal, advance: int):
    prof = Profiler(
        layer_costs=cal.layer_costs(),
        partition=cal.partition(),
        schedule=AdvanceFPSchedule(advance),
        cluster_spec=cal.cluster_spec(),
        batch_size=cal.batch_size,
        activation_byte_scale=cal.activation_byte_scale,
        param_byte_scale=cal.param_byte_scale,
        stash_multiplier=cal.stash_multiplier,
        optimizer_state_factor=cal.optimizer_state_factor,
        with_reference_model=True,
    )
    res = prof.run_setting(M, 1, iterations=2)
    if res.oom is not None:
        return float("inf"), float("inf")
    return res.batch_time, float(max(res.peak_memory))


def run_ablation():
    cal = calibration_for("bert")
    fixed = {adv: _measure(cal, adv) for adv in range(0, M + 1, 2)}
    controller = AdaptiveAdvanceController(
        num_micro=M, memory_limit_bytes=float(cal.memory_capacity_bytes)
    )
    settled = controller.tune(lambda adv: _measure(cal, adv))
    adaptive_time, adaptive_mem = _measure(cal, settled)
    return {"fixed": fixed, "settled": settled, "adaptive": (adaptive_time, adaptive_mem)}


def test_ablation_advance_policy(benchmark, emit):
    data = run_once(benchmark, run_ablation)
    rows = [
        [f"fixed advance={adv}", round(t * 1e3, 2), round(mem / 2**20, 1)]
        for adv, (t, mem) in sorted(data["fixed"].items())
        if t != float("inf")
    ]
    t, mem = data["adaptive"]
    rows.append([f"adaptive (settled at {data['settled']})", round(t * 1e3, 2), round(mem / 2**20, 1)])
    emit(
        "ablation_advance_policy",
        format_table(["policy", "iter time (ms)", "peak MiB"], rows,
                     title="Ablation — Algorithm 1 vs fixed advance (BERT, M=16, N=1)"),
    )

    feasible = [t for t, m in data["fixed"].values() if t != float("inf")]
    best_fixed = min(feasible)
    adaptive_time, adaptive_mem = data["adaptive"]
    assert adaptive_time <= best_fixed * 1.05
    cal = calibration_for("bert")
    assert adaptive_mem <= cal.memory_capacity_bytes
