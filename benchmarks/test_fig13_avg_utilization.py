"""Figure 13: averaged GPU utilization.

Shape asserted: AvgPipe's parallel pipelines raise average utilization
substantially over the baselines on every workload (paper: +86.1% GNMT,
+41.3% BERT, +19.6% AWD).
"""

from repro.experiments import run_fig13
from repro.utils import format_table

from .conftest import run_once


def test_fig13_avg_utilization(benchmark, emit):
    data = run_once(benchmark, run_fig13)
    table = format_table(
        ["workload", "system", "avg GPU utilization"],
        [
            [r.workload, r.system, "OOM" if r.oom else round(r.avg_utilization, 3)]
            for r in data["rows"]
        ],
        title="Figure 13 — averaged GPU utilization",
    )
    gains = "\n".join(
        f"AvgPipe utilization gain on {wl}: +{pct:.1f}%"
        for wl, pct in data["improvement_pct"].items()
    )
    emit("fig13_avg_utilization", table + "\n\n" + gains)

    assert data["improvement_pct"]["gnmt"] > 25.0
    assert data["improvement_pct"]["bert"] > 20.0
    assert data["improvement_pct"]["awd"] > 10.0
    # GNMT shows the largest gain, as in the paper.
    assert data["improvement_pct"]["gnmt"] >= data["improvement_pct"]["awd"]
