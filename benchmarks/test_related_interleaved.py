"""Related work: interleaved virtual stages (Megatron) vs AvgPipe.

Both attack pipeline bubbles; interleaving pays in communication (each
chunk boundary is a transfer), AvgPipe pays in weight memory (N model
replicas).  On the calibrated comm-heavy regime interleaving's extra
transfers eat its bubble savings, which is the context for the paper's
choice of parallel pipelines.
"""

from repro.graph import LayerCost
from repro.schedules import (
    AdvanceFPSchedule,
    PipelineSimRunner,
    StageCosts,
    simulate_interleaved,
)
from repro.graph.partitioner import partition_model
from repro.sim import ClusterSpec, Simulator, make_cluster
from repro.utils import format_table

from .conftest import run_once

GIB = 2**30


def _layers(act):
    return [
        LayerCost(f"l{i}", flops_per_sample=2.0e6, activation_bytes_per_sample=act,
                  param_bytes=500_000)
        for i in range(12)
    ]


def _cluster():
    sim = Simulator()
    return make_cluster(sim, 6, spec=ClusterSpec(nodes=3, gpus_per_node=2, memory_bytes=8 * GIB))


def _avgpipe(layers, num_micro, mb):
    cluster = _cluster()
    partition = partition_model(layers, 6, bandwidth_bytes_per_sec=cluster.spec.inter_node_bandwidth,
                                flops_per_sec=cluster.spec.peak_flops)
    costs = StageCosts.from_partition(layers, partition, mb)
    runner = PipelineSimRunner(cluster, AdvanceFPSchedule(2), costs, num_micro=num_micro,
                               mb_size=mb, num_pipelines=2, with_reference_model=True)
    return runner.run(iterations=2)


def run_comparison():
    out = {}
    for regime, act in (("cheap comm", 5.0e4), ("paper-regime comm", 1.5e6)):
        layers = _layers(act)
        plain = simulate_interleaved(_cluster(), layers, num_micro=12, mb_size=4.0,
                                     virtual_factor=1, iterations=2)
        inter = simulate_interleaved(_cluster(), layers, num_micro=12, mb_size=4.0,
                                     virtual_factor=2, iterations=2)
        avg = _avgpipe(layers, num_micro=12, mb=4.0)
        out[regime] = {"1F1B": plain, "interleaved(v=2)": inter, "AvgPipe(N=2)": avg}
    return out


def test_related_interleaved(benchmark, emit):
    data = run_once(benchmark, run_comparison)
    rows = []
    for regime, systems in data.items():
        for name, res in systems.items():
            rows.append([regime, name, round(res.time_per_batch * 1e3, 2),
                         round(sum(res.comm_sent_time) * 1e3, 1)])
    emit(
        "related_interleaved",
        format_table(["comm regime", "system", "ms/batch", "total comm (ms)"], rows,
                     title="Related work — interleaved virtual stages vs AvgPipe"),
    )

    cheap = data["cheap comm"]
    heavy = data["paper-regime comm"]
    # Interleaving wins when communication is cheap...
    assert cheap["interleaved(v=2)"].batch_time < cheap["1F1B"].batch_time
    # ...but its advantage shrinks or inverts when transfers are expensive.
    cheap_gain = cheap["1F1B"].batch_time / cheap["interleaved(v=2)"].batch_time
    heavy_gain = heavy["1F1B"].batch_time / heavy["interleaved(v=2)"].batch_time
    assert heavy_gain < cheap_gain
    # AvgPipe's parallel pipelines beat both per batch in both regimes.
    for systems in data.values():
        assert systems["AvgPipe(N=2)"].time_per_batch < systems["interleaved(v=2)"].time_per_batch
