"""Related work (§8): Chimera's bidirectional pipelines vs AvgPipe.

The paper argues Chimera fills bubbles but, like 1F1B, cannot fully
overlap communication, while AvgPipe's parallel pipelines raise device
utilization directly.  On a uniform six-stage pipeline we verify:
* Chimera beats plain 1F1B on one batch (its SC'21 claim),
* AvgPipe (2 pipelines, 2 batches/iteration) delivers better per-batch
  time than Chimera at a comparable weight-memory cost (both hold two
  stage replicas per device).
"""

from repro.schedules import AdvanceFPSchedule, OneFOneBSchedule, PipelineSimRunner, StageCosts
from repro.schedules.chimera import simulate_chimera
from repro.sim import ClusterSpec, Simulator, make_cluster
from repro.utils import format_table

from .conftest import run_once

GIB = 2**30


def _costs(k=6):
    return StageCosts(
        fwd_flops=(4.0e6,) * k,
        act_out_bytes=(2.0e6,) * k,
        stash_bytes=(6.0e6,) * k,
        param_bytes=(1_000_000,) * k,
    )


def _cluster():
    sim = Simulator()
    return make_cluster(sim, 6, spec=ClusterSpec(nodes=3, gpus_per_node=2, memory_bytes=8 * GIB))


def run_comparison():
    out = {}
    plain = PipelineSimRunner(
        _cluster(), OneFOneBSchedule(versions=1), _costs(), num_micro=16, mb_size=8.0,
    ).run(iterations=2)
    out["1F1B"] = plain
    out["Chimera"] = simulate_chimera(_cluster(), _costs(), num_micro=16, mb_size=8.0, iterations=2)
    avg = PipelineSimRunner(
        _cluster(), AdvanceFPSchedule(2), _costs(), num_micro=16, mb_size=8.0,
        num_pipelines=2, with_reference_model=True,
    ).run(iterations=2)
    out["AvgPipe(N=2)"] = avg
    return out


def test_related_chimera(benchmark, emit):
    data = run_once(benchmark, run_comparison)
    rows = [
        [name, round(res.time_per_batch * 1e3, 2), round(max(res.weight_memory) / 2**20, 1),
         round(res.avg_utilization, 3)]
        for name, res in data.items()
    ]
    emit(
        "related_chimera",
        format_table(["system", "ms/batch", "weights MiB", "avg util"], rows,
                     title="Related work — Chimera vs AvgPipe (uniform 6-stage pipeline)"),
    )
    assert data["Chimera"].batch_time < data["1F1B"].batch_time
    assert data["AvgPipe(N=2)"].time_per_batch < data["Chimera"].time_per_batch
    # Comparable weight cost: both duplicate stage weights per device.
    assert data["AvgPipe(N=2)"].weight_memory[0] <= 1.5 * data["Chimera"].weight_memory[0]
