"""Ablation: the profiling setting's "phi < 100%" requirement (§5.2.1).

DESIGN.md ablation #4.  The paper insists the profile use a large M and a
small N so no GPU saturates — a clipped utilization curve cannot be
un-scaled by Equation 2.  This ablation profiles a controlled uniform
six-stage pipeline twice — once at the prescribed setting and once at a
saturated one (small M, several pipelines, phi pinned at 100%) — and
compares each predictor's setting-ranking against ground-truth
simulation.  The prescribed profile must rank at least as well.
"""

import numpy as np

from repro.core.predictor import Predictor
from repro.core.profiler import Profiler
from repro.graph import LayerCost, partition_model
from repro.schedules import AdvanceFPSchedule
from repro.sim import ClusterSpec
from repro.utils import format_table

from .conftest import run_once

GRID = [(4, 1), (8, 1), (16, 1), (8, 2), (16, 2), (32, 2), (16, 3)]
GIB = 2**30


def _profiler() -> Profiler:
    costs = [
        LayerCost(f"l{i}", flops_per_sample=2.5e5, activation_bytes_per_sample=2.5e4,
                  param_bytes=400_000)
        for i in range(12)
    ]
    spec = ClusterSpec(nodes=3, gpus_per_node=2, memory_bytes=16 * GIB)
    partition = partition_model(
        costs, 6, bandwidth_bytes_per_sec=spec.inter_node_bandwidth,
        flops_per_sec=spec.peak_flops,
    )
    return Profiler(
        layer_costs=costs,
        partition=partition,
        schedule=AdvanceFPSchedule(2),
        cluster_spec=spec,
        batch_size=64,
        with_reference_model=True,
    )


def _rank_quality(profile, profiler) -> float:
    predictor = Predictor(profile)
    predicted, measured = [], []
    for m, n in GRID:
        predicted.append(predictor.predict(m, n).batch_time)
        res = profiler.run_setting(m, n, iterations=2)
        measured.append(res.batch_time / n if res.oom is None else float("inf"))
    pr = np.argsort(np.argsort(predicted))
    mr = np.argsort(np.argsort(measured))
    return float(np.corrcoef(pr, mr)[0, 1])


def run_ablation():
    profiler = _profiler()
    prescribed = profiler.profile()  # large M, N=1: phi stays below 100%
    saturated = profiler.profile(m=2, n=4)  # huge micro-batches x 4 pipelines
    return {
        "prescribed": {"m": prescribed.m, "n": prescribed.n,
                       "rho": _rank_quality(prescribed, profiler)},
        "saturated": {"m": saturated.m, "n": saturated.n,
                      "rho": _rank_quality(saturated, profiler)},
    }


def test_ablation_profile_setting(benchmark, emit):
    data = run_once(benchmark, run_ablation)
    rows = [
        [name, f"M={d['m']} N={d['n']}", round(d["rho"], 3)]
        for name, d in data.items()
    ]
    emit(
        "ablation_profile_setting",
        format_table(["profile setting", "degrees", "rank correlation vs simulation"],
                     rows, title="Ablation — profiling at unsaturated vs saturated settings"),
    )
    assert data["prescribed"]["rho"] >= data["saturated"]["rho"] - 0.05
    assert data["prescribed"]["rho"] > 0.5
