"""Ablation: activation recomputation (disabled in the paper's runs, §7.1).

The paper's baselines all disable re-materialization; this ablation shows
what that choice trades on the calibrated BERT pipeline: recomputation
frees most of the activation stash (letting AFAB run in 1F1B-class
memory) at ~a third more compute time — context for why the paper
prefers advance-FP, which buys overlap without the flop tax.
"""

from repro.core.profiler import Profiler
from repro.core.simcfg import calibration_for
from repro.schedules import AFABSchedule
from repro.schedules.executor import PipelineSimRunner, StageCosts
from repro.sim import Cluster, Simulator
from repro.utils import format_table

from .conftest import run_once

MIB = 2**20


def run_ablation():
    cal = calibration_for("bert")
    out = {}
    for recompute in (False, True):
        sim = Simulator()
        cluster = Cluster(sim, cal.cluster_spec())
        costs = StageCosts.from_partition(
            cal.layer_costs(), cal.partition(), mb_size=cal.batch_size / 16,
            activation_byte_scale=cal.activation_byte_scale,
            param_byte_scale=cal.param_byte_scale,
            stash_multiplier=cal.stash_multiplier,
        )
        runner = PipelineSimRunner(
            cluster, AFABSchedule(), costs, num_micro=16, mb_size=cal.batch_size / 16,
            optimizer_state_factor=cal.optimizer_state_factor,
            activation_recompute=recompute,
        )
        out["recompute" if recompute else "stash"] = runner.run(iterations=3)
    return out


def test_ablation_recompute(benchmark, emit):
    data = run_once(benchmark, run_ablation)
    rows = [
        [name, round(res.batch_time * 1e3, 1), round(max(res.peak_memory) / MIB, 1),
         round(max(res.data_memory_peak) / MIB, 1)]
        for name, res in data.items()
    ]
    emit(
        "ablation_recompute",
        format_table(["mode", "iter time (ms)", "peak MiB", "activations MiB"], rows,
                     title="Ablation — activation recomputation (BERT, AFAB, M=16, N=1)"),
    )
    stash, rc = data["stash"], data["recompute"]
    assert max(rc.data_memory_peak) < max(stash.data_memory_peak)
    assert stash.batch_time < rc.batch_time < stash.batch_time * 1.6
