"""Figure 11: training time, all systems x workloads.

This is the paper's headline figure.  Reproduced shapes asserted on the
*epoch time* column (the systems measurement — see the harness docstring
for why epochs-to-target carries a disclosed miniature-scale penalty):

* data parallelism is the slowest system on every workload,
* every memory-matched AvgPipe variant beats its baseline per epoch,
* PipeDream OOMs on BERT,
* the aggregate epoch-time speedups point the paper's way (paper: 4.7x
  over DP, 1.7x over pipeline parallelism; measured factors recorded in
  EXPERIMENTS.md).
"""

import math

from repro.experiments import run_fig11
from repro.utils import format_table

from .conftest import run_once


def test_fig11_training_time(benchmark, emit):
    data = run_once(benchmark, run_fig11)
    rows = data["rows"]
    table_rows = []
    for r in rows:
        table_rows.append([
            r.workload,
            r.system,
            "OOM" if r.oom else r.epochs,
            "-" if r.oom else round(r.time_per_batch * 1e3, 1),
            "-" if r.oom else round(r.epoch_time, 2),
            "-" if r.oom else round(r.training_time, 1),
            r.note,
        ])
    summary = (
        f"\nAvgPipe average epoch-time speedup vs data parallelism: "
        f"{data['avg_speedup_vs_dp']:.2f}x (paper: 4.7x)\n"
        f"AvgPipe average epoch-time speedup vs pipeline parallelism: "
        f"{data['avg_speedup_vs_pipeline']:.2f}x (paper: 1.7x)"
    )
    emit(
        "fig11_training_time",
        format_table(
            ["workload", "system", "epochs", "ms/batch", "epoch (s)", "to target (s)", "config"],
            table_rows,
            title="Figure 11 — simulated training time (epoch time and time to quality target)",
        )
        + summary,
    )

    by_key = {(r.workload, r.system): r for r in rows}

    # PipeDream OOMs on BERT only.
    assert by_key[("bert", "PipeDream")].oom
    assert not by_key[("gnmt", "PipeDream")].oom

    for wl in ("gnmt", "bert", "awd"):
        dp = by_key[(wl, "PyTorch (DP)")]
        # DP is the slowest non-OOM system per epoch on the workload.
        others = [
            r.epoch_time
            for r in rows
            if r.workload == wl and not r.oom and r.system != "PyTorch (DP)"
        ]
        assert dp.epoch_time > max(others) * 0.99, wl

        # Every AvgPipe variant beats the baseline it was matched to
        # on epoch time (the systems claim).
        for base_name, variant in [
            ("PyTorch (DP)", "AvgPipe(P)"),
            ("GPipe", "AvgPipe(G)"),
            ("PipeDream-2BW", "AvgPipe(2BW)"),
            ("Dapple", "AvgPipe(D)"),
        ]:
            base = by_key.get((wl, base_name))
            ours = by_key.get((wl, variant))
            if base is None or ours is None or base.oom:
                continue
            assert ours.epoch_time < base.epoch_time, (wl, variant)

    assert data["avg_speedup_vs_dp"] > 2.0
    assert data["avg_speedup_vs_pipeline"] > 1.2
    assert math.isfinite(data["avg_speedup_vs_dp"])

    # The statistical column: AvgPipe's epochs within the documented
    # miniature-scale bound of sync's on every workload.
    for wl in ("gnmt", "bert", "awd"):
        sync = by_key[(wl, "PyTorch (DP)")]
        ours = by_key[(wl, "AvgPipe(G)")]
        assert ours.epochs <= 3 * sync.epochs + 1, wl
