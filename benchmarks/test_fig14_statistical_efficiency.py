"""Figure 14: statistical efficiency (epochs to the quality target).

Shapes asserted: AvgPipe reaches the target on every workload within the
documented miniature-scale bound of sync's epochs (the paper shows
near-equality on its noise-dominated datasets; our signal-dominated
corpora pay up to ~3x — see docs/elastic_averaging.md), with outright
parity on BERT, and PipeDream's multi-version staleness costs it epochs.
The "2x batch" strawman row records the paper's Figure-5 premise; at
this scale large batches are nearly free (the same noise-regime effect),
so it is reported, not asserted.
"""

from repro.experiments import run_fig14
from repro.utils import format_table

from .conftest import run_once


def test_fig14_statistical_efficiency(benchmark, emit):
    data = run_once(benchmark, run_fig14)
    rows = data["rows"]
    table = format_table(
        ["workload", "system", "epochs to target", "reached", "final metric"],
        [
            [r.workload, r.system, r.epochs_to_target, "yes" if r.reached else "NO",
             round(r.final_metric, 2)]
            for r in rows
        ],
        title="Figure 14 — epochs to reach the quality target",
    )
    emit("fig14_statistical_efficiency", table)

    by_key = {(r.workload, r.system): r for r in rows}
    for wl in ("gnmt", "bert", "awd"):
        sync = by_key[(wl, "PyTorch (sync)")]
        ours = by_key[(wl, "AvgPipe")]
        assert sync.reached, wl
        assert ours.reached, wl
        assert ours.epochs_to_target <= 3 * sync.epochs_to_target + 1, wl

    # BERT sits closest to the paper's regime here: outright parity.
    assert (
        by_key[("bert", "AvgPipe")].epochs_to_target
        <= by_key[("bert", "PyTorch (sync)")].epochs_to_target + 1
    )

    # PipeDream's multi-version staleness costs statistical efficiency.
    # Paper: visible on AWD; at our scale its per-micro-batch updates earn
    # a small-batch bonus there that masks the mild delay, and the cost
    # shows on GNMT/BERT instead (EXPERIMENTS.md).  Assert the general
    # claim: PipeDream is strictly worse than sync on >= 2 workloads.
    losses = 0
    for wl in ("gnmt", "bert", "awd"):
        pd = by_key[(wl, "PipeDream")]
        sync = by_key[(wl, "PyTorch (sync)")]
        if (not pd.reached) or pd.epochs_to_target > sync.epochs_to_target:
            losses += 1
    assert losses >= 2

    # The Figure-5 strawman rows are informational (see docstring); just
    # check they exist and ran to completion.
    for wl in ("gnmt", "bert", "awd"):
        assert (wl, "Sync, 2x batch (Fig. 5a strawman)") in by_key
