"""Figure 19: training time under each tuning method.

Shapes asserted:
* traversal is the floor (it tried everything),
* the profiling method lands near the floor on every workload,
* max-size is disastrous on GNMT/BERT (bubble-blind; paper: 23x) but is
  the right call on AWD (paper: the best setting there),
* max-num pays a peak-utilization penalty relative to the floor on the
  bubble-bound workloads.
"""

from repro.experiments import run_fig19
from repro.utils import format_table

from .conftest import run_once


def test_fig19_tuning_result(benchmark, emit):
    data = run_once(benchmark, run_fig19)
    rows = data["rows"]
    table = format_table(
        ["workload", "method", "M", "N", "time/batch (ms)"],
        [[r.workload, r.method, r.m, r.n, round(r.time_per_batch * 1e3, 1)] for r in rows],
        title="Figure 19 — measured time per batch at the tuned setting",
    )
    emit("fig19_tuning_result", table)

    by = {(r.workload, r.method): r for r in rows}
    for wl in ("gnmt", "bert", "awd"):
        floor = by[(wl, "traversal")].time_per_batch
        prof = by[(wl, "profiling")].time_per_batch
        assert prof <= floor * 1.5, f"{wl}: profiling {prof / floor:.2f}x off the floor"

    # max-size ignores bubbles: far off the floor on GNMT and BERT.
    for wl in ("gnmt", "bert"):
        floor = by[(wl, "traversal")].time_per_batch
        assert by[(wl, "max-size")].time_per_batch > 1.5 * floor, wl

    # ...but on AWD max-size is close to the floor (arithmetic-intensity
    # bound; the paper reports it as outright optimal there).
    awd_floor = by[("awd", "traversal")].time_per_batch
    assert by[("awd", "max-size")].time_per_batch <= awd_floor * 1.5

    # max-num underutilizes kernels on AWD (paper: 15x worse there).
    assert by[("awd", "max-num")].time_per_batch > by[("awd", "max-size")].time_per_batch
