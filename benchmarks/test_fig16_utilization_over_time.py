"""Figure 16: GPU-utilization-over-time series for GNMT.

Shapes asserted: AvgPipe(2BW)'s sustained peak exceeds both baselines'
(paper: +57.8%), and the baselines show frequent idle dips.
"""

import numpy as np

from repro.experiments import run_fig16
from repro.utils import format_table

from .conftest import run_once


def _sparkline(samples: np.ndarray, width: int = 60) -> str:
    blocks = " ▁▂▃▄▅▆▇█"
    idx = np.linspace(0, len(samples) - 1, width).astype(int)
    return "".join(blocks[min(int(s * 8), 8)] for s in samples[idx])


def test_fig16_utilization_over_time(benchmark, emit):
    data = run_once(benchmark, run_fig16)
    series = data["series"]
    table = format_table(
        ["system", "peak util", "mean util"],
        [[s.system, round(s.peak, 3), round(s.mean, 3)] for s in series],
        title="Figure 16 — GPU-0 utilization over time (GNMT)",
    )
    art = "\n".join(f"{s.system:>15} |{_sparkline(s.samples)}|" for s in series)
    emit("fig16_utilization_over_time", table + "\n\n" + art +
         f"\n\nAvgPipe(2BW) peak gain over baselines: +{data['peak_gain_pct']:.1f}%")

    avg = series[-1]
    for base in series[:2]:
        assert avg.peak > base.peak
        assert avg.mean > base.mean
    assert data["peak_gain_pct"] > 20.0
