"""Figure 7: one batch on K=2, M=4 under the three schedules.

Paper claims reproduced: t_AFAB <= t_advance <= t_1F1B, and peak memory
1F1B < advance-FP < AFAB (the paper's example has advance-FP at 3/8 of
AFAB's stash; ours lands in the same band).  The ASCII timelines are
written to results/ for visual comparison with the paper's figure.
"""

from repro.experiments import run_fig07
from repro.utils import format_table

from .conftest import run_once


def test_fig07_schedule_timelines(benchmark, emit):
    data = run_once(benchmark, run_fig07)
    rows = data["rows"]
    table = format_table(
        ["schedule", "batch time (ms)", "peak mem (MiB)", "act stash (MiB)"],
        [[r.schedule, r.batch_time * 1e3, r.peak_memory / 2**20, r.stash_peak / 2**20] for r in rows],
        title="Figure 7 — one batch, K=2, M=4",
    )
    art = "\n\n".join(f"{r.schedule}:\n{r.timeline}" for r in rows)
    emit("fig07_schedule_timelines", table + "\n\n" + art)

    afab, f1b, adv = rows[0], rows[1], rows[2]
    assert afab.batch_time <= adv.batch_time <= f1b.batch_time
    assert f1b.peak_memory < adv.peak_memory < afab.peak_memory
    # The paper's worked example: advance-FP stashes 3 micro-batches on
    # GPU 1 vs AFAB's 4 and 1F1B's 2.
    assert f1b.stash_peak < adv.stash_peak < afab.stash_peak
