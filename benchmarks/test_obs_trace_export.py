"""Chrome-trace export of the Figure-7 worked example (obs golden).

Regenerates ``results/obs_trace_fig07.json`` — the K=2, M=4 AFAB run
exported in Trace Event Format.  ``tests/test_obs_trace_export.py`` pins
this artifact byte-for-byte; load it in chrome://tracing or
https://ui.perfetto.dev to eyeball the schedule.
"""

import json

from tests.test_obs_trace_export import export_worked_example

from .conftest import run_once


def test_obs_trace_fig07(benchmark, results_dir):
    exporter = run_once(benchmark, export_worked_example)
    text = exporter.to_json() + "\n"
    (results_dir / "obs_trace_fig07.json").write_text(text)
    data = json.loads(text)
    assert data["traceEvents"]
    print(f"\n{exporter.device_summary()}\n")
