"""Figure 15: GNMT epoch time vs batch size.

Shapes asserted: GPipe's epoch time stays roughly flat from batch 64 to
256 (bubbles grow with the batch), while AvgPipe's advantage widens with
the batch (paper: 1.3x at 64 up to 2.6x at 256).
"""

from repro.experiments import run_fig15
from repro.utils import format_table

from .conftest import run_once


def test_fig15_batch_size_sweep(benchmark, emit):
    data = run_once(benchmark, run_fig15)
    rows = data["rows"]
    table = format_table(
        ["batch", "GPipe epoch (s)", "AvgPipe epoch (s)", "speedup", "M", "N"],
        [
            [r.batch_size, round(r.gpipe_epoch_time, 2), round(r.avgpipe_epoch_time, 2),
             round(r.speedup, 2), r.avgpipe_m, r.avgpipe_n]
            for r in rows
        ],
        title="Figure 15 — GNMT epoch time vs batch size",
    )
    emit("fig15_batch_size_sweep", table)

    # GPipe's epoch time must not *improve* with batch size the way
    # AvgPipe's does — in the paper it is flat; in our simulator it drifts
    # down mildly as fewer batches amortize fill/drain (recorded as a
    # deviation in EXPERIMENTS.md), but it never drops below half.
    gp = [r.gpipe_epoch_time for r in rows]
    assert max(gp) / min(gp) < 2.0

    # AvgPipe is faster at every batch size and its advantage does not
    # shrink as the batch grows.
    assert all(r.speedup > 1.1 for r in rows)
    assert rows[-1].speedup >= rows[0].speedup * 0.95
