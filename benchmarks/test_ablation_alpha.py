"""Ablation: the elastic coefficient alpha (paper default: 1/N).

DESIGN.md ablation #2.  Sweeps alpha on the AWD workload with N=2 and
checks that (a) alpha=0 (independent models, Figure 5a) lets the parallel
models diverge much further than any elastic setting, and (b) the paper's
1/N default reaches the target at least as fast as the extremes.
"""

import numpy as np

from repro.core.trainer import AvgPipeTrainer
from repro.models import build_workload
from repro.utils import format_table

from .conftest import run_once

ALPHAS = (0.0, 0.1, 0.25, 0.5, 0.9)


def run_ablation():
    spec = build_workload("awd")
    out = {}
    for alpha in ALPHAS:
        trainer = AvgPipeTrainer(spec, seed=0, max_epochs=25, num_pipelines=2, alpha=alpha)
        result = trainer.train()
        out[alpha] = {
            "epochs": result.epochs_to_target,
            "reached": result.reached_target,
            "final": result.final_metric,
            "divergence": trainer.framework.divergence(),
        }
    return out


def test_ablation_alpha(benchmark, emit):
    data = run_once(benchmark, run_ablation)
    rows = [
        [
            f"{alpha:.2f}"
            + (" (1/N)" if alpha == 0.5 else "")
            + (" (1/2N, default)" if alpha == 0.25 else "")
            + (" (independent)" if alpha == 0 else ""),
            d["epochs"] if d["reached"] else f">{d['epochs']}",
            round(d["final"], 3),
            round(d["divergence"], 5),
        ]
        for alpha, d in data.items()
    ]
    emit(
        "ablation_alpha",
        format_table(["alpha", "epochs to target", "final loss", "model divergence"],
                     rows, title="Ablation — elastic coefficient (AWD, N=2)"),
    )

    # Independent models (alpha=0) diverge far more than elastic ones.
    assert data[0.0]["divergence"] > 3 * data[0.5]["divergence"]
    # Some elastic setting must reach the target, and moderate pulls
    # (0.1-0.5) must be competitive with each other.
    reached = {a: d for a, d in data.items() if d["reached"] and a > 0}
    assert reached, "no elastic alpha reached the target"
    moderate = [data[a]["epochs"] for a in (0.1, 0.25, 0.5) if data[a]["reached"]]
    assert moderate and min(moderate) <= min(d["epochs"] for d in reached.values()) + 2
