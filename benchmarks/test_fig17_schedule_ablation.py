"""Figure 17: efficiency of advance forward propagation.

Shapes asserted (17a/17b/17c):
* BERT (balanced stages): AFAB faster than 1F1B; advance-FP between them
  in time, with idle time decreasing as advance grows;
* memory: 1F1B < advance-FP <= AFAB on GNMT and BERT;
* per-GPU memory decreases downstream under 1F1B-family schedules (17c);
* AWD with M=1: all three schedules coincide exactly (§7.2's last claim).

GNMT's residual stage imbalance absorbs the *time* contrast (recorded as
a deviation in EXPERIMENTS.md); its memory ordering still holds.
"""

import pytest

from repro.experiments import run_fig17
from repro.utils import format_table

from .conftest import run_once


def test_fig17_schedule_ablation(benchmark, emit):
    data = run_once(benchmark, run_fig17)
    rows = data["rows"]
    table = format_table(
        ["workload", "schedule", "iter time (ms)", "last-GPU idle (ms)", "peak MiB"],
        [
            [r.workload, r.schedule,
             "OOM" if r.oom else round(r.iter_time * 1e3, 1),
             "-" if r.oom else round(r.last_gpu_idle * 1e3, 1),
             "-" if r.oom else round(r.peak_memory_mib, 1)]
            for r in rows
        ],
        title="Figure 17 — AFAB vs 1F1B vs advance-FP (N=1)",
    )
    per_gpu = next(r for r in rows if r.workload == "bert" and r.schedule == "1F1B")
    gpu_rows = format_table(
        ["GPU", "peak MiB (BERT, 1F1B)"],
        [[k + 1, round(v, 1)] for k, v in enumerate(per_gpu.per_gpu_memory_mib)],
        title="Figure 17c — per-GPU memory under 1F1B",
    )
    emit("fig17_schedule_ablation", table + "\n\n" + gpu_rows)

    by = {(r.workload, r.schedule.split("(")[0]): r for r in rows}

    # 17a on BERT: AFAB <= advance-FP <= 1F1B in time.
    b_afab, b_adv, b_1f1b = by[("bert", "AFAB")], by[("bert", "advance-FP")], by[("bert", "1F1B")]
    assert b_afab.iter_time <= b_adv.iter_time <= b_1f1b.iter_time
    assert b_adv.last_gpu_idle <= b_1f1b.last_gpu_idle

    # 17b: memory ordering on both big workloads.
    for wl in ("gnmt", "bert"):
        afab, adv, f1b = by[(wl, "AFAB")], by[(wl, "advance-FP")], by[(wl, "1F1B")]
        if afab.oom:
            assert f1b.peak_memory_mib < adv.peak_memory_mib
        else:
            assert f1b.peak_memory_mib < adv.peak_memory_mib <= afab.peak_memory_mib

    # 17c: stash decreases downstream (strictly from GPU 1 to GPU 6).
    profile = per_gpu.per_gpu_memory_mib
    assert profile[0] > profile[-1]

    # AWD, M=1: the schedules coincide.
    awd_times = [by[("awd", s)].iter_time for s in ("AFAB", "1F1B", "advance-FP")]
    assert max(awd_times) == pytest.approx(min(awd_times), rel=1e-9)
    awd_mem = [by[("awd", s)].peak_memory_mib for s in ("AFAB", "1F1B", "advance-FP")]
    assert max(awd_mem) == pytest.approx(min(awd_mem), rel=1e-9)
