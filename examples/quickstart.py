"""Quickstart: tune, simulate and train AvgPipe on the BERT workload.

Run:  python examples/quickstart.py

Walks the full Figure-10 pipeline in ~a minute:
  1. build the workload (model + synthetic data + quality target),
  2. let the profiling-based tuner pick the parallelism degrees (M, N)
     and Algorithm 1 pick the advance-forward depth,
  3. simulate the tuned configuration on the calibrated 6-GPU cluster,
  4. actually train the elastic-averaging framework to the accuracy
     target and report epochs.
"""

from repro.core import AvgPipe
from repro.utils import format_table

MIB = 2**20


def main() -> None:
    system = AvgPipe("bert")

    print("Partition over 6 simulated GPUs:", system.partition.boundaries)

    plan = system.plan(n_candidates=[1, 2, 3])
    print(
        f"\nTuned plan: M={plan.num_micro} micro-batches, "
        f"N={plan.num_pipelines} parallel pipelines, advance={plan.advance} "
        f"(tuning cost: {plan.tuning_cost:.2f} simulated s)"
    )

    result = system.simulate(plan, iterations=3, render_timeline=True)
    print(
        format_table(
            ["metric", "value"],
            [
                ["time per batch (ms)", result.time_per_batch * 1e3],
                ["peak device memory (MiB)", max(result.peak_memory) / MIB],
                ["average GPU utilization", result.avg_utilization],
            ],
            title="\nSimulated performance",
        )
    )
    print("\nPipeline timeline (one iteration):")
    print(result.timeline)

    print("\nTraining the elastic-averaging framework to the accuracy target...")
    trainer = system.trainer(plan, seed=0, max_epochs=10)
    train_result = trainer.train()
    print(
        f"Reached {train_result.final_metric:.1f}% accuracy "
        f"(target {system.spec.target}%) in {train_result.epochs_to_target} epochs "
        f"with {plan.num_pipelines} parallel pipelines."
    )


if __name__ == "__main__":
    main()
