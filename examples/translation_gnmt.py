"""GNMT translation scenario: AvgPipe vs the five baselines.

Run:  python examples/translation_gnmt.py

Reproduces the paper's §7.1 comparison for one workload end to end:
simulates every baseline at its best feasible configuration, re-tunes
AvgPipe under GPipe's memory budget (the AvgPipe(G) variant), and trains
both update semantics to the BLEU-like target to show the combined
time-to-quality picture.
"""

import numpy as np

from repro.core.trainer import AvgPipeTrainer, SyncTrainer
from repro.data.vocab import EOS
from repro.experiments import avgpipe_matched_to, run_all_baselines
from repro.models import build_workload, greedy_decode
from repro.models.registry import _gnmt_data
from repro.data import bleu_like
from repro.utils import format_table

MIB = 2**20


def main() -> None:
    workload = "gnmt"

    print("Simulating the baselines on the calibrated 3-node x 2-GPU cluster...")
    rows = []
    for run in run_all_baselines(workload):
        rows.append(
            [
                run.display,
                run.num_micro if run.num_micro is not None else "-",
                "OOM" if run.oom else round(run.time_per_batch * 1e3, 1),
                "OOM" if run.oom else round(run.peak_memory / MIB, 1),
            ]
        )
    matched = avgpipe_matched_to(workload, "gpipe")
    rows.append(
        [
            f"{matched.variant} [M={matched.num_micro} N={matched.num_pipelines}]",
            matched.num_micro,
            round(matched.time_per_batch * 1e3, 1),
            round(matched.peak_memory / MIB, 1),
        ]
    )
    print(format_table(["system", "M", "ms/batch", "peak MiB"], rows, title="\nGNMT, simulated"))

    print("\nTraining to the BLEU-like target (synchronous vs elastic averaging)...")
    spec = build_workload(workload)
    sync = SyncTrainer(spec, seed=0, max_epochs=25).train()
    trainer = AvgPipeTrainer(spec, seed=0, max_epochs=25, num_pipelines=matched.num_pipelines)
    avg = trainer.train()
    print(
        format_table(
            ["system", "epochs to target", "final BLEU-like"],
            [
                ["synchronous (PyTorch/GPipe semantics)", sync.epochs_to_target, round(sync.final_metric, 2)],
                [f"AvgPipe (N={matched.num_pipelines})", avg.epochs_to_target, round(avg.final_metric, 2)],
            ],
        )
    )
    gpipe_tpb = run_all_baselines(workload)[1].time_per_batch
    epoch_speedup = gpipe_tpb / matched.time_per_batch
    total_speedup = (sync.epochs_to_target * gpipe_tpb) / (
        avg.epochs_to_target * matched.time_per_batch
    )
    print(
        f"\nAvgPipe(G) vs GPipe — per-epoch speedup: {epoch_speedup:.2f}x (the systems win); "
        f"time-to-quality: {total_speedup:.2f}x (folds in the miniature-scale epoch gap; "
        "see docs/elastic_averaging.md)"
    )

    # Deployment-style inference: greedy decoding with the trained
    # reference model (the paper's WMT BLEU is measured this way).
    reference = trainer.framework.reference_model(spec.build_model())
    _, valid = _gnmt_data()
    src = valid.arrays["src"][:32]
    hyps = [list(map(int, row)) for row in greedy_decode(reference, src)]
    refs = []
    for row in valid.arrays["tgt_out"][:32]:
        cut = np.where(row == EOS)[0]
        limit = int(cut[0]) if len(cut) else len(row)
        refs.append([int(t) for t in row[:limit]])
    print(f"Greedy-decode BLEU-like on 32 validation sentences: {bleu_like(hyps, refs):.1f}")


if __name__ == "__main__":
    main()
