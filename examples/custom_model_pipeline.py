"""Bring your own model: pipeline a custom network through the full stack.

Run:  python examples/custom_model_pipeline.py

Shows the adoption path for a model that is not in the zoo:
  1. express it as PipelineLayers with cost annotations,
  2. partition it with the PipeDream DP,
  3. simulate schedules on a custom cluster,
  4. train it with the elastic-averaging framework.

The model here is a small MLP autoencoder on synthetic data — nothing
like the paper's workloads, which is the point: the machinery is generic.
"""

import numpy as np

from repro.core import ElasticAveragingFramework
from repro.graph import model_costs, partition_model
from repro.models.pipeline_model import ActivationBundle, PipelineLayer, PipelineModel
from repro.nn import Linear
from repro.optim import Adam
from repro.schedules import AdvanceFPSchedule, PipelineSimRunner, StageCosts
from repro.sim import ClusterSpec, Simulator, make_cluster
from repro.tensor import relu
from repro.utils import format_table


class DenseBlock(PipelineLayer):
    """Linear + ReLU over the bundle's ``h`` entry."""

    def __init__(self, d_in: int, d_out: int, in_key: str = "h") -> None:
        super().__init__()
        self.fc = Linear(d_in, d_out)
        self.d_in, self.d_out = d_in, d_out
        self.in_key = in_key

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        from repro.tensor import Tensor

        out = dict(bundle)
        x = bundle[self.in_key]
        if not isinstance(x, Tensor):  # raw ndarray input on the first layer
            x = Tensor(np.asarray(x, dtype=np.float32))
        out["h"] = relu(self.fc(x))
        # "x" is carried through to the reconstruction head, like labels
        # travel to the last stage in the paper's workloads.
        return out

    def flops_per_sample(self) -> float:
        return self.d_in * self.d_out

    def activation_floats_per_sample(self) -> float:
        return self.d_out + 64  # hidden + the carried input


class ReconstructionHead(PipelineLayer):
    def __init__(self, d_in: int, d_out: int) -> None:
        super().__init__()
        self.fc = Linear(d_in, d_out)
        self.d_in, self.d_out = d_in, d_out

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        from repro.tensor import Tensor

        out = dict(bundle)
        pred = self.fc(bundle["h"])
        target = Tensor(np.asarray(bundle["x"], dtype=np.float32))
        diff = pred - target
        out["loss"] = (diff * diff).mean()
        del out["h"]
        return out

    def flops_per_sample(self) -> float:
        return self.d_in * self.d_out

    def activation_floats_per_sample(self) -> float:
        return 1.0


def build_autoencoder(width: int = 64, depth: int = 6) -> PipelineModel:
    dims = [width, 48, 32, 24, 32, 48, width]
    layers: list[PipelineLayer] = [DenseBlock(dims[0], dims[1], in_key="x")]
    for i in range(1, depth):
        layers.append(DenseBlock(dims[i], dims[i + 1]))
    layers.append(ReconstructionHead(dims[-1], width))
    return PipelineModel(layers=layers, name="autoencoder", metric_mode="min")


def main() -> None:
    model = build_autoencoder()
    costs = model_costs(model)
    partition = partition_model(costs, num_stages=4, bandwidth_bytes_per_sec=1.25e8, flops_per_sec=2e8)
    print("Partition boundaries over 4 simulated GPUs:", partition.boundaries)

    # Simulate two schedules on a 2-node cluster.
    rows = []
    for advance in (0, 4):
        sim = Simulator()
        cluster = make_cluster(sim, 4, spec=ClusterSpec(nodes=2, gpus_per_node=2, memory_bytes=2**31))
        stage_costs = StageCosts.from_partition(costs, partition, mb_size=8.0, activation_byte_scale=2000.0)
        runner = PipelineSimRunner(
            cluster, AdvanceFPSchedule(advance), stage_costs, num_micro=8, mb_size=8.0, num_pipelines=2,
            with_reference_model=True,
        )
        res = runner.run(iterations=2)
        rows.append([f"advance={advance}", round(res.time_per_batch * 1e3, 2), round(max(res.peak_memory) / 2**20, 1)])
    print(format_table(["schedule", "ms/batch", "peak MiB"], rows, title="\nSimulated performance (N=2)"))

    # Real elastic-averaging training on synthetic data.
    print("\nTraining two parallel autoencoders with elastic averaging...")
    rng = np.random.default_rng(0)
    basis = rng.standard_normal((8, 64)).astype(np.float32)

    def fresh_batch(n=32):
        codes = rng.standard_normal((n, 8)).astype(np.float32)
        return {"x": codes @ basis}

    models = [build_autoencoder().seed(0) for _ in range(2)]
    models[1].load_state_dict(models[0].state_dict())
    framework = ElasticAveragingFramework(models, queue_delay=1)
    optimizers = [Adam(m.parameters(), lr=1e-3) for m in models]

    for step in range(120):
        for i, (m, opt) in enumerate(zip(models, optimizers)):
            before = framework.capture(i)
            m.zero_grad()
            loss = m.loss(fresh_batch())
            loss.backward()
            opt.step()
            framework.commit(i, before)
        framework.end_iteration()
        if step % 30 == 29:
            print(f"  step {step + 1}: loss {loss.item():.4f}, model divergence {framework.divergence():.5f}")

    print("Done — the reference model is the deployable average of both pipelines.")


if __name__ == "__main__":
    main()
