"""AWD-LSTM language-modelling scenario: the max-micro-batch-size regime.

Run:  python examples/language_model_awd.py

AWD is the paper's counter-example workload: it is small, runs on two
nodes, and its LSTM kernels only approach peak throughput at large
micro-batches.  The profiling tuner therefore picks the *max-size* end of
the design space (one micro-batch per batch) — the opposite of GNMT/BERT
— and the example shows why by sweeping M explicitly.  It also trains
with the ASGD optimizer to demonstrate the framework's optimizer
independence (§3.1).
"""

from repro.core import AvgPipe
from repro.core.trainer import AvgPipeTrainer
from repro.models import build_workload
from repro.optim import ASGD
from repro.utils import format_table


def main() -> None:
    system = AvgPipe("awd")

    print("Sweeping the micro-batch count at N=2 on the simulated 4-GPU cluster:")
    rows = []
    for m in (1, 2, 4, 8, 20, 40):
        if system.calibration.batch_size % m:
            continue
        res = system.simulate_config(m, 2, advance=0, iterations=2)
        rows.append([m, system.calibration.batch_size // m, round(res.time_per_batch * 1e3, 1)])
    print(format_table(["M (micro-batches)", "micro-batch size", "ms/batch"], rows))

    plan = system.plan(n_candidates=[1, 2, 3])
    mb = system.calibration.batch_size // plan.num_micro
    print(
        f"\nProfiling tuner chose M={plan.num_micro} (micro-batch size {mb}), "
        f"N={plan.num_pipelines} — large micro-batches, the opposite end of the "
        "design space from GNMT/BERT, matching the paper's AWD finding."
    )

    print("\nTraining with ASGD inside the elastic-averaging framework...")
    spec = build_workload("awd")
    trainer = AvgPipeTrainer(spec, seed=0, max_epochs=30, num_pipelines=plan.num_pipelines)
    # Swap the default optimizer for ASGD per parallel model — the
    # framework never inspects the optimizer (§3.1's decoupling claim).
    trainer.optimizers = [ASGD(m.parameters(), lr=1.0, t0=100) for m in trainer.models]
    result = trainer.train()
    status = "reached" if result.reached_target else "still above"
    print(
        f"Validation loss {result.final_metric:.3f} nats after "
        f"{result.epochs_run} epochs ({status} the {spec.target}-nat target)."
    )


if __name__ == "__main__":
    main()
