"""Legacy setup shim: the environment's setuptools lacks the `wheel`
package, so editable installs go through `setup.py develop`."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="AvgPipe: elastic averaging for efficient pipelined DNN training (PPoPP'23 reproduction)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
