"""Schedule sanitizer: static linting of op streams + memory model.

Every guarantee the executor and the numeric pipeline rely on is a
property of the *op streams* a :class:`~repro.schedules.base.Schedule`
emits, documented in ``schedules/base.py``:

* F(i) and B(i) appear exactly once per stream;
* F(i) precedes B(i);
* forwards are in micro-batch order, backwards likewise;
* the advertised ``stash_bound`` equals the actual peak in-flight count;
* ``weight_versions`` is at least one everywhere;
* the streams of all K stages, executed in order under the chain data
  dependencies (F needs the upstream F, B needs the downstream B and the
  local F), can run to completion — deadlock-freedom.

The sanitizer re-derives each property from the raw streams, so a broken
schedule (or a refactor that silently reorders ops) is caught without
running any numerics.  :func:`predict_peak_memory` is the analytic twin
of the simulator's memory ledger: the fuzzer asserts the executor OOMs
exactly when this model says it must.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.schedules.base import Schedule, StageOp

__all__ = [
    "Violation",
    "ScheduleViolation",
    "check_stream",
    "check_schedule",
    "assert_schedule_valid",
    "check_deadlock_free",
    "predict_peak_memory",
    "MemoryPrediction",
    "corrupt_schedule",
    "CorruptedSchedule",
]


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which rule, where, and the evidence."""

    rule: str
    stage: int | None
    detail: str

    def __str__(self) -> str:
        where = "global" if self.stage is None else f"stage {self.stage}"
        return f"[{self.rule}] {where}: {self.detail}"


class ScheduleViolation(AssertionError):
    """Raised by :func:`assert_schedule_valid` with the full findings."""

    def __init__(self, violations: Sequence[Violation]) -> None:
        super().__init__("\n".join(str(v) for v in violations))
        self.violations = list(violations)


# ---------------------------------------------------------------------- #
# per-stream checks


def check_stream(ops: Sequence[StageOp], num_micro: int, stage: int | None = None) -> list[Violation]:
    """Lint one stage's op stream against the base-class invariants."""
    out: list[Violation] = []
    fwd_seen: list[int] = []
    bwd_seen: list[int] = []
    fwd_pos: dict[int, int] = {}
    for pos, op in enumerate(ops):
        if op.kind not in ("fwd", "bwd"):
            out.append(Violation("op-kind", stage, f"op {pos} has kind {op.kind!r}"))
            continue
        if not 0 <= op.micro < num_micro:
            out.append(Violation("micro-range", stage, f"op {pos} targets micro {op.micro} outside 0..{num_micro - 1}"))
            continue
        if op.kind == "fwd":
            fwd_seen.append(op.micro)
            fwd_pos.setdefault(op.micro, pos)
        else:
            bwd_seen.append(op.micro)
            if op.micro not in fwd_pos:
                out.append(Violation("b-before-f", stage, f"B({op.micro}) at op {pos} precedes F({op.micro})"))

    for kind, seen in (("fwd", fwd_seen), ("bwd", bwd_seen)):
        counts = {m: seen.count(m) for m in set(seen)}
        missing = sorted(set(range(num_micro)) - set(seen))
        dupes = sorted(m for m, c in counts.items() if c > 1)
        if missing:
            out.append(Violation(f"{kind}-exactly-once", stage, f"missing micro(s) {missing}"))
        if dupes:
            out.append(Violation(f"{kind}-exactly-once", stage, f"duplicated micro(s) {dupes}"))
        if seen != sorted(seen):
            out.append(Violation(f"{kind}-monotone", stage, f"{kind} micro order {seen} is not increasing"))
    return out


def _peak_in_flight(ops: Sequence[StageOp]) -> int:
    depth = peak = 0
    for op in ops:
        depth += 1 if op.kind == "fwd" else -1
        peak = max(peak, depth)
    return peak


# ---------------------------------------------------------------------- #
# cross-stage feasibility


def check_deadlock_free(streams: Sequence[Sequence[StageOp]], num_micro: int) -> list[Violation]:
    """Abstract dependency-driven execution of all K streams.

    F(k, i) needs F(k-1, i) complete (k > 0); B(k, i) needs B(k+1, i)
    complete (k < K-1) and F(k, i) complete.  Each stage runs its stream
    strictly in order.  If the sweep stalls before every op executed, the
    schedule deadlocks on a real cluster no matter the timing.
    """
    K = len(streams)
    cursors = [0] * K
    done_f: set[tuple[int, int]] = set()
    done_b: set[tuple[int, int]] = set()
    total = sum(len(s) for s in streams)
    executed = 0
    while executed < total:
        progressed = False
        for k in range(K):
            if cursors[k] >= len(streams[k]):
                continue
            op = streams[k][cursors[k]]
            if op.kind == "fwd":
                if k > 0 and (k - 1, op.micro) not in done_f:
                    continue
                done_f.add((k, op.micro))
            else:
                if (k, op.micro) not in done_f:
                    continue
                if k < K - 1 and (k + 1, op.micro) not in done_b:
                    continue
                done_b.add((k, op.micro))
            cursors[k] += 1
            executed += 1
            progressed = True
        if not progressed:
            stuck = [
                f"stage {k} blocked at {streams[k][cursors[k]].kind}({streams[k][cursors[k]].micro})"
                for k in range(K)
                if cursors[k] < len(streams[k])
            ]
            return [Violation("deadlock", None, "; ".join(stuck))]
    return []


# ---------------------------------------------------------------------- #
# whole-schedule entry points


def check_schedule(schedule: Schedule, num_stages: int, num_micro: int) -> list[Violation]:
    """All invariants of ``schedule`` at (K, M); returns every violation."""
    violations: list[Violation] = []
    streams: list[list[StageOp]] = []
    for k in range(num_stages):
        try:
            ops = list(schedule.stage_ops(k, num_stages, num_micro))
        except Exception as exc:  # noqa: BLE001 - a raising stream is a finding
            violations.append(Violation("stream-error", k, f"stage_ops raised {exc!r}"))
            return violations
        streams.append(ops)
        violations.extend(check_stream(ops, num_micro, stage=k))
        advertised = schedule.stash_bound(k, num_stages, num_micro)
        actual = _peak_in_flight(ops)
        if advertised != actual:
            violations.append(
                Violation("stash-bound", k, f"advertises {advertised}, stream peaks at {actual}")
            )
        versions = schedule.weight_versions(k, num_stages)
        if versions < 1:
            violations.append(Violation("weight-versions", k, f"{versions} resident copies"))
    # Deadlock analysis is only meaningful on structurally-sane streams.
    if not violations:
        violations.extend(check_deadlock_free(streams, num_micro))
    return violations


def assert_schedule_valid(schedule: Schedule, num_stages: int, num_micro: int) -> None:
    violations = check_schedule(schedule, num_stages, num_micro)
    if violations:
        raise ScheduleViolation(violations)


# ---------------------------------------------------------------------- #
# analytic memory model (the fuzzer's OOM oracle)


@dataclass(frozen=True)
class MemoryPrediction:
    """Per-device bounds on the executor's peak memory ledger.

    ``lower[d] <= actual_peak[d] <= upper[d]`` whenever the run completes.
    A device whose *lower* bound exceeds capacity must OOM; a cluster
    whose *upper* bounds all fit must not.  With one hosted stage per
    device (a straight single-pipeline chain) the bounds coincide and the
    prediction is exact.

    ``capacity`` may be a per-device sequence (a heterogeneous cluster's
    ``device_memory_bytes``); a scalar is broadcast to every device.
    """

    lower: tuple[int, ...]
    upper: tuple[int, ...]

    def _capacities(self, capacity) -> tuple:
        if isinstance(capacity, (int, float)):
            return (capacity,) * len(self.lower)
        if len(capacity) != len(self.lower):
            raise ValueError(
                f"{len(capacity)} capacities for {len(self.lower)} devices"
            )
        return tuple(capacity)

    def must_oom(self, capacity) -> bool:
        return any(lo > cap for lo, cap in zip(self.lower, self._capacities(capacity)))

    def must_fit(self, capacity) -> bool:
        return all(hi <= cap for hi, cap in zip(self.upper, self._capacities(capacity)))


def predict_peak_memory(
    schedule: Schedule,
    stage_costs,
    num_micro: int,
    num_devices: int,
    device_map: Sequence[Sequence[int]],
    optimizer_state_factor: float = 2.0,
    with_reference_model: bool = False,
    activation_recompute: bool = False,
) -> MemoryPrediction:
    """Mirror of the executor's allocation pattern, solved statically.

    Weights (+versions+optimizer state, + the co-partitioned reference on
    pipeline 0) are resident for the whole run; stage (p, k) additionally
    holds up to ``stash_bound(k) * stash_bytes(k)`` of activations, and
    attains that peak because each stage executes its full stream.
    """
    K = stage_costs.num_stages
    weights = [0] * num_devices
    for row in device_map:
        for k, dev in enumerate(row):
            versions = schedule.weight_versions(k, K)
            weights[dev] += int(stage_costs.param_bytes[k] * (versions + optimizer_state_factor))
    if with_reference_model:
        for k, dev in enumerate(device_map[0]):
            weights[dev] += stage_costs.param_bytes[k]

    def stash_bytes(k: int) -> int:
        if activation_recompute:
            boundary = (
                stage_costs.act_out_bytes[k - 1] if k > 0 else stage_costs.act_out_bytes[k]
            )
            return int(min(boundary, stage_costs.stash_bytes[k]))
        return int(stage_costs.stash_bytes[k])

    stage_peaks: list[list[int]] = [[] for _ in range(num_devices)]
    for row in device_map:
        for k, dev in enumerate(row):
            bound = schedule.stash_bound(k, K, num_micro)
            stage_peaks[dev].append(bound * stash_bytes(k))
    lower = tuple(w + (max(p) if p else 0) for w, p in zip(weights, stage_peaks))
    upper = tuple(w + sum(p) for w, p in zip(weights, stage_peaks))
    return MemoryPrediction(lower=lower, upper=upper)


# ---------------------------------------------------------------------- #
# deliberate corruption (self-tests and `repro verify --inject`)


class CorruptedSchedule(Schedule):
    """Wraps a valid schedule and damages its streams in a chosen way.

    Modes:
      ``swapped-bwd``  — swap the first two backward ops on every stage
                         (breaks backward monotonicity);
      ``dropped-bwd``  — drop the last backward (breaks exactly-once and
                         the stash bound);
      ``dup-fwd``      — duplicate the first forward;
      ``cross-deadlock`` — give every non-last stage a zero-warmup
                         alternating stream (F0 B0 F1 B1 ...) while the
                         last stage runs AFAB.  Each stream lints clean
                         in isolation, but stage K-2's B(0) waits on the
                         last stage's B(0), which waits on F(1), which
                         waits on stage K-2's F(1) — scheduled after its
                         B(0).  A pure cross-stage cycle (needs M >= 2).
    """

    MODES = ("swapped-bwd", "dropped-bwd", "dup-fwd", "cross-deadlock")

    def __init__(self, base: Schedule, mode: str) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown corruption {mode!r}; pick from {self.MODES}")
        self.base = base
        self.mode = mode
        self.name = f"{base.name}+{mode}"
        self.sync_at_batch_end = base.sync_at_batch_end

    def stage_ops(self, stage: int, num_stages: int, num_micro: int) -> list[StageOp]:
        ops = list(self.base.stage_ops(stage, num_stages, num_micro))
        if self.mode == "swapped-bwd":
            idx = [i for i, op in enumerate(ops) if op.kind == "bwd"]
            if len(idx) >= 2:
                i, j = idx[0], idx[1]
                ops[i], ops[j] = ops[j], ops[i]
        elif self.mode == "dropped-bwd":
            idx = [i for i, op in enumerate(ops) if op.kind == "bwd"]
            if idx:
                del ops[idx[-1]]
        elif self.mode == "dup-fwd":
            idx = [i for i, op in enumerate(ops) if op.kind == "fwd"]
            if idx:
                ops.insert(idx[0], ops[idx[0]])
        elif self.mode == "cross-deadlock":
            if stage < num_stages - 1:
                ops = []
                for i in range(num_micro):
                    ops.append(StageOp("fwd", i))
                    ops.append(StageOp("bwd", i))
            else:
                ops = [StageOp("fwd", i) for i in range(num_micro)] + [
                    StageOp("bwd", i) for i in range(num_micro)
                ]
        return ops

    def stash_bound(self, stage: int, num_stages: int, num_micro: int) -> int:
        if self.mode == "cross-deadlock":
            # Per-stage bookkeeping is consistent here; the damage is the
            # cross-stage cycle, so let the deadlock detector find it.
            return super().stash_bound(stage, num_stages, num_micro)
        # Advertise the *base* bound so damaged streams also trip the
        # stash-bound check, as a real bookkeeping bug would.
        return self.base.stash_bound(stage, num_stages, num_micro)

    def weight_versions(self, stage: int, num_stages: int) -> int:
        return self.base.weight_versions(stage, num_stages)


def corrupt_schedule(base: Schedule, mode: str) -> CorruptedSchedule:
    """A deliberately-broken copy of ``base`` for negative testing."""
    return CorruptedSchedule(base, mode)
