"""Seeded fuzzing of the learned-tuner run store (the history axis).

Extends the ``repro.verify`` fuzzer family with randomized *run-history*
contents fed to the learned predictor: duplicated records, repeated
measurements of one config, records from stale cluster fingerprints or
foreign workloads, OOM-flagged records (up to the whole grid), and the
empty store.  Each case audits the contracts the learned layer makes:

* **crash-freedom** — ``LearnedPredictor.best_setting`` always returns a
  decision over the candidate grid, whatever the store holds;
* **fallback correctness** — an empty store (and a store with no usable
  records for the context) reproduces the analytic winner and the
  analytic prediction list exactly, with ``residual_applied`` False;
* **feasibility** — the chosen winner always fits the memory budget,
  and a setting OOM-vetoed by its own exact-context record is never
  chosen while a non-vetoed feasible setting exists;
* **round-trip + merge hygiene** — every fuzzed record survives a
  line round-trip, and ``merge`` stays idempotent and commutative;
* **determinism** — re-ranking the same store twice, and fitting the
  residual model on a reversed record list, give identical decisions.

``repro verify --tune-fuzz N`` runs N cases through the rotation.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field

from repro.utils.seeding import derive_rng

__all__ = [
    "TuneFuzzConfig",
    "TuneFuzzResult",
    "tune_fuzz_configs",
    "run_tune_fuzz_case",
    "run_tune_fuzz",
]

_MUTATIONS = ("empty", "duplicates", "stale-cluster", "oom-flagged", "mixed")

_M_GRID = (1, 2, 4, 8)
_N_GRID = (1, 2)


@dataclass(frozen=True)
class TuneFuzzConfig:
    """One randomized run-store configuration."""

    index: int
    seed: int
    mutation: str  # one of _MUTATIONS
    num_records: int
    workload: str

    def describe(self) -> str:
        return (
            f"tune[{self.index}] mutation={self.mutation} "
            f"records={self.num_records} workload={self.workload}"
        )


@dataclass
class TuneFuzzResult:
    config: TuneFuzzConfig
    problems: list[str] = field(default_factory=list)
    records_loaded: int = 0
    residual_applied: bool = False

    @property
    def ok(self) -> bool:
        return not self.problems


def tune_fuzz_configs(count: int, seed: int = 0) -> list[TuneFuzzConfig]:
    """Draw ``count`` configurations from the seeded stream."""
    rng = derive_rng("verify-tune-fuzz", count, seed=seed)
    configs = []
    for i in range(count):
        mutation = _MUTATIONS[i % len(_MUTATIONS)]
        configs.append(
            TuneFuzzConfig(
                index=i,
                seed=seed,
                mutation=mutation,
                num_records=0 if mutation == "empty" else int(rng.integers(1, 13)),
                workload="awd",
            )
        )
    return configs


@functools.lru_cache(maxsize=None)
def _harness(workload: str):
    """The fixed analytic side every case ranks against (cached)."""
    from repro.core.predictor import Predictor
    from repro.core.profiler import Profiler
    from repro.core.simcfg import calibration_for
    from repro.schedules import AdvanceFPSchedule
    from repro.tune.store import tuner_context

    cal = calibration_for(workload)
    profiler = Profiler(
        layer_costs=cal.layer_costs(),
        partition=cal.partition(),
        schedule=AdvanceFPSchedule(2),
        cluster_spec=cal.cluster_spec(),
        batch_size=cal.batch_size,
        activation_byte_scale=cal.activation_byte_scale,
        param_byte_scale=cal.param_byte_scale,
        stash_multiplier=cal.stash_multiplier,
        optimizer_state_factor=cal.optimizer_state_factor,
        with_reference_model=True,
    )
    predictor = Predictor(profiler.profile(iterations=4))
    context = tuner_context(profiler, workload=workload)
    return profiler, predictor, context, float(cal.memory_capacity_bytes)


def _fuzz_records(cfg: TuneFuzzConfig, predictor, context) -> list:
    """Synthesize ``cfg.num_records`` records under the case's mutation."""
    from repro.tune.store import TuneRecord

    rng = derive_rng("tune-fuzz-records", cfg.index, seed=cfg.seed)
    records = []
    for j in range(cfg.num_records):
        m = int(_M_GRID[int(rng.integers(0, len(_M_GRID)))])
        n = int(_N_GRID[int(rng.integers(0, len(_N_GRID)))])
        prediction = predictor.predict(m, n)
        kind = cfg.mutation
        if kind == "mixed":
            kind = ("duplicates", "stale-cluster", "oom-flagged")[
                int(rng.integers(0, 3))
            ]
        if kind == "stale-cluster":
            # a record of some other cluster / foreign workload: the
            # selector must route it to the transfer tier or drop it
            stale_ctx = f"stale{int(rng.integers(0, 3))}".ljust(16, "0")
            ctx_kwargs = dict(
                context=stale_ctx,
                cluster=f"clu{int(rng.integers(0, 3))}".ljust(16, "0"),
                workload=cfg.workload if rng.integers(0, 2) else "bert",
            )
        else:
            ctx_kwargs = dict(
                context=context.context,
                cluster=context.cluster,
                workload=cfg.workload,
            )
        oom = kind == "oom-flagged"
        ratio = float(rng.uniform(0.4, 2.5))
        record = TuneRecord(
            schedule=context.schedule,
            k=context.num_stages,
            m=m,
            n=n,
            predicted_batch_time=prediction.batch_time,
            predicted_peak_bytes=float(prediction.peak_memory),
            measured_batch_time=None if oom else ratio * prediction.batch_time,
            measured_peak_bytes=None if oom else float(prediction.peak_memory) * ratio,
            oom=oom,
            **ctx_kwargs,
        )
        records.append(record)
        if kind == "duplicates":
            records.append(record)  # exact duplicate: merge must dedup it
    return records


def run_tune_fuzz_case(cfg: TuneFuzzConfig) -> TuneFuzzResult:
    """Build the fuzzed store and audit every learned-layer contract."""
    from repro.core.predictor import fits_memory
    from repro.core.tuner import _stage_memory_limits
    from repro.tune.residual import LearnedPredictor, ResidualModel, select_records
    from repro.tune.store import RunStore, StoreError, TuneRecord

    out = TuneFuzzResult(config=cfg)
    _profiler, predictor, context, limit = _harness(cfg.workload)
    limits = _stage_memory_limits(_profiler, limit)

    try:
        records = _fuzz_records(cfg, predictor, context)
        store = RunStore.from_records(records)
    except StoreError as exc:
        out.problems.append(f"store rejected its own synthesized records: {exc}")
        return out
    out.records_loaded = len(store)

    # --- round-trip + merge hygiene -------------------------------------- #
    for record in store.records():
        if TuneRecord.from_line(record.to_line()) != record:
            out.problems.append(f"record {record.fingerprint} fails line round-trip")
    merged = store.merge(store)
    if [r.to_line() for r in merged.records()] != [
        r.to_line() for r in store.merge(store).merge(store).records()
    ]:
        out.problems.append("merge is not idempotent")
    distinct = len({r.to_line() for r in store.records()})
    if len(merged) != distinct:
        out.problems.append(
            f"self-merge holds {len(merged)} records, expected {distinct} distinct"
        )

    # --- the decision ----------------------------------------------------- #
    m_cands, n_cands = list(_M_GRID), list(_N_GRID)
    analytic_winner, analytic_preds = predictor.best_setting(
        m_cands, n_cands, limits
    )

    def decide():
        return LearnedPredictor(
            predictor, store=store, context=context, workload=cfg.workload
        ).best_setting(m_cands, n_cands, limits)

    try:
        decision = decide()
    except Exception as exc:  # crash-freedom is the contract under test
        out.problems.append(f"best_setting raised {type(exc).__name__}: {exc}")
        return out
    out.residual_applied = decision.residual_applied

    winner = decision.winner
    if (winner.m, winner.n) not in {(m, n) for m in m_cands for n in n_cands}:
        out.problems.append(f"winner ({winner.m}, {winner.n}) is outside the grid")
    if not fits_memory(winner.f_total, limits):
        out.problems.append(f"winner ({winner.m}, {winner.n}) does not fit memory")
    if not math.isfinite(winner.batch_time) or winner.batch_time <= 0:
        out.problems.append(f"winner batch_time {winner.batch_time} is not sane")

    # --- fallback correctness --------------------------------------------- #
    selected, tier = select_records(store, context, cfg.workload)
    if len(store) == 0 or not selected:
        if decision.winner != analytic_winner:
            out.problems.append(
                "no usable records but the decision diverges from analytic"
            )
        if decision.predictions != analytic_preds:
            out.problems.append("no usable records but predictions differ")
        if decision.residual_applied or decision.records_consulted:
            out.problems.append("no usable records but residual claims applied")
    else:
        if decision.records_consulted != len(selected):
            out.problems.append(
                f"records_consulted={decision.records_consulted} but "
                f"{len(selected)} records selected at tier {tier}"
            )

    # --- OOM vetoes -------------------------------------------------------- #
    if selected:
        model = ResidualModel.fit(selected, context=context.context)
        vetoed = {
            (p.m, p.n)
            for p in analytic_preds
            if model.known_oom(p.m, p.n) and fits_memory(p.f_total, limits)
        }
        feasible = {
            (p.m, p.n) for p in analytic_preds if fits_memory(p.f_total, limits)
        }
        if (winner.m, winner.n) in vetoed and feasible - vetoed:
            out.problems.append(
                f"winner ({winner.m}, {winner.n}) is OOM-vetoed while "
                f"{sorted(feasible - vetoed)} remain"
            )

    # --- determinism -------------------------------------------------------- #
    again = decide()
    if (again.winner, again.residual_applied) != (
        decision.winner,
        decision.residual_applied,
    ):
        out.problems.append("identical store ranked differently on re-run")
    if selected:
        forward = ResidualModel.fit(selected, context=context.context)
        backward = ResidualModel.fit(list(reversed(selected)), context=context.context)
        for m in m_cands:
            for n in n_cands:
                if forward.correction(m, n) != backward.correction(m, n):
                    out.problems.append(
                        f"correction({m}, {n}) depends on record order"
                    )

    return out


def run_tune_fuzz(count: int, seed: int = 0) -> list[TuneFuzzResult]:
    return [run_tune_fuzz_case(cfg) for cfg in tune_fuzz_configs(count, seed=seed)]
