"""Differential-testing & schedule-verification subsystem.

Three coordinated safety nets over the schedule / executor / trainer
stack (see ``docs/verification.md``):

* :mod:`repro.verify.oracle` — a sequential oracle with explicit
  weight-version replay, differentially tested against the pipelined
  numeric trainer and the elastic-averaging framework;
* :mod:`repro.verify.invariants` — a static sanitizer for any
  :class:`~repro.schedules.base.Schedule`'s op streams plus the analytic
  memory model;
* :mod:`repro.verify.fuzz` — a seeded config fuzzer driving the event
  simulator with a trace causality checker and an OOM-iff-predicted
  cross-check;
* :mod:`repro.verify.fuzz_sched` — a seeded job-arrival fuzzer driving
  the :mod:`repro.sched` multi-job scheduler and auditing admission,
  memory caps, device-time conservation, and determinism;
* :mod:`repro.verify.fuzz_tune` — a seeded run-store fuzzer feeding the
  :mod:`repro.tune` learned predictor corrupted histories (duplicates,
  stale cluster fingerprints, OOM-flagged records) and auditing
  crash-freedom and analytic-fallback correctness.

``repro verify`` on the CLI runs all of them.
"""

from repro.verify.invariants import (
    CorruptedSchedule,
    MemoryPrediction,
    ScheduleViolation,
    Violation,
    assert_schedule_valid,
    check_deadlock_free,
    check_schedule,
    check_stream,
    corrupt_schedule,
    predict_peak_memory,
)
from repro.verify.oracle import (
    VERIFIED_SCHEDULES,
    DifferentialReport,
    ElasticOracle,
    differential_check,
    elastic_equivalence_check,
    make_toy_model,
    run_async_oracle,
    run_differential_sweep,
    run_sync_oracle,
    toy_batch,
)
from repro.verify.fuzz import (
    FuzzConfig,
    FuzzResult,
    check_trace_causality,
    fuzz_configs,
    inject_causality_violation,
    run_fuzz,
    run_fuzz_case,
)
from repro.verify.fuzz_sched import (
    SchedFuzzConfig,
    SchedFuzzResult,
    run_sched_fuzz,
    run_sched_fuzz_case,
    sched_fuzz_configs,
)
from repro.verify.fuzz_tune import (
    TuneFuzzConfig,
    TuneFuzzResult,
    run_tune_fuzz,
    run_tune_fuzz_case,
    tune_fuzz_configs,
)

__all__ = [
    "Violation",
    "ScheduleViolation",
    "check_stream",
    "check_schedule",
    "check_deadlock_free",
    "assert_schedule_valid",
    "predict_peak_memory",
    "MemoryPrediction",
    "corrupt_schedule",
    "CorruptedSchedule",
    "VERIFIED_SCHEDULES",
    "DifferentialReport",
    "ElasticOracle",
    "differential_check",
    "elastic_equivalence_check",
    "run_differential_sweep",
    "run_sync_oracle",
    "run_async_oracle",
    "make_toy_model",
    "toy_batch",
    "FuzzConfig",
    "FuzzResult",
    "fuzz_configs",
    "run_fuzz",
    "run_fuzz_case",
    "check_trace_causality",
    "inject_causality_violation",
    "SchedFuzzConfig",
    "SchedFuzzResult",
    "sched_fuzz_configs",
    "run_sched_fuzz",
    "run_sched_fuzz_case",
    "TuneFuzzConfig",
    "TuneFuzzResult",
    "tune_fuzz_configs",
    "run_tune_fuzz",
    "run_tune_fuzz_case",
]
