"""Sequential oracle + differential tester for the numeric pipeline.

PipeDream's lesson is that weight-version bookkeeping is where pipelined
training silently diverges from sequential training, and torchgpipe's is
that the cure is an independent single-process oracle.  This module
provides both:

* :func:`run_sync_oracle` — for synchronous schedules: plain whole-model
  per-micro-batch passes (no stage slicing, no op streams, no sweep),
  with gradient accumulation in micro order and per-stage-group
  clip/step to mirror the distributed optimizer semantics.
* :func:`run_async_oracle` — for PipeDream: explicit weight-version
  replay.  The version a stage uses for F(i) is a *static* property of
  its op stream (the number of backwards scheduled before F(i)), so the
  oracle walks micro-batches in order, fast-forwards each stage to its
  scheduled version, runs one whole-model forward under the mixed
  per-stage versions, and backwards immediately — no event engine, no
  stashing, yet bit-for-bit the runner's semantics.
* :func:`ElasticOracle` — an independent re-derivation of §3.2's
  dilute/accumulate/normalize round, including queue staleness.
* :func:`differential_check` / :func:`run_differential_sweep` — drive a
  :class:`~repro.core.pipeline.PipelinedRunner` (plus, for N > 1, the
  real :class:`~repro.core.elastic.ElasticAveragingFramework`) and the
  oracle over identical seeded micro-batch streams, and report the max
  absolute divergence in gradients, weights, optimizer state and the
  post-averaging reference.

Everything runs on a tiny float64 toy pipeline model so the whole
(P, M, N) sweep of ``repro verify`` finishes in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.elastic import ElasticAveragingFramework
from repro.core.pipeline import PipelinedRunner
from repro.graph.partitioner import Partition, partition_uniform
from repro.models.pipeline_model import ActivationBundle, PipelineLayer, PipelineModel
from repro.nn import Linear
from repro.optim import SGD, Adam
from repro.optim.optimizer import Optimizer
from repro.schedules.base import Schedule, StageOp
from repro.tensor import Tensor, tanh
from repro.utils.seeding import derive_rng

__all__ = [
    "VERIFIED_SCHEDULES",
    "make_toy_model",
    "toy_batch",
    "run_sync_oracle",
    "run_async_oracle",
    "ElasticOracle",
    "DifferentialReport",
    "differential_check",
    "run_differential_sweep",
    "elastic_equivalence_check",
]

GRAD_CLIP = 5.0

#: Every registered schedule the differential oracle covers.  Chimera and
#: interleaved virtual stages are simulator-level *placements* of the
#: 1F1B stream (their numerics are OneFOneB); they are listed so the
#: parametrized suites cover the streams those runners execute, and the
#: fuzzer exercises their device maps separately.
VERIFIED_SCHEDULES: dict[str, Callable[[], Schedule]] = {}


def _register_schedules() -> None:
    from repro.schedules import (
        AFABSchedule,
        AdvanceFPSchedule,
        OneFOneBSchedule,
        PipeDreamSchedule,
    )

    VERIFIED_SCHEDULES.update(
        {
            "afab": AFABSchedule,
            "1f1b": lambda: OneFOneBSchedule(versions=1),
            "2bw": lambda: OneFOneBSchedule(versions=2),
            "advance_fp": lambda: AdvanceFPSchedule(advance=1),
            "advance_fp3": lambda: AdvanceFPSchedule(advance=3),
            "pipedream": PipeDreamSchedule,
            "chimera": lambda: OneFOneBSchedule(versions=1),
            "interleaved": lambda: OneFOneBSchedule(versions=1),
        }
    )


_register_schedules()


# ---------------------------------------------------------------------- #
# toy workload


class ToyAffine(PipelineLayer):
    """tanh(Wx + b) on the bundle's ``x``; passes the target through."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.fc = Linear(dim, dim)
        # float32-representable float64 values: exact under both the
        # framework's float32 reference averaging and float64 autograd.
        self.fc.weight.data = (
            (rng.standard_normal((dim, dim)) * 0.4).astype(np.float32).astype(np.float64)
        )
        self.fc.bias.data = np.zeros(dim, dtype=np.float64)

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        out = dict(bundle)
        x = bundle["x"]
        if not isinstance(x, Tensor):
            x = Tensor(np.ascontiguousarray(x))
        out["x"] = tanh(self.fc(x))
        return out

    def flops_per_sample(self) -> float:
        return float(2 * self.fc.weight.size)

    def activation_floats_per_sample(self) -> float:
        return float(self.fc.weight.shape[0])


class ToyLoss(PipelineLayer):
    """Mean-squared error of ``x`` against the carried target ``y``."""

    def __init__(self) -> None:
        super().__init__()

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        out = dict(bundle)
        y = bundle["y"]
        if not isinstance(y, Tensor):
            y = Tensor(np.ascontiguousarray(y))
        diff = bundle["x"] - y
        out["loss"] = (diff * diff).mean()
        return out

    def flops_per_sample(self) -> float:
        return 1.0

    def activation_floats_per_sample(self) -> float:
        return 1.0


def make_toy_model(num_layers: int, dim: int = 6, seed: int = 0) -> PipelineModel:
    """A ``num_layers``-affine chain + MSE head, deterministic in ``seed``."""
    layers: list[PipelineLayer] = [
        ToyAffine(dim, derive_rng("verify-toy", i, seed=seed)) for i in range(num_layers)
    ]
    layers.append(ToyLoss())
    return PipelineModel(layers=layers, name="verify-toy", metric_mode="min")


def toy_batch(num_micro: int, mb_size: int, dim: int = 6, seed: int = 0) -> list[dict[str, np.ndarray]]:
    """``num_micro`` seeded micro-batches of (x, y) pairs."""
    rng = derive_rng("verify-batch", num_micro, mb_size, seed=seed)
    return [
        {
            "x": rng.standard_normal((mb_size, dim)),
            "y": rng.standard_normal((mb_size, dim)),
        }
        for _ in range(num_micro)
    ]


# ---------------------------------------------------------------------- #
# per-stage optimizer plumbing shared by both oracles


def _stage_param_groups(model: PipelineModel, partition: Partition) -> list[list]:
    groups = []
    for k in range(partition.num_stages):
        lo, hi = partition.span(k)
        params = []
        for layer in model.layers[lo:hi]:
            params.extend(layer.parameters())
        groups.append(params)
    return groups


def _step_group(params, opt: Optimizer | None, scale: float, grad_clip: float | None) -> None:
    for p in params:
        if p.grad is not None:
            p.grad = p.grad * scale
    if opt is not None:
        if grad_clip is not None:
            opt.clip_grad_norm(grad_clip)
        opt.step()
        for p in params:
            p.zero_grad()


# ---------------------------------------------------------------------- #
# synchronous oracle


def run_sync_oracle(
    model: PipelineModel,
    partition: Partition,
    micro_batches: Sequence[Mapping[str, np.ndarray]],
    optimizers: Sequence[Optimizer] | None = None,
    grad_clip: float | None = GRAD_CLIP,
) -> float:
    """One synchronous batch, the sequential way.

    Per micro-batch (in order): whole-model forward + backward with
    gradient accumulation.  Then scale by 1/M and apply one optimizer
    step *per stage group* — distributed pipelines clip the gradient norm
    per stage, which a single whole-model optimizer would not reproduce.
    Returns the mean micro-batch loss.
    """
    model.zero_grad()
    losses = []
    for mb in micro_batches:
        loss = model.loss(mb)
        loss.backward()
        losses.append(float(loss.item()))
    scale = 1.0 / len(micro_batches)
    groups = _stage_param_groups(model, partition)
    opts = optimizers if optimizers is not None else [None] * len(groups)
    for params, opt in zip(groups, opts):
        _step_group(params, opt, scale, grad_clip)
    return float(np.mean(losses))


# ---------------------------------------------------------------------- #
# asynchronous (PipeDream) oracle: explicit weight-version replay


def _version_schedule(ops: Sequence[StageOp], num_micro: int) -> list[int]:
    """versions[i] = number of updates applied before F(i) on this stage."""
    versions = [0] * num_micro
    updates = 0
    for op in ops:
        if op.kind == "fwd":
            versions[op.micro] = updates
        else:
            updates += 1
    return versions


def run_async_oracle(
    model: PipelineModel,
    partition: Partition,
    schedule: Schedule,
    micro_batches: Sequence[Mapping[str, np.ndarray]],
    optimizers: Sequence[Optimizer],
    grad_clip: float | None = GRAD_CLIP,
) -> float:
    """One PipeDream batch with explicit weight-version replay.

    The stream invariants make the replay sequential: backwards (hence
    updates) happen in micro order on every stage, and the weight version
    F(i) uses on stage k is the count of backwards scheduled before it.
    So walk micros in order; before forwarding micro i, fast-forward each
    stage to its scheduled version by applying the pending (already
    computed) per-micro updates; then one whole-model forward under the
    mixed versions and an immediate backward — which *is* the stashed
    gradient, because the weights have not moved since this forward.
    """
    K = partition.num_stages
    M = len(micro_batches)
    versions = [
        _version_schedule(schedule.stage_ops(k, K, M), M) for k in range(K)
    ]
    groups = _stage_param_groups(model, partition)
    # Gradient of micro i at stage k, recorded as it is computed.
    pending_grads: list[list[list[np.ndarray] | None]] = [
        [None] * M for _ in range(K)
    ]
    applied = [0] * K
    scale = 1.0 / M
    losses = []

    def apply_update(k: int) -> None:
        j = applied[k]
        grads = pending_grads[k][j]
        assert grads is not None, f"update {j} on stage {k} replayed before its backward"
        for p, g in zip(groups[k], grads):
            p.grad = g.copy()
        _step_group(groups[k], optimizers[k], scale, grad_clip)
        pending_grads[k][j] = None
        applied[k] += 1

    for i, mb in enumerate(micro_batches):
        for k in range(K):
            while applied[k] < versions[k][i]:
                apply_update(k)
        model.zero_grad()
        loss = model.loss(mb)
        loss.backward()
        losses.append(float(loss.item()))
        for k in range(K):
            pending_grads[k][i] = [
                p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
                for p in groups[k]
            ]
    for k in range(K):
        while applied[k] < M:
            apply_update(k)
    model.zero_grad()
    return float(np.mean(losses))


# ---------------------------------------------------------------------- #
# elastic-averaging oracle (§3.2, re-derived)


class ElasticOracle:
    """Independent implementation of the dilute/accumulate/normalize round.

    Mirrors the framework's dtype discipline — the reference state and the
    accumulator are float32, the spec's storage format for the center —
    but re-derives the algorithm from §3.2: capture x_i before the local
    step, Δ_i = x_i' − x_i, dilute x_i ← (1−α)x_i' + α·x_ref against the
    possibly-stale reference, enqueue Δ_i with ``delay`` rounds of
    staleness, and once N deltas arrived apply x_ref += normalize(ΣΔ).
    """

    def __init__(
        self,
        models: Sequence[PipelineModel],
        alpha: float | None = None,
        queue_delay: int = 1,
        update_normalization: str = "mean",
    ) -> None:
        self.models = list(models)
        n = len(self.models)
        self.alpha = (1.0 / n) if alpha is None else float(alpha)
        self.delay = queue_delay
        self.normalization = update_normalization
        stacks: dict[str, np.ndarray] = {}
        for m in self.models:
            for name, p in m.named_parameters():
                acc = stacks.get(name)
                stacks[name] = p.data.astype(np.float64) + (0.0 if acc is None else acc)
        self.reference: dict[str, np.ndarray] = {
            name: (total / n).astype(np.float32) for name, total in stacks.items()
        }
        self._clock = 0
        self._queue: list[tuple[int, dict[str, np.ndarray]]] = []
        self._accumulated = {k: np.zeros_like(v) for k, v in self.reference.items()}
        self._received = 0

    def capture(self, index: int) -> dict[str, np.ndarray]:
        return self.models[index].state_dict()

    def commit(self, index: int, before: Mapping[str, np.ndarray]) -> None:
        model = self.models[index]
        delta: dict[str, np.ndarray] = {}
        for name, p in model.named_parameters():
            delta[name] = p.data - before[name]
            p.data = (1.0 - self.alpha) * p.data + self.alpha * self.reference[name]
        self._queue.append((self._clock + self.delay, delta))

    def end_iteration(self) -> None:
        self._clock += 1
        remaining = []
        for visible_at, delta in self._queue:
            if visible_at <= self._clock:
                for name, value in delta.items():
                    # float32 store of a float64 sum, like the framework's
                    # in-place accumulate.
                    self._accumulated[name] = (
                        self._accumulated[name].astype(np.float64) + value
                    ).astype(np.float32)
                self._received += 1
            else:
                remaining.append((visible_at, delta))
        self._queue = remaining
        if self._received >= len(self.models):
            scale = 1.0 if self.normalization == "sum" else 1.0 / len(self.models)
            for name in self.reference:
                self.reference[name] = self.reference[name] + scale * self._accumulated[name]
                self._accumulated[name][...] = 0.0
            self._received = 0


def elastic_equivalence_check(
    framework: ElasticAveragingFramework,
    build_model: Callable[[], PipelineModel],
    rounds: int = 3,
    seed: int = 0,
    update_scale: float = 0.01,
) -> float:
    """Probe a *live* framework's state against a fresh :class:`ElasticOracle`.

    Used by ``repro.resilience`` after a recovery action (evict / rejoin /
    restart): clones the framework — current α, queue delay, normalization
    and reference included — into independent model copies, then drives
    the clone and an oracle seeded from the same state through ``rounds``
    identical synthetic update rounds.  Returns the max absolute
    divergence over the resulting references and model weights; any
    nonzero drift means the resize left the framework inconsistent with
    an independent §3.2 derivation at the new N.  The framework under
    test is not mutated.
    """
    def clone_set():
        clones = []
        for m in framework.models:
            c = build_model()
            c.load_state_dict(m.state_dict())
            clones.append(c)
        return clones

    clone_models, oracle_models = clone_set(), clone_set()
    clone = ElasticAveragingFramework(
        clone_models,
        alpha=framework.alpha,
        queue_delay=framework.queue.delay,
        update_normalization=framework.update_normalization,
    )
    oracle = ElasticOracle(
        oracle_models,
        alpha=framework.alpha,
        queue_delay=framework.queue.delay,
        update_normalization=framework.update_normalization,
    )
    # Both start from the framework's *actual* reference, not the model
    # average their constructors computed.
    for holder in (clone, oracle):
        holder.reference = {k: v.copy() for k, v in framework.reference.items()}
        holder._accumulated = {k: np.zeros_like(v) for k, v in holder.reference.items()}

    for r in range(rounds):
        for i in range(len(clone.models)):
            rng = derive_rng("elastic-probe", r, i, seed=seed)
            updates = {
                name: (rng.standard_normal(p.shape) * update_scale).astype(p.data.dtype)
                for name, p in clone.models[i].named_parameters()
            }
            c_before = clone.capture(i)
            o_before = oracle.capture(i)
            for name, p in clone.models[i].named_parameters():
                p.data = p.data + updates[name]
            for name, p in oracle.models[i].named_parameters():
                p.data = p.data + updates[name]
            clone.commit(i, c_before)
            oracle.commit(i, o_before)
        clone.end_iteration()
        oracle.end_iteration()

    worst = max(
        _max_param_delta(a, b) for a, b in zip(clone.models, oracle.models)
    )
    for name in clone.reference:
        worst = max(
            worst, float(np.abs(clone.reference[name] - oracle.reference[name]).max())
        )
    return worst


# ---------------------------------------------------------------------- #
# differential driver


@dataclass
class DifferentialReport:
    """Max absolute divergences between pipeline and oracle."""

    schedule: str
    num_stages: int
    num_micro: int
    num_pipelines: int
    max_grad_delta: float
    max_weight_delta: float
    max_opt_state_delta: float
    max_reference_delta: float
    max_loss_delta: float

    def worst(self) -> float:
        return max(
            self.max_grad_delta,
            self.max_weight_delta,
            self.max_opt_state_delta,
            self.max_reference_delta,
            self.max_loss_delta,
        )

    def ok(self, tol: float = 1e-9) -> bool:
        return self.worst() <= tol

    def __str__(self) -> str:
        return (
            f"{self.schedule} K={self.num_stages} M={self.num_micro} N={self.num_pipelines}: "
            f"|Δgrad|={self.max_grad_delta:.3g} |Δw|={self.max_weight_delta:.3g} "
            f"|Δopt|={self.max_opt_state_delta:.3g} |Δref|={self.max_reference_delta:.3g}"
        )


def _ordered_params(model: PipelineModel) -> list:
    return [p for _, p in model.named_parameters()]


def _max_param_delta(a: PipelineModel, b: PipelineModel) -> float:
    worst = 0.0
    for pa, pb in zip(_ordered_params(a), _ordered_params(b)):
        worst = max(worst, float(np.abs(pa.data - pb.data).max()))
    return worst


def _max_grad_delta(a: PipelineModel, b: PipelineModel) -> float:
    worst = 0.0
    for pa, pb in zip(_ordered_params(a), _ordered_params(b)):
        ga = pa.grad if pa.grad is not None else np.zeros_like(pa.data)
        gb = pb.grad if pb.grad is not None else np.zeros_like(pb.data)
        worst = max(worst, float(np.abs(ga - gb).max()))
    return worst


def _max_opt_delta(pipe_opts: Sequence[Optimizer], oracle_opts: Sequence[Optimizer]) -> float:
    worst = 0.0
    for oa, ob in zip(pipe_opts, oracle_opts):
        sa, sb = oa.state_dict()["state"], ob.state_dict()["state"]
        for key in set(sa) | set(sb):
            ea, eb = sa.get(key, {}), sb.get(key, {})
            for field in set(ea) | set(eb):
                va, vb = ea.get(field), eb.get(field)
                if va is None or vb is None:
                    worst = max(worst, float("inf"))
                elif isinstance(va, np.ndarray):
                    worst = max(worst, float(np.abs(va - np.asarray(vb)).max()))
                else:
                    worst = max(worst, float(abs(va - vb)))
    return worst


def _make_optimizer(kind: str, params) -> Optimizer:
    if kind == "sgd":
        return SGD(params, lr=0.05, momentum=0.9)
    if kind == "adam":
        return Adam(params, lr=0.01)
    raise ValueError(f"unknown optimizer {kind!r}")


def differential_check(
    schedule_name: str,
    num_stages: int,
    num_micro: int,
    num_pipelines: int = 1,
    iterations: int = 2,
    optimizer: str = "sgd",
    queue_delay: int = 1,
    dim: int = 6,
    mb_size: int = 2,
    seed: int = 0,
) -> DifferentialReport:
    """Run pipeline and oracle on identical inputs; report divergences.

    Phase 1 (synchronous schedules only): a fresh model pair runs one
    batch with no optimizer and the accumulated 1/M-scaled gradients are
    compared.  Phase 2: ``iterations`` optimizer-driven rounds — with
    ``num_pipelines > 1``, each round feeds every pipeline its own batch
    and closes with an elastic-averaging step (the real framework on the
    pipelined side, :class:`ElasticOracle` on the oracle side) — then
    weights, optimizer state and the reference are compared.
    """
    factory = VERIFIED_SCHEDULES[schedule_name]
    schedule = factory()
    num_layers = num_stages  # one affine layer per stage + the loss head

    def fresh_pair(tag: int):
        pipe_model = make_toy_model(num_layers, dim=dim, seed=seed * 7919 + tag)
        oracle_model = make_toy_model(num_layers, dim=dim, seed=seed * 7919 + tag)
        # Stage k owns affine k; the last stage also hosts the (parameter
        # free) loss head so every stage optimizer has parameters.
        partition = Partition(tuple(range(num_stages)) + (num_stages + 1,))
        return pipe_model, oracle_model, partition

    sync = schedule.sync_at_batch_end
    max_grad = 0.0
    max_loss = 0.0

    # ---- phase 1: raw gradient comparison (sync only) ------------------ #
    if sync:
        pipe_model, oracle_model, partition = fresh_pair(tag=0)
        runner = PipelinedRunner(pipe_model, partition, schedule, optimizer_factory=None)
        micros = toy_batch(num_micro, mb_size, dim=dim, seed=seed)
        pipe_loss = runner.run_batch(micros)
        oracle_loss = run_sync_oracle(oracle_model, partition, micros, optimizers=None)
        max_grad = _max_grad_delta(pipe_model, oracle_model)
        max_loss = abs(pipe_loss - oracle_loss)

    # ---- phase 2: optimizer + elastic rounds --------------------------- #
    pipe_models, oracle_models = [], []
    runners, pipe_opts, oracle_opts, partitions = [], [], [], []
    for n in range(num_pipelines):
        pipe_model, oracle_model, partition = fresh_pair(tag=1 + n)
        opt_factory = lambda params: _make_optimizer(optimizer, params)
        runner = PipelinedRunner(
            pipe_model, partition, schedule, optimizer_factory=opt_factory, grad_clip=GRAD_CLIP
        )
        groups = _stage_param_groups(oracle_model, partition)
        oracle_opt = [_make_optimizer(optimizer, params) for params in groups]
        pipe_models.append(pipe_model)
        oracle_models.append(oracle_model)
        runners.append(runner)
        pipe_opts.extend(runner.stage_optimizers)
        oracle_opts.extend(oracle_opt)
        partitions.append((partition, oracle_opt))

    framework = ElasticAveragingFramework(pipe_models, queue_delay=queue_delay)
    oracle_elastic = ElasticOracle(oracle_models, queue_delay=queue_delay)
    max_ref = 0.0

    for it in range(iterations):
        for n in range(num_pipelines):
            micros = toy_batch(num_micro, mb_size, dim=dim, seed=seed + 1000 * it + 31 * n + 1)
            before = framework.capture(n)
            pipe_loss = runners[n].run_batch(micros)
            framework.commit(n, before)

            partition, oracle_opt = partitions[n]
            o_before = oracle_elastic.capture(n)
            if sync:
                oracle_loss = run_sync_oracle(
                    oracle_models[n], partition, micros, optimizers=oracle_opt
                )
            else:
                oracle_loss = run_async_oracle(
                    oracle_models[n], partition, schedule, micros, optimizers=oracle_opt
                )
            oracle_elastic.commit(n, o_before)
            max_loss = max(max_loss, abs(pipe_loss - oracle_loss))
        framework.end_iteration()
        oracle_elastic.end_iteration()

    max_weight = max(
        _max_param_delta(a, b) for a, b in zip(pipe_models, oracle_models)
    )
    for name in framework.reference:
        max_ref = max(
            max_ref,
            float(np.abs(framework.reference[name] - oracle_elastic.reference[name]).max()),
        )
    max_opt = _max_opt_delta(pipe_opts, oracle_opts)

    return DifferentialReport(
        schedule=schedule_name,
        num_stages=num_stages,
        num_micro=num_micro,
        num_pipelines=num_pipelines,
        max_grad_delta=max_grad,
        max_weight_delta=max_weight,
        max_opt_state_delta=max_opt,
        max_reference_delta=max_ref,
        max_loss_delta=max_loss,
    )


def run_differential_sweep(
    schedules: Sequence[str] | None = None,
    stages: Sequence[int] = (2, 3, 4),
    micros: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    pipelines: Sequence[int] = (1, 2, 3),
    optimizer: str = "sgd",
    seed: int = 0,
) -> list[DifferentialReport]:
    """The acceptance sweep: every schedule at (P=2..4, M=2..8, N=1..3)."""
    names = list(schedules) if schedules is not None else list(VERIFIED_SCHEDULES)
    reports = []
    for name in names:
        for p in stages:
            for m in micros:
                for n in pipelines:
                    reports.append(
                        differential_check(
                            name, p, m, num_pipelines=n, optimizer=optimizer, seed=seed
                        )
                    )
    return reports
