"""Seeded config fuzzer + trace causality checker for the simulator.

The event engine is where races hide: one generator process per
(pipeline, stage) walks its op stream, and correctness rests on every
span starting only after its data dependencies completed.  This module
re-derives those dependencies from the schedule's op streams and checks
them against the *recorded trace* — a causality detector that needs no
knowledge of the engine's internals — and cross-checks the memory
ledger's OOM behaviour against the sanitizer's analytic model
(:func:`repro.verify.invariants.predict_peak_memory`).

:func:`fuzz_configs` draws random (schedule, stages, micro-batches,
pipelines, placement, memory-budget) configurations from a seeded stream
(:mod:`repro.utils.seeding`), so a fuzz budget is exactly reproducible
from its seed; ``repro verify --fuzz N`` runs N of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.schedules import (
    AFABSchedule,
    AdvanceFPSchedule,
    OneFOneBSchedule,
    PipeDreamSchedule,
    PipelineSimRunner,
    StageCosts,
    chimera_device_map,
    interleaved_device_map,
)
from repro.schedules.base import Schedule
from repro.sim import ClusterSpec, Simulator, make_cluster
from repro.sim.trace import SpanKind, TraceRecorder, _Span
from repro.utils.seeding import derive_rng
from repro.verify.invariants import check_schedule, predict_peak_memory

__all__ = [
    "FuzzConfig",
    "FuzzResult",
    "fuzz_configs",
    "build_runner",
    "check_trace_causality",
    "inject_causality_violation",
    "run_fuzz_case",
    "run_fuzz",
]

#: Timestamps are simulator floats; dependencies are honoured when the
#: consumer starts no earlier than the producer finished, up to rounding.
TIME_EPS = 1e-9


# ---------------------------------------------------------------------- #
# configuration drawing


@dataclass(frozen=True)
class FuzzConfig:
    """One randomly-drawn simulator configuration."""

    case: int
    schedule: str
    advance: int
    versions: int
    num_stages: int
    num_micro: int
    num_pipelines: int
    placement: str  # "straight" | "chimera" | "interleaved"
    virtual_factor: int
    iterations: int
    memory_regime: str  # "fits" | "oom"
    activation_recompute: bool
    with_reference_model: bool
    seed: int
    #: heterogeneity axis: "none" keeps the legacy uniform cluster
    #: bit-for-bit; "speeds" draws per-device speed multipliers (timing
    #: only), "memory" gives every device its own capacity (the OOM
    #: regime squeezes one victim device below its lower bound instead of
    #: the whole cluster), "both" does both.
    hetero: str = "none"
    device_speed: tuple[float, ...] = ()
    oom_victim: int = 0

    def describe(self) -> str:
        extra = {
            "advance_fp": f"(advance={self.advance})",
            "1f1b": f"(versions={self.versions})",
        }.get(self.schedule, "")
        return (
            f"case {self.case}: {self.schedule}{extra} K={self.num_stages} "
            f"M={self.num_micro} N={self.num_pipelines} {self.placement} "
            f"it={self.iterations} mem={self.memory_regime}"
            + (" recompute" if self.activation_recompute else "")
            + (" +ref" if self.with_reference_model else "")
            + (f" hetero={self.hetero}" if self.hetero != "none" else "")
        )

    def make_schedule(self) -> Schedule:
        if self.schedule == "afab":
            return AFABSchedule()
        if self.schedule == "1f1b":
            return OneFOneBSchedule(versions=self.versions)
        if self.schedule == "advance_fp":
            return AdvanceFPSchedule(advance=self.advance)
        if self.schedule == "pipedream":
            return PipeDreamSchedule()
        raise ValueError(f"unknown schedule {self.schedule!r}")


def fuzz_configs(count: int, seed: int = 0) -> list[FuzzConfig]:
    """Draw ``count`` reproducible configurations from ``seed``."""
    rng = derive_rng("verify-fuzz", count, seed=seed)
    configs = []
    for case in range(count):
        schedule = str(rng.choice(["afab", "1f1b", "advance_fp", "pipedream"]))
        num_stages = int(rng.integers(2, 5))
        num_micro = int(rng.integers(1, 9))
        placement = "straight"
        num_pipelines = int(rng.integers(1, 3))
        virtual_factor = 1
        # PipeDream has no batch barrier and Chimera's geometry is defined
        # for the bidirectional pair, so exotic placements stick to the
        # synchronous schedules.
        if schedule != "pipedream":
            draw = rng.random()
            if draw < 0.2:
                placement, num_pipelines = "chimera", 2
            elif draw < 0.4:
                placement, num_pipelines, virtual_factor = "interleaved", 1, 2
        # Heterogeneity axis (devices == stages in every placement here).
        hetero_draw = rng.random()
        if hetero_draw < 0.20:
            hetero = "speeds"
        elif hetero_draw < 0.35:
            hetero = "memory"
        elif hetero_draw < 0.45:
            hetero = "both"
        else:
            hetero = "none"
        device_speed = ()
        if hetero in ("speeds", "both"):
            device_speed = tuple(
                round(float(s), 2) for s in rng.uniform(0.4, 1.0, num_stages)
            )
        oom_victim = int(rng.integers(0, num_stages))
        configs.append(
            FuzzConfig(
                case=case,
                schedule=schedule,
                advance=int(rng.integers(0, 4)),
                versions=int(rng.choice([1, 2])),
                num_stages=num_stages,
                num_micro=num_micro,
                num_pipelines=num_pipelines,
                placement=placement,
                virtual_factor=virtual_factor,
                iterations=int(rng.integers(1, 3)),
                memory_regime=str(rng.choice(["fits", "fits", "fits", "oom"])),
                activation_recompute=bool(rng.random() < 0.25),
                with_reference_model=bool(rng.random() < 0.5),
                seed=int(rng.integers(0, 2**31 - 1)),
                hetero=hetero,
                device_speed=device_speed,
                oom_victim=oom_victim,
            )
        )
    return configs


# ---------------------------------------------------------------------- #
# building the simulated system for one config


def _draw_costs(cfg: FuzzConfig, num_stages: int) -> StageCosts:
    rng = derive_rng("verify-fuzz-costs", cfg.case, seed=cfg.seed)
    return StageCosts(
        fwd_flops=tuple(float(f) for f in rng.uniform(1e6, 8e6, num_stages)),
        act_out_bytes=tuple(float(b) for b in rng.uniform(1e6, 6e6, num_stages)),
        stash_bytes=tuple(float(b) for b in rng.uniform(2e6, 12e6, num_stages)),
        param_bytes=tuple(int(b) for b in rng.uniform(5e5, 4e6, num_stages)),
    )


def build_runner(cfg: FuzzConfig) -> tuple[PipelineSimRunner, "MemoryPredictionBundle"]:
    """Instantiate the simulated cluster + runner for one fuzz config.

    The memory budget is derived from the analytic model so every case
    lands in a *determinate* regime: "fits" sets capacity at the upper
    bound (the run must complete), "oom" strictly below the tightest
    lower bound (the run must OOM) — the iff the acceptance criteria ask
    for, with the indeterminate band between the bounds excluded by
    construction.
    """
    schedule = cfg.make_schedule()
    if cfg.placement == "chimera":
        num_devices = cfg.num_stages
        device_map = chimera_device_map(cfg.num_stages)
        num_stages = cfg.num_stages
    elif cfg.placement == "interleaved":
        num_devices = cfg.num_stages
        row = interleaved_device_map(num_devices, cfg.virtual_factor)
        device_map = [list(row) for _ in range(cfg.num_pipelines)]
        num_stages = num_devices * cfg.virtual_factor
    else:
        num_devices = cfg.num_stages
        device_map = [list(range(cfg.num_stages)) for _ in range(cfg.num_pipelines)]
        num_stages = cfg.num_stages

    costs = _draw_costs(cfg, num_stages)
    prediction = predict_peak_memory(
        schedule,
        costs,
        cfg.num_micro,
        num_devices,
        device_map,
        with_reference_model=cfg.with_reference_model,
        activation_recompute=cfg.activation_recompute,
    )
    if cfg.memory_regime == "fits":
        capacity = max(prediction.upper) + 1
    else:
        capacity = max(prediction.lower) - 1
    capacity = max(capacity, 1)

    # Heterogeneous memory gives every device its own determinate budget:
    # "fits" puts each device just above its upper bound; "oom" squeezes
    # one victim device strictly below its lower bound while the rest fit,
    # so must_oom/must_fit stay decidable per device.
    device_memory: tuple[int, ...] | None = None
    if cfg.hetero in ("memory", "both"):
        if cfg.memory_regime == "fits":
            device_memory = tuple(int(hi) + 1 for hi in prediction.upper)
        else:
            victim = cfg.oom_victim % num_devices
            device_memory = tuple(
                max(int(prediction.lower[d]) - 1, 1)
                if d == victim
                else int(prediction.upper[d]) + 1
                for d in range(num_devices)
            )
    effective_capacity = device_memory if device_memory is not None else int(capacity)

    sim = Simulator()
    cluster = make_cluster(
        sim,
        num_devices,
        spec=ClusterSpec(
            nodes=num_devices,
            gpus_per_node=1,
            memory_bytes=int(capacity),
            device_speed=cfg.device_speed or None,
            device_memory_bytes=device_memory,
        ),
    )
    runner = PipelineSimRunner(
        cluster,
        schedule,
        costs,
        num_micro=cfg.num_micro,
        mb_size=4.0,
        num_pipelines=cfg.num_pipelines,
        with_reference_model=cfg.with_reference_model,
        device_map=device_map,
        activation_recompute=cfg.activation_recompute,
    )
    bundle = MemoryPredictionBundle(
        prediction=prediction,
        capacity=effective_capacity,
        schedule=schedule,
        num_stages=num_stages,
    )
    return runner, bundle


@dataclass
class MemoryPredictionBundle:
    prediction: object
    capacity: "int | tuple[int, ...]"  # per-device on heterogeneous draws
    schedule: Schedule
    num_stages: int


# ---------------------------------------------------------------------- #
# trace causality


def check_trace_causality(
    trace: TraceRecorder,
    streams: Sequence[Sequence],
    num_micro: int,
    iterations: int,
    num_pipelines: int,
    eps: float = TIME_EPS,
) -> list[str]:
    """Verify every compute span started only after its dependencies ended.

    Dependencies re-derived from the chain topology:

    * F(p, k, mb) after F(p, k-1, mb) — the activation must exist;
    * B(p, k, mb) after F(p, k, mb) — backward needs the local stash;
    * B(p, k, mb) after B(p, k+1, mb) — the gradient must exist (k < K-1);
    * each (p, k) stage process is serial and runs its stream in order.

    ``streams`` is the per-stage op list (``schedule.stage_ops`` output);
    spans are matched by the identity fields the executor records.
    Returns human-readable violation strings (empty = causally sound).
    """
    K = len(streams)
    spans = trace.compute_spans()
    by_id: dict[tuple[int, int, int, SpanKind], _Span] = {}
    problems: list[str] = []
    for s in spans:
        key = (s.pipeline, s.stage, s.micro, s.kind)
        if key in by_id:
            problems.append(
                f"duplicate span p{s.pipeline} stage{s.stage} mb{s.micro} {s.kind.value}"
            )
        by_id[key] = s

    total_mb = iterations * num_micro
    expected = num_pipelines * sum(len(ops) for ops in streams) * iterations
    if len(spans) != expected:
        problems.append(f"expected {expected} compute spans, trace has {len(spans)}")

    def end_of(p: int, k: int, mb: int, kind: SpanKind) -> float | None:
        s = by_id.get((p, k, mb, kind))
        return None if s is None else s.end

    for (p, k, mb, kind), s in by_id.items():
        deps: list[tuple[str, float | None]] = []
        if kind == SpanKind.FWD and k > 0:
            deps.append((f"F(p{p},k{k - 1},mb{mb})", end_of(p, k - 1, mb, SpanKind.FWD)))
        if kind == SpanKind.BWD:
            deps.append((f"F(p{p},k{k},mb{mb})", end_of(p, k, mb, SpanKind.FWD)))
            if k < K - 1:
                deps.append((f"B(p{p},k{k + 1},mb{mb})", end_of(p, k + 1, mb, SpanKind.BWD)))
        for name, dep_end in deps:
            if dep_end is None:
                problems.append(
                    f"{kind.value}(p{p},k{k},mb{mb}) has no recorded dependency {name}"
                )
            elif s.start < dep_end - eps:
                problems.append(
                    f"{kind.value}(p{p},k{k},mb{mb}) starts at {s.start:.6g} "
                    f"before {name} ends at {dep_end:.6g}"
                )

    # Per-stage-process serialization + stream order.
    for p in range(num_pipelines):
        for k in range(K):
            stage_spans = sorted(
                (s for (pp, kk, _, _), s in by_id.items() if pp == p and kk == k),
                key=lambda s: (s.start, s.end),
            )
            expected_order = [
                (op.kind, it * num_micro + op.micro)
                for it in range(iterations)
                for op in streams[k]
            ]
            actual_order = [(s.kind.value, s.micro) for s in stage_spans]
            if actual_order != expected_order and len(actual_order) == len(expected_order):
                problems.append(
                    f"stage (p{p},k{k}) executed out of stream order: {actual_order[:6]}..."
                )
            for a, b in zip(stage_spans, stage_spans[1:]):
                if b.start < a.end - eps:
                    problems.append(
                        f"stage (p{p},k{k}) spans overlap: "
                        f"{a.kind.value}(mb{a.micro}) [{a.start:.6g},{a.end:.6g}] and "
                        f"{b.kind.value}(mb{b.micro}) [{b.start:.6g},{b.end:.6g}]"
                    )
    return problems


def inject_causality_violation(trace: TraceRecorder) -> str:
    """Tamper with a recorded trace so a dependency is violated.

    Used by ``repro verify --inject causality`` and the self-tests to
    prove the checker actually fires: the first downstream forward is
    rewound to start before its upstream producer finished.
    """
    for s in trace.compute_spans():
        if s.kind == SpanKind.FWD and s.stage is not None and s.stage > 0:
            duration = s.end - s.start
            s.start = -1.0
            s.end = s.start + max(duration, 1e-6)
            return (
                f"rewound F(p{s.pipeline},k{s.stage},mb{s.micro}) to start at {s.start}"
            )
    raise RuntimeError("trace has no downstream forward span to corrupt")


# ---------------------------------------------------------------------- #
# running cases


@dataclass
class FuzzResult:
    """Outcome of one fuzz case."""

    config: FuzzConfig
    problems: list[str] = field(default_factory=list)
    oomed: bool = False
    spans_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def describe(self) -> str:
        status = "ok" if self.ok else f"{len(self.problems)} problem(s)"
        mem = "oom" if self.oomed else "fit"
        return f"{self.config.describe()} -> {mem}, {self.spans_checked} spans, {status}"


def run_fuzz_case(cfg: FuzzConfig) -> FuzzResult:
    """Execute one config and check schedule, memory and causality."""
    result = FuzzResult(config=cfg)
    runner, bundle = build_runner(cfg)
    schedule, num_stages = bundle.schedule, bundle.num_stages

    static = check_schedule(schedule, num_stages, cfg.num_micro)
    result.problems.extend(f"static: {v}" for v in static)

    res = runner.run(iterations=cfg.iterations)
    result.oomed = res.oom is not None

    prediction, capacity = bundle.prediction, bundle.capacity
    if prediction.must_fit(capacity) and result.oomed:
        result.problems.append(
            f"memory: model guarantees fit under capacity {capacity} "
            f"(upper={prediction.upper}) but executor raised {res.oom!r}"
        )
    if prediction.must_oom(capacity) and not result.oomed:
        result.problems.append(
            f"memory: model guarantees OOM under capacity {capacity} "
            f"(lower={prediction.lower}) but the run completed"
        )
    if not result.oomed:
        peaks = tuple(res.peak_memory)
        for dev, (peak, lo, hi) in enumerate(
            zip(peaks, prediction.lower, prediction.upper)
        ):
            if not lo <= peak <= hi:
                result.problems.append(
                    f"memory: device {dev} peaked at {peak}, outside model bounds [{lo}, {hi}]"
                )
        streams = [
            schedule.stage_ops(k, num_stages, cfg.num_micro) for k in range(num_stages)
        ]
        result.spans_checked = len(runner.trace.compute_spans())
        result.problems.extend(
            f"causality: {p}"
            for p in check_trace_causality(
                runner.trace, streams, cfg.num_micro, cfg.iterations, cfg.num_pipelines
            )
        )
    return result


def run_fuzz(count: int, seed: int = 0) -> list[FuzzResult]:
    """Run a reproducible fuzz budget; results in config order."""
    return [run_fuzz_case(cfg) for cfg in fuzz_configs(count, seed=seed)]
