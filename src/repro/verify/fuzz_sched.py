"""Seeded fuzzing of the multi-job scheduler (the job-arrival axis).

Extends the ``repro.verify`` fuzzer family with randomized *cluster
scheduling* configurations: cluster shape, job count, arrival intensity,
policy, and a memory regime ("roomy" fits everything; "tight" rejects
the wide jobs; "uneven" gives half the devices small capacities so
grants become placement-sensitive).  Each case runs the deterministic
scheduler end to end and audits the control-plane invariants:

* **no starvation** — every submitted job reaches a terminal state, and
  every non-rejected job completes with all its work accounted;
* **memory caps** — every chain ever granted (admission, resume, grow)
  had Eq.-8 footprints within its devices' capacities, and every
  rejection is genuine (the chain really doesn't fit the empty cluster);
* **device-time conservation** — the cluster's busy-device-seconds
  integral equals the sum of per-job device-seconds;
* **occupancy hygiene** — no device double-granted, none owned at the
  end (scheduler-internal, surfaced as :class:`SchedulerError`);
* **determinism** — the same config re-run produces a byte-identical
  event log.

``repro verify --sched-fuzz N`` runs N cases per policy rotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.seeding import derive_rng

__all__ = ["SchedFuzzConfig", "SchedFuzzResult", "sched_fuzz_configs", "run_sched_fuzz_case", "run_sched_fuzz"]

MIB = 2**20
GIB = 2**30

_POLICY_ROTATION = ("fifo", "priority", "fair")
_MEMORY_REGIMES = ("roomy", "tight", "uneven")


@dataclass(frozen=True)
class SchedFuzzConfig:
    """One randomized scheduler configuration."""

    index: int
    seed: int
    policy: str
    nodes: int
    gpus_per_node: int
    num_jobs: int
    mean_interarrival: float
    memory_regime: str  # "roomy" | "tight" | "uneven"
    slow_devices: bool  # half-speed second node

    def describe(self) -> str:
        return (
            f"sched[{self.index}] policy={self.policy} "
            f"cluster={self.nodes}x{self.gpus_per_node} jobs={self.num_jobs} "
            f"ia={self.mean_interarrival:.2f}s mem={self.memory_regime}"
            f"{' slow' if self.slow_devices else ''}"
        )


@dataclass
class SchedFuzzResult:
    config: SchedFuzzConfig
    problems: list[str] = field(default_factory=list)
    jobs_completed: int = 0
    jobs_rejected: int = 0
    preemptions: int = 0
    resizes: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems


def sched_fuzz_configs(count: int, seed: int = 0) -> list[SchedFuzzConfig]:
    """Draw ``count`` configurations from the seeded stream."""
    rng = derive_rng("verify-sched-fuzz", count, seed=seed)
    configs = []
    for i in range(count):
        configs.append(
            SchedFuzzConfig(
                index=i,
                seed=seed,
                policy=_POLICY_ROTATION[i % len(_POLICY_ROTATION)],
                nodes=int(rng.integers(2, 5)),
                gpus_per_node=int(rng.integers(1, 3)),
                num_jobs=int(rng.integers(3, 9)),
                mean_interarrival=float(rng.uniform(0.3, 3.0)),
                memory_regime=_MEMORY_REGIMES[int(rng.integers(0, len(_MEMORY_REGIMES)))],
                slow_devices=bool(rng.integers(0, 2)),
            )
        )
    return configs


def _scenario_for(cfg: SchedFuzzConfig):
    from repro.sched.workload import SchedScenario

    num_devices = cfg.nodes * cfg.gpus_per_node
    memory = 2 * GIB
    device_memory = None
    if cfg.memory_regime == "tight":
        memory = 192 * MIB  # rejects gnmt chains, admits bert/awd shapes
    elif cfg.memory_regime == "uneven":
        # odd devices get a quarter of the capacity: grants become
        # placement-sensitive without making whole families infeasible
        device_memory = tuple(
            2 * GIB if d % 2 == 0 else 512 * MIB for d in range(num_devices)
        )
    device_speed = None
    if cfg.slow_devices and cfg.nodes >= 2:
        speeds = [1.0] * num_devices
        for d in range(cfg.gpus_per_node):  # the last node runs at half speed
            speeds[num_devices - 1 - d] = 0.5
        device_speed = tuple(speeds)
    scenario = SchedScenario(
        name=f"fuzz-{cfg.index}",
        description="fuzzer-generated",
        nodes=cfg.nodes,
        gpus_per_node=cfg.gpus_per_node,
        num_jobs=cfg.num_jobs,
        mean_interarrival=cfg.mean_interarrival,
        stage_options=(2, 3) if num_devices >= 3 else (2,),
        memory_bytes=memory,
        device_speed=device_speed,
    )
    spec = scenario.cluster_spec()
    if device_memory is not None:
        import dataclasses

        spec = dataclasses.replace(spec, device_memory_bytes=device_memory)
    return scenario, spec


def _run_once(cfg: SchedFuzzConfig):
    from repro.obs.registry import MetricRegistry
    from repro.sched.scheduler import ClusterScheduler
    from repro.sched.workload import generate_jobs

    scenario, spec = _scenario_for(cfg)
    jobs = generate_jobs(scenario, cfg.seed + cfg.index)
    scheduler = ClusterScheduler(
        spec,
        jobs,
        cfg.policy,
        registry=MetricRegistry(),
        scenario=scenario.name,
        seed=cfg.seed,
    )
    return scheduler, scheduler.run()


def run_sched_fuzz_case(cfg: SchedFuzzConfig) -> SchedFuzzResult:
    """Run one configuration and audit every invariant."""
    from repro.sched.job import JobState
    from repro.sched.scheduler import SchedulerError

    out = SchedFuzzResult(config=cfg)
    try:
        scheduler, result = _run_once(cfg)
    except SchedulerError as exc:
        out.problems.append(f"scheduler invariant violated: {exc}")
        return out

    reg = result.registry
    out.jobs_completed = len(result.completed)
    out.jobs_rejected = len(result.rejected)
    out.preemptions = int(reg.value("sched.jobs", event="preempted"))
    out.resizes = int(
        reg.value("sched.resize", direction="grow")
        + reg.value("sched.resize", direction="shrink")
    )

    # --- no starvation ------------------------------------------------- #
    for job in result.jobs:
        if job.state not in (JobState.DONE, JobState.REJECTED):
            out.problems.append(f"job {job.job_id} starved in state {job.state}")
        if job.state == JobState.DONE:
            if job.batches_done != job.spec.total_batches:
                out.problems.append(
                    f"job {job.job_id} done with {job.batches_done} of "
                    f"{job.spec.total_batches} batches"
                )
            if not job.waits or any(w < 0 for w in job.waits):
                out.problems.append(f"job {job.job_id} has bad waits {job.waits}")

    # --- memory caps ---------------------------------------------------- #
    for job in result.jobs:
        for footprints, caps in job.admission_audit:
            for k, (f, cap) in enumerate(zip(footprints, caps)):
                if f > cap:
                    out.problems.append(
                        f"job {job.job_id} admitted over capacity: stage {k} "
                        f"needs {f / MIB:.1f} MiB of {cap / MIB:.1f} MiB"
                    )
        if job.state == JobState.REJECTED:
            s = job.spec
            if scheduler.planner.best_case_fits(s.family, s.num_stages, s.num_micro):
                out.problems.append(
                    f"job {job.job_id} rejected although a chain fits the "
                    f"empty cluster"
                )

    # --- device-time conservation --------------------------------------- #
    per_job = sum(j.device_seconds for j in result.jobs)
    busy = result.busy_device_seconds
    if abs(per_job - busy) > 1e-6 * max(busy, 1.0):
        out.problems.append(
            f"device-time not conserved: jobs hold {per_job:.9f} "
            f"device-s, cluster busy {busy:.9f} device-s"
        )

    # --- determinism ----------------------------------------------------- #
    _, again = _run_once(cfg)
    if again.log_text() != result.log_text():
        out.problems.append("event log differs between identical runs")

    return out


def run_sched_fuzz(count: int, seed: int = 0) -> list[SchedFuzzResult]:
    return [run_sched_fuzz_case(cfg) for cfg in sched_fuzz_configs(count, seed=seed)]
