"""Differentiable neural-net primitives built on :class:`~repro.tensor.Tensor`.

These are written against the raw ndarray payloads with hand-derived
backward closures (rather than composing Tensor arithmetic) where the fused
form is both faster and numerically safer — e.g. ``log_softmax`` uses the
max-subtraction trick and a fused gradient.  Every function here is covered
by ``tests/test_tensor_functional.py`` including numerical gradcheck.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.tensor import Tensor, _grad_enabled, _unbroadcast

__all__ = [
    "relu",
    "gelu",
    "tanh",
    "sigmoid",
    "softmax",
    "log_softmax",
    "layer_norm",
    "dropout",
    "embedding_lookup",
    "cross_entropy",
    "nll_loss",
    "cat",
    "stack",
    "where",
    "linear",
    "lstm_cell",
    "scaled_dot_attention",
    "assert_preserves_dtype",
]


def relu(x: Tensor) -> Tensor:
    """max(x, 0) with the indicator gradient."""
    out = np.maximum(x.data, 0)
    return Tensor._make(out, (x,), lambda g: (g * (x.data > 0),), "relu")


# Plain Python float: under NumPy's NEP-50 promotion a np.float64 scalar
# is "strong" and silently promotes float32 activations to float64, while
# a Python float is "weak" and preserves the array dtype.
_GELU_C = float(np.sqrt(2.0 / np.pi))


def gelu(x: Tensor) -> Tensor:
    """tanh-approximation GELU (the BERT activation)."""
    xd = x.data
    inner = _GELU_C * (xd + 0.044715 * xd**3)
    t = np.tanh(inner)
    out = 0.5 * xd * (1.0 + t)

    def backward(g: np.ndarray):
        dinner = _GELU_C * (1.0 + 3 * 0.044715 * xd**2)
        dt = (1.0 - t * t) * dinner
        return (g * (0.5 * (1.0 + t) + 0.5 * xd * dt),)

    return Tensor._make(out, (x,), backward, "gelu")


def tanh(x: Tensor) -> Tensor:
    """Elementwise tanh."""
    out = np.tanh(x.data)
    return Tensor._make(out, (x,), lambda g: (g * (1.0 - out * out),), "tanh")


def _sigmoid_raw(x: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic sigmoid on a raw ndarray.

    Branch-free form of the classic sign-split: with e = exp(-|x|) the
    positive half is 1/(1+e) and the negative half e/(1+e) — elementwise
    the exact same expressions as the masked version, minus the fancy
    indexing.
    """
    e = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0, e) / (1.0 + e)


def sigmoid(x: Tensor) -> Tensor:
    """Numerically-stable logistic sigmoid (split by sign)."""
    out = _sigmoid_raw(x.data)
    return Tensor._make(out, (x,), lambda g: (g * out * (1.0 - out),), "sigmoid")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Max-shifted softmax along ``axis`` with the fused gradient."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return Tensor._make(out, (x,), backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Max-shifted log-softmax along ``axis`` with the fused gradient."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_z

    def backward(g: np.ndarray):
        soft = np.exp(out)
        return (g - soft * g.sum(axis=axis, keepdims=True),)

    return Tensor._make(out, (x,), backward, "log_softmax")


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension with affine transform."""
    xd = x.data
    mu = xd.mean(axis=-1, keepdims=True)
    var = xd.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    xhat = (xd - mu) * inv
    out = xhat * weight.data + bias.data

    def backward(g: np.ndarray):
        n = xd.shape[-1]
        gw = _unbroadcast(g * xhat, weight.shape)
        gb = _unbroadcast(g, bias.shape)
        gx_hat = g * weight.data
        # Fused layer-norm input gradient.
        gx = (
            gx_hat
            - gx_hat.mean(axis=-1, keepdims=True)
            - xhat * (gx_hat * xhat).mean(axis=-1, keepdims=True)
        ) * inv
        del n
        return gx, gw, gb

    return Tensor._make(out, (x, weight, bias), backward, "layer_norm")


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept units by 1/(1-p) so eval needs no rescale."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    out = x.data * mask
    return Tensor._make(out, (x,), lambda g: (g * mask,), "dropout")


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row gather with scatter-add backward (the Embedding layer kernel)."""
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(f"embedding indices must be integers, got {idx.dtype}")
    out = weight.data[idx]

    def backward(g: np.ndarray):
        gw = np.zeros_like(weight.data)
        np.add.at(gw, idx, g)
        return (gw,)

    return Tensor._make(out, (weight,), backward, "embedding")


def nll_loss(log_probs: Tensor, targets: np.ndarray, ignore_index: int | None = None) -> Tensor:
    """Mean negative log-likelihood over a flattened (N, C) log-prob matrix."""
    lp = log_probs.data
    if lp.ndim != 2:
        raise ValueError(f"nll_loss expects (N, C) log-probs, got shape {lp.shape}")
    tgt = np.asarray(targets).reshape(-1)
    if tgt.shape[0] != lp.shape[0]:
        raise ValueError(f"targets length {tgt.shape[0]} != batch {lp.shape[0]}")
    if ignore_index is not None:
        valid = tgt != ignore_index
        count = max(int(valid.sum()), 1)
    else:
        valid = np.ones_like(tgt, dtype=bool)
        count = tgt.shape[0]
    rows = np.arange(lp.shape[0])
    picked = np.where(valid, lp[rows, np.where(valid, tgt, 0)], 0.0)
    out = np.asarray(-picked.sum() / count, dtype=lp.dtype)

    def backward(g: np.ndarray):
        gx = np.zeros_like(lp)
        gx[rows[valid], tgt[valid]] = -1.0 / count
        return (gx * g,)

    return Tensor._make(out, (log_probs,), backward, "nll_loss")


def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: int | None = None) -> Tensor:
    """Softmax + NLL, with logits of shape (..., C) and integer targets."""
    flat = logits.reshape(-1, logits.shape[-1]) if logits.ndim != 2 else logits
    return nll_loss(log_softmax(flat, axis=-1), targets, ignore_index=ignore_index)


def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``; backward splits the gradient."""
    if not tensors:
        raise ValueError("cat of empty sequence")
    datas = [t.data for t in tensors]
    out = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    splits = np.cumsum(sizes)[:-1]

    def backward(g: np.ndarray):
        return tuple(np.split(g, splits, axis=axis))

    return Tensor._make(out, tuple(tensors), backward, "cat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``; backward unstacks."""
    if not tensors:
        raise ValueError("stack of empty sequence")
    out = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        pieces = np.split(g, len(tensors), axis=axis)
        return tuple(p.squeeze(axis=axis) for p in pieces)

    return Tensor._make(out, tuple(tensors), backward, "stack")


# --------------------------------------------------------------------- #
# fused hot-path kernels
#
# Each of these replaces a chain of elementary Tensor ops with a single
# graph node whose forward replays the exact same ndarray expressions the
# chain would execute (same operands, same evaluation order), so outputs
# are bitwise identical to the composed form; the hand-written backward
# mirrors the chain's closure arithmetic the same way.  What they save is
# node construction, closure dispatch and per-op gradient allocation —
# the dominant cost of small-model steps in this engine.


def _transpose_tap(weight: Tensor) -> Tensor:
    """A transpose node mirroring the composed chain's ``weight.T``.

    Fused kernels route weight gradients through this node instead of
    attaching the weight directly.  When a weight feeds several graph
    sites (the recurrent matrix across timesteps, a projection reused in
    a decoding loop), the engine sums one contribution per site — and
    float addition is not associative, so the *order* those contributions
    arrive in is part of the bitwise contract.  The composed chain's
    per-call ``.T`` nodes sit at specific DFS positions which fix that
    order; a tap in the same parent slot reproduces it exactly.
    """
    return Tensor._make(
        weight.data.T, (weight,), lambda g: (np.transpose(g, (1, 0)),), "transpose"
    )


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused ``x @ weight.T + bias`` (the Linear layer kernel).

    ``x`` must be at least 2-d; ``weight`` is (out, in).  The transposed
    weight view is captured at call time, which keeps DropConnect-style
    temporary masking (WeightDrop) working exactly like the composed form.
    """
    w_tap = _transpose_tap(weight)
    wT = w_tap.data
    y = x.data @ wT
    out = y + bias.data if bias is not None else y

    def backward(g: np.ndarray):
        dx = g @ np.swapaxes(wT, -1, -2) if x.requires_grad else None
        # Untransposed (in, out) form; the tap transposes, as ``.T`` did.
        dw = (
            _unbroadcast(np.swapaxes(x.data, -1, -2) @ g, wT.shape)
            if weight.requires_grad
            else None
        )
        if bias is None:
            return dx, dw
        db = _unbroadcast(g, bias.shape) if bias.requires_grad else None
        return dx, dw, db

    # Parent order mirrors the composed DFS first-visit order
    # (bias, weight.T, x): parents are explored last-to-first.
    parents = (x, w_tap) if bias is None else (x, w_tap, bias)
    return Tensor._make(out, parents, backward, "linear")


def lstm_cell(
    x: Tensor,
    h: Tensor,
    c: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
    hidden_size: int,
) -> tuple[Tensor, Tensor]:
    """Fused LSTM cell: one graph node for the whole gate stack.

    Computes ``gates = x @ W_ih^T + h @ W_hh^T + b`` and the i/f/g/o gate
    nonlinearities, returning ``(h_next, c_next)``.  ``c_next`` is emitted
    as a child node of ``h_next`` whose backward stashes the incoming cell
    gradient; reverse topological order guarantees the stash happens
    before ``h_next``'s backward consumes it.  Weight transpose views are
    captured at call time (WeightDrop compatibility, as in the composed
    form).
    """
    hs = hidden_size
    wih_tap = _transpose_tap(weight_ih)
    whh_tap = _transpose_tap(weight_hh)
    wihT = wih_tap.data
    whhT = whh_tap.data
    gates = (x.data @ wihT + h.data @ whhT) + bias.data
    i = _sigmoid_raw(gates[:, 0 * hs : 1 * hs])
    f = _sigmoid_raw(gates[:, 1 * hs : 2 * hs])
    g = np.tanh(gates[:, 2 * hs : 3 * hs])
    o = _sigmoid_raw(gates[:, 3 * hs : 4 * hs])
    c_next = f * c.data + i * g
    t = np.tanh(c_next)
    h_next = o * t

    if not (
        _grad_enabled()
        and (
            x.requires_grad
            or h.requires_grad
            or c.requires_grad
            or weight_ih.requires_grad
            or weight_hh.requires_grad
            or bias.requires_grad
        )
    ):
        return Tensor(h_next), Tensor(c_next)

    ctx: dict[str, np.ndarray | None] = {"gc": None}

    def backward_h(gh: np.ndarray):
        gc_ext = ctx["gc"]
        ctx["gc"] = None
        # Mirror the composed chain: h = o * tanh(c'), c' = f*c + i*g.
        gc = (gh * o) * (1.0 - t * t)
        if gc_ext is not None:
            gc = gc_ext + gc
        dgates = np.empty_like(gates)
        dgates[:, 0 * hs : 1 * hs] = (gc * g) * i * (1.0 - i)
        dgates[:, 1 * hs : 2 * hs] = (gc * c.data) * f * (1.0 - f)
        dgates[:, 2 * hs : 3 * hs] = (gc * i) * (1.0 - g * g)
        dgates[:, 3 * hs : 4 * hs] = (gh * t) * o * (1.0 - o)
        dx = dgates @ np.swapaxes(wihT, -1, -2) if x.requires_grad else None
        dh = dgates @ np.swapaxes(whhT, -1, -2) if h.requires_grad else None
        dc = gc * f if c.requires_grad else None
        # Untransposed (in, 4*hidden) forms; the taps transpose them.
        dwih = (
            np.swapaxes(x.data, -1, -2) @ dgates
            if weight_ih.requires_grad
            else None
        )
        dwhh = (
            np.swapaxes(h.data, -1, -2) @ dgates
            if weight_hh.requires_grad
            else None
        )
        db = _unbroadcast(dgates, bias.shape) if bias.requires_grad else None
        return dx, dwih, dh, dc, dwhh, db

    # Parent order matters beyond bookkeeping: the composed chain appends
    # W_hh.T before descending into the h_{t-1} subgraph (so its grads
    # accumulate oldest-step-first) but W_ih.T only after it (newest
    # first).  Placing whh's tap after h/c and wih's tap before them in
    # the parent tuple reproduces both orders under the engine's
    # last-to-first DFS.
    h_t = Tensor._make(
        h_next, (x, wih_tap, h, c, whh_tap, bias), backward_h, "lstm_cell"
    )

    def backward_c(g_in: np.ndarray):
        # Copied because the arena may recycle g_in once this node is done.
        ctx["gc"] = g_in.copy()
        # Zero (not None) so a loss reaching only c_next still drives
        # backward_h, which is where the stashed cell gradient is spent.
        return (np.zeros_like(h_next),)

    c_t = Tensor._make(c_next, (h_t,), backward_c, "lstm_cell_c")
    return h_t, c_t


def scaled_dot_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    scale: float,
    bias: np.ndarray | None = None,
    dropout_p: float = 0.0,
    rng: np.random.Generator | None = None,
    training: bool = False,
) -> Tensor:
    """Fused softmax attention over (B, H, T, dh) heads.

    One node for ``softmax(q @ k^T * scale + bias)`` (optionally with
    inverted dropout on the attention weights) matmul'd against ``v``.
    ``bias`` is an additive raw-ndarray mask; it receives no gradient.
    """
    if not 0.0 <= dropout_p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {dropout_p}")
    kt = k.data.transpose(0, 1, 3, 2)
    scale_arr = np.asarray(scale, dtype=q.data.dtype)
    s = (q.data @ kt) * scale_arr
    if bias is not None:
        s = s + bias
    e = np.exp(s - s.max(axis=-1, keepdims=True))
    attn = e / e.sum(axis=-1, keepdims=True)
    if training and dropout_p > 0.0:
        keep = 1.0 - dropout_p
        mask = (rng.random(attn.shape) < keep).astype(attn.dtype) / keep
        attn_d = attn * mask
    else:
        mask = None
        attn_d = attn
    out = attn_d @ v.data

    def backward(g: np.ndarray):
        dattn = g @ np.swapaxes(v.data, -1, -2)
        dv = np.swapaxes(attn_d, -1, -2) @ g if v.requires_grad else None
        if mask is not None:
            dattn = dattn * mask
        dot = (dattn * attn).sum(axis=-1, keepdims=True)
        ds = (attn * (dattn - dot)) * scale_arr
        dq = ds @ np.swapaxes(kt, -1, -2) if q.requires_grad else None
        dk = (
            (np.swapaxes(q.data, -1, -2) @ ds).transpose(0, 1, 3, 2)
            if k.requires_grad
            else None
        )
        return dq, dk, dv

    return Tensor._make(out, (q, k, v), backward, "sdp_attention")


def assert_preserves_dtype(result: Tensor | Sequence[Tensor], *inputs: Tensor) -> None:
    """Assert every output tensor keeps the dtype of the first input.

    The regression helper for float64-promotion leaks: NumPy scalar rules
    (NEP 50) can silently upcast float32 through Python/NumPy scalar
    arithmetic, doubling memory traffic without changing semantics enough
    for tolerance-based tests to notice.
    """
    if not inputs:
        raise ValueError("assert_preserves_dtype needs at least one input tensor")
    expect = inputs[0].dtype
    outs = result if isinstance(result, (tuple, list)) else (result,)
    for idx, out in enumerate(outs):
        if out.dtype != expect:
            raise AssertionError(
                f"output {idx} has dtype {out.dtype}, expected {expect} "
                f"(float-promotion leak)"
            )


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select by a boolean condition; gradients route by it."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    out = np.where(cond, a.data, b.data)

    def backward(g: np.ndarray):
        return (
            _unbroadcast(np.where(cond, g, 0.0), a.shape),
            _unbroadcast(np.where(cond, 0.0, g), b.shape),
        )

    return Tensor._make(out, (a, b), backward, "where")
