"""Differentiable neural-net primitives built on :class:`~repro.tensor.Tensor`.

These are written against the raw ndarray payloads with hand-derived
backward closures (rather than composing Tensor arithmetic) where the fused
form is both faster and numerically safer — e.g. ``log_softmax`` uses the
max-subtraction trick and a fused gradient.  Every function here is covered
by ``tests/test_tensor_functional.py`` including numerical gradcheck.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.tensor import Tensor, _unbroadcast

__all__ = [
    "relu",
    "gelu",
    "tanh",
    "sigmoid",
    "softmax",
    "log_softmax",
    "layer_norm",
    "dropout",
    "embedding_lookup",
    "cross_entropy",
    "nll_loss",
    "cat",
    "stack",
    "where",
]


def relu(x: Tensor) -> Tensor:
    """max(x, 0) with the indicator gradient."""
    out = np.maximum(x.data, 0)
    return Tensor._make(out, (x,), lambda g: (g * (x.data > 0),), "relu")


_GELU_C = np.sqrt(2.0 / np.pi)


def gelu(x: Tensor) -> Tensor:
    """tanh-approximation GELU (the BERT activation)."""
    xd = x.data
    inner = _GELU_C * (xd + 0.044715 * xd**3)
    t = np.tanh(inner)
    out = 0.5 * xd * (1.0 + t)

    def backward(g: np.ndarray):
        dinner = _GELU_C * (1.0 + 3 * 0.044715 * xd**2)
        dt = (1.0 - t * t) * dinner
        return (g * (0.5 * (1.0 + t) + 0.5 * xd * dt),)

    return Tensor._make(out, (x,), backward, "gelu")


def tanh(x: Tensor) -> Tensor:
    """Elementwise tanh."""
    out = np.tanh(x.data)
    return Tensor._make(out, (x,), lambda g: (g * (1.0 - out * out),), "tanh")


def sigmoid(x: Tensor) -> Tensor:
    """Numerically-stable logistic sigmoid (split by sign)."""
    out = np.empty_like(x.data)
    pos = x.data >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x.data[pos]))
    ex = np.exp(x.data[~pos])
    out[~pos] = ex / (1.0 + ex)
    return Tensor._make(out, (x,), lambda g: (g * out * (1.0 - out),), "sigmoid")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Max-shifted softmax along ``axis`` with the fused gradient."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return Tensor._make(out, (x,), backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Max-shifted log-softmax along ``axis`` with the fused gradient."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_z

    def backward(g: np.ndarray):
        soft = np.exp(out)
        return (g - soft * g.sum(axis=axis, keepdims=True),)

    return Tensor._make(out, (x,), backward, "log_softmax")


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension with affine transform."""
    xd = x.data
    mu = xd.mean(axis=-1, keepdims=True)
    var = xd.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    xhat = (xd - mu) * inv
    out = xhat * weight.data + bias.data

    def backward(g: np.ndarray):
        n = xd.shape[-1]
        gw = _unbroadcast(g * xhat, weight.shape)
        gb = _unbroadcast(g, bias.shape)
        gx_hat = g * weight.data
        # Fused layer-norm input gradient.
        gx = (
            gx_hat
            - gx_hat.mean(axis=-1, keepdims=True)
            - xhat * (gx_hat * xhat).mean(axis=-1, keepdims=True)
        ) * inv
        del n
        return gx, gw, gb

    return Tensor._make(out, (x, weight, bias), backward, "layer_norm")


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept units by 1/(1-p) so eval needs no rescale."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    out = x.data * mask
    return Tensor._make(out, (x,), lambda g: (g * mask,), "dropout")


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row gather with scatter-add backward (the Embedding layer kernel)."""
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(f"embedding indices must be integers, got {idx.dtype}")
    out = weight.data[idx]

    def backward(g: np.ndarray):
        gw = np.zeros_like(weight.data)
        np.add.at(gw, idx, g)
        return (gw,)

    return Tensor._make(out, (weight,), backward, "embedding")


def nll_loss(log_probs: Tensor, targets: np.ndarray, ignore_index: int | None = None) -> Tensor:
    """Mean negative log-likelihood over a flattened (N, C) log-prob matrix."""
    lp = log_probs.data
    if lp.ndim != 2:
        raise ValueError(f"nll_loss expects (N, C) log-probs, got shape {lp.shape}")
    tgt = np.asarray(targets).reshape(-1)
    if tgt.shape[0] != lp.shape[0]:
        raise ValueError(f"targets length {tgt.shape[0]} != batch {lp.shape[0]}")
    if ignore_index is not None:
        valid = tgt != ignore_index
        count = max(int(valid.sum()), 1)
    else:
        valid = np.ones_like(tgt, dtype=bool)
        count = tgt.shape[0]
    rows = np.arange(lp.shape[0])
    picked = np.where(valid, lp[rows, np.where(valid, tgt, 0)], 0.0)
    out = np.asarray(-picked.sum() / count, dtype=lp.dtype)

    def backward(g: np.ndarray):
        gx = np.zeros_like(lp)
        gx[rows[valid], tgt[valid]] = -1.0 / count
        return (gx * g,)

    return Tensor._make(out, (log_probs,), backward, "nll_loss")


def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: int | None = None) -> Tensor:
    """Softmax + NLL, with logits of shape (..., C) and integer targets."""
    flat = logits.reshape(-1, logits.shape[-1]) if logits.ndim != 2 else logits
    return nll_loss(log_softmax(flat, axis=-1), targets, ignore_index=ignore_index)


def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``; backward splits the gradient."""
    if not tensors:
        raise ValueError("cat of empty sequence")
    datas = [t.data for t in tensors]
    out = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    splits = np.cumsum(sizes)[:-1]

    def backward(g: np.ndarray):
        return tuple(np.split(g, splits, axis=axis))

    return Tensor._make(out, tuple(tensors), backward, "cat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``; backward unstacks."""
    if not tensors:
        raise ValueError("stack of empty sequence")
    out = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        pieces = np.split(g, len(tensors), axis=axis)
        return tuple(p.squeeze(axis=axis) for p in pieces)

    return Tensor._make(out, tuple(tensors), backward, "stack")


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select by a boolean condition; gradients route by it."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    out = np.where(cond, a.data, b.data)

    def backward(g: np.ndarray):
        return (
            _unbroadcast(np.where(cond, g, 0.0), a.shape),
            _unbroadcast(np.where(cond, 0.0, g), b.shape),
        )

    return Tensor._make(out, (a, b), backward, "where")
