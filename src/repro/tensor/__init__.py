"""A small reverse-mode automatic-differentiation engine over NumPy.

This package is the substrate standing in for PyTorch's tensor library in
the AvgPipe reproduction.  It provides:

* :class:`~repro.tensor.tensor.Tensor` — an ndarray wrapper carrying a
  gradient and a backward graph,
* :mod:`~repro.tensor.functional` — differentiable neural-net primitives
  (softmax, cross-entropy, GELU, dropout, ...),
* :func:`~repro.tensor.gradcheck.gradcheck` — numerical verification of
  analytic gradients, used heavily by the test suite.

The engine is deliberately eager and single-threaded: pipeline-parallel
*timing* is handled by the cluster simulator (:mod:`repro.sim`), while this
engine supplies the *numerics* (so elastic averaging, stale weights and
optimizer coupling behave exactly as in a real framework).
"""

from repro.tensor.tensor import Tensor, no_grad, tensor, zeros, ones, full, arange
from repro.tensor.functional import (
    assert_preserves_dtype,
    cat,
    cross_entropy,
    dropout,
    embedding_lookup,
    gelu,
    layer_norm,
    linear,
    log_softmax,
    lstm_cell,
    nll_loss,
    relu,
    scaled_dot_attention,
    sigmoid,
    softmax,
    stack,
    tanh,
    where,
)
from repro.tensor.gradcheck import gradcheck

__all__ = [
    "Tensor",
    "no_grad",
    "tensor",
    "zeros",
    "ones",
    "full",
    "arange",
    "cat",
    "stack",
    "where",
    "relu",
    "gelu",
    "tanh",
    "sigmoid",
    "softmax",
    "log_softmax",
    "layer_norm",
    "dropout",
    "embedding_lookup",
    "cross_entropy",
    "nll_loss",
    "linear",
    "lstm_cell",
    "scaled_dot_attention",
    "assert_preserves_dtype",
    "gradcheck",
]
