"""Reverse-mode autodiff tensor.

Design notes
------------
* The graph is a DAG of :class:`Tensor` nodes; each non-leaf holds the
  tuple of parents it was computed from and a closure that maps the output
  gradient to parent gradients.  ``backward()`` walks the DAG in reverse
  topological order, accumulating into ``.grad`` ndarrays (not Tensors —
  gradients are data, never differentiated through, which matches the
  first-order use in the paper).
* Broadcasting follows NumPy semantics; :func:`_unbroadcast` reduces an
  upstream gradient back to a parent's shape by summing over broadcast
  axes.  This is where most hand-rolled engines go wrong, so it is
  property-tested against numerical gradients.
* A module-level ``no_grad`` switch disables graph construction for
  inference and for optimizer/averaging updates, keeping those updates out
  of autograd history exactly like ``torch.no_grad()``.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "tensor", "zeros", "ones", "full", "arange"]

DEFAULT_DTYPE = np.float32

_state = threading.local()


def _grad_enabled() -> bool:
    return getattr(_state, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling autograd graph construction."""
    prev = _grad_enabled()
    _state.grad_enabled = False
    try:
        yield
    finally:
        _state.grad_enabled = prev


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


_BASIC_INDEX_TYPES = (int, np.integer, slice, type(Ellipsis), type(None))


def _is_basic_index(index: Any) -> bool:
    """True when ``index`` is pure basic indexing (no arrays/sequences),
    i.e. selects every position at most once."""
    if isinstance(index, tuple):
        return all(
            isinstance(i, _BASIC_INDEX_TYPES) and not isinstance(i, bool)
            for i in index
        )
    return isinstance(index, _BASIC_INDEX_TYPES) and not isinstance(index, bool)


def _as_array(value: Any, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor (use .data)")
    arr = np.asarray(value, dtype=dtype)
    if arr.dtype == np.float64 and dtype is None:
        arr = arr.astype(DEFAULT_DTYPE)
    return arr


class Tensor:
    """An ndarray with an optional autograd history.

    Parameters
    ----------
    data:
        Array-like payload.  Floating data defaults to float32.
    requires_grad:
        Whether gradients should be accumulated into ``.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "_op")

    def __init__(
        self,
        data: Any,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward_fn: Callable[[np.ndarray], Sequence[np.ndarray | None]] | None = None,
        _op: str = "",
    ) -> None:
        self.data = data if isinstance(data, np.ndarray) else _as_array(data)
        if requires_grad and not np.issubdtype(self.data.dtype, np.floating):
            raise TypeError(f"only floating tensors can require grad, got {self.data.dtype}")
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._parents = _parents
        self._backward_fn = _backward_fn
        self._op = _op

    # ------------------------------------------------------------------ #
    # basic introspection

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        return self._backward_fn is None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        op = f", op={self._op!r}" if self._op else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag}{op})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_err()

    def _item_err(self):
        raise ValueError(f"item() on tensor of size {self.data.size}")

    def numpy(self) -> np.ndarray:
        """The underlying ndarray (a view; callers must not mutate)."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], Sequence[np.ndarray | None]],
        op: str,
    ) -> "Tensor":
        requires = _grad_enabled() and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward_fn=backward_fn, _op=op)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through its history."""
        if not self.requires_grad:
            raise RuntimeError("backward() on tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(f"grad shape {grad.shape} != tensor shape {self.data.shape}")

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:  # iterative topo sort; deep LSTM graphs overflow recursion
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        # Gradient accumulation arena.  Buffers the engine allocated itself
        # ("owned") are accumulated into in place and recycled through a
        # (shape, dtype)-keyed free pool once their node is processed, so a
        # deep graph reuses a handful of ndarrays instead of allocating one
        # per accumulation.  Arrays handed to us by backward closures are
        # never mutated (they may alias forward activations or each other);
        # a buffer is only donated to the pool when no closure result stored
        # this round can alias it.  The accumulation order and arithmetic
        # (left-to-right pairwise adds) are unchanged, so gradients are
        # bitwise identical to the allocate-per-add engine.
        grads: dict[int, np.ndarray] = {id(self): grad}
        owned: set[int] = set()
        pool: dict[tuple[tuple[int, ...], Any], list[np.ndarray]] = {}
        for node in reversed(order):
            nid = id(node)
            node_grad = grads.pop(nid, None)
            if node_grad is None:
                continue
            reusable = nid in owned
            if reusable:
                owned.discard(nid)
            if node._backward_fn is None:
                if node.grad is None:
                    node.grad = node_grad  # escapes to the leaf: never pooled
                else:
                    node.grad = node.grad + node_grad
                    if reusable:
                        pool.setdefault(
                            (node_grad.shape, node_grad.dtype), []
                        ).append(node_grad)
                continue
            parent_grads = node._backward_fn(node_grad)
            shared = False
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = np.asarray(pgrad, dtype=parent.data.dtype)
                key = id(parent)
                cur = grads.get(key)
                if cur is None:
                    grads[key] = pgrad
                    if reusable and not shared:
                        shared = np.may_share_memory(node_grad, pgrad)
                elif key in owned:
                    cur += pgrad  # in-place add into an arena-owned buffer
                else:
                    free = pool.get((cur.shape, cur.dtype))
                    if free:
                        buf = free.pop()
                        np.add(cur, pgrad, out=buf)
                        grads[key] = buf
                    else:
                        grads[key] = cur + pgrad
                    owned.add(key)
            if reusable and not shared:
                pool.setdefault((node_grad.shape, node_grad.dtype), []).append(
                    node_grad
                )

    # ------------------------------------------------------------------ #
    # arithmetic

    def _coerce(self, other: Any) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other: Any) -> "Tensor":
        other = self._coerce(other)
        out = self.data + other.data

        def backward(g: np.ndarray):
            return _unbroadcast(g, self.shape), _unbroadcast(g, other.shape)

        return Tensor._make(out, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: (-g,), "neg")

    def __sub__(self, other: Any) -> "Tensor":
        other = self._coerce(other)
        out = self.data - other.data

        def backward(g: np.ndarray):
            return _unbroadcast(g, self.shape), _unbroadcast(-g, other.shape)

        return Tensor._make(out, (self, other), backward, "sub")

    def __rsub__(self, other: Any) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other: Any) -> "Tensor":
        other = self._coerce(other)
        out = self.data * other.data

        def backward(g: np.ndarray):
            return (
                _unbroadcast(g * other.data, self.shape),
                _unbroadcast(g * self.data, other.shape),
            )

        return Tensor._make(out, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> "Tensor":
        other = self._coerce(other)
        out = self.data / other.data

        def backward(g: np.ndarray):
            return (
                _unbroadcast(g / other.data, self.shape),
                _unbroadcast(-g * self.data / (other.data * other.data), other.shape),
            )

        return Tensor._make(out, (self, other), backward, "div")

    def __rtruediv__(self, other: Any) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported")
        out = self.data**exponent

        def backward(g: np.ndarray):
            return (g * exponent * self.data ** (exponent - 1),)

        return Tensor._make(out, (self,), backward, "pow")

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out = self.data @ other.data

        def backward(g: np.ndarray):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # inner product
                return g * b, g * a
            if a.ndim == 1:  # (k,) @ (..., k, n)
                ga = (g[..., None, :] * b).sum(axis=-1)
                ga = _unbroadcast(ga, a.shape)
                gb = _unbroadcast(a[..., :, None] * g[..., None, :], b.shape)
                return ga, gb
            if b.ndim == 1:  # (..., m, k) @ (k,)
                ga = g[..., :, None] * b
                ga = _unbroadcast(ga, a.shape)
                gb = _unbroadcast((a * g[..., :, None]).sum(axis=tuple(range(a.ndim - 1))), b.shape)
                return ga, gb
            ga = _unbroadcast(g @ np.swapaxes(b, -1, -2), a.shape)
            gb = _unbroadcast(np.swapaxes(a, -1, -2) @ g, b.shape)
            return ga, gb

        return Tensor._make(out, (self, other), backward, "matmul")

    # ------------------------------------------------------------------ #
    # elementwise math

    def exp(self) -> "Tensor":
        out = np.exp(self.data)
        return Tensor._make(out, (self,), lambda g: (g * out,), "exp")

    def log(self) -> "Tensor":
        out = np.log(self.data)
        return Tensor._make(out, (self,), lambda g: (g / self.data,), "log")

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)
        return Tensor._make(out, (self,), lambda g: (g * 0.5 / out,), "sqrt")

    def abs(self) -> "Tensor":
        out = np.abs(self.data)
        return Tensor._make(out, (self,), lambda g: (g * np.sign(self.data),), "abs")

    def clip(self, lo: float, hi: float) -> "Tensor":
        out = np.clip(self.data, lo, hi)
        mask = (self.data >= lo) & (self.data <= hi)
        return Tensor._make(out, (self,), lambda g: (g * mask,), "clip")

    # ------------------------------------------------------------------ #
    # reductions

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, self.shape).copy(),)
            g_exp = g
            if not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.ndim for a in axes):
                    g_exp = np.expand_dims(g_exp, ax)
            return (np.broadcast_to(g_exp, self.shape).copy(),)

        return Tensor._make(np.asarray(out), (self,), backward, "sum")

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            if axis is None:
                mask = (self.data == out).astype(self.data.dtype)
                mask /= mask.sum()
                return (mask * g,)
            out_keep = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == out_keep).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_exp = g if keepdims else np.expand_dims(g, axis)
            return (mask * g_exp,)

        return Tensor._make(np.asarray(out), (self,), backward, "max")

    def var(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) * (self - mu)
        return sq.mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # shape ops

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self.data.reshape(shape)
        return Tensor._make(out, (self,), lambda g: (g.reshape(self.shape),), "reshape")

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out = self.data.transpose(axes)
        return Tensor._make(out, (self,), lambda g: (g.transpose(inverse),), "transpose")

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out = np.swapaxes(self.data, a, b)
        return Tensor._make(out, (self,), lambda g: (np.swapaxes(g, a, b),), "swapaxes")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index: Any) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data
        out = self.data[index]

        if _is_basic_index(index):
            # Basic indices (ints/slices) select each position at most once,
            # so the scatter-add degenerates to an assignment into zeros —
            # much faster than np.add.at's buffered fancy-index path.
            def backward(g: np.ndarray):
                full = np.zeros_like(self.data)
                full[index] = g
                return (full,)
        else:
            def backward(g: np.ndarray):
                full = np.zeros_like(self.data)
                np.add.at(full, index, g)
                return (full,)

        return Tensor._make(np.asarray(out), (self,), backward, "getitem")

    def squeeze(self, axis: int | None = None) -> "Tensor":
        out = self.data.squeeze(axis=axis)
        return Tensor._make(out, (self,), lambda g: (g.reshape(self.shape),), "squeeze")

    def unsqueeze(self, axis: int) -> "Tensor":
        out = np.expand_dims(self.data, axis)
        return Tensor._make(out, (self,), lambda g: (g.reshape(self.shape),), "unsqueeze")

    def broadcast_to(self, shape: tuple[int, ...]) -> "Tensor":
        out = np.broadcast_to(self.data, shape)
        return Tensor._make(out.copy(), (self,), lambda g: (_unbroadcast(g, self.shape),), "bcast")

    # ------------------------------------------------------------------ #
    # comparison helpers (non-differentiable, return plain arrays)

    def argmax(self, axis: int | None = None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __eq__(self, other: Any):  # type: ignore[override]
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data == other_data

    def __hash__(self) -> int:
        return id(self)


# ---------------------------------------------------------------------- #
# constructors


def tensor(data: Any, requires_grad: bool = False, dtype=None) -> Tensor:
    """Construct a Tensor from array-like data."""
    return Tensor(_as_array(data, dtype=dtype), requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    """A zero-filled Tensor of the given shape."""
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    """A one-filled Tensor of the given shape."""
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)


def full(shape: tuple[int, ...], value: float, requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    """A constant-filled Tensor of the given shape."""
    return Tensor(np.full(shape, value, dtype=dtype), requires_grad=requires_grad)


def arange(*args: int, dtype=DEFAULT_DTYPE) -> Tensor:
    """Like numpy.arange, as a Tensor."""
    return Tensor(np.arange(*args, dtype=dtype))
