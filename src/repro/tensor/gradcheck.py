"""Numerical gradient verification.

``gradcheck`` compares analytic gradients from the autograd engine against
central finite differences in float64.  The test suite uses it on every
primitive and on whole layers; it is the ground truth keeping the engine
honest.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["gradcheck", "numerical_gradient"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. ``inputs[wrt]``."""
    target = inputs[wrt]
    base = target.data.astype(np.float64).copy()
    grad = np.zeros_like(base)
    flat = base.reshape(-1)
    gflat = grad.reshape(-1)

    def eval_sum() -> float:
        out = fn(*inputs)
        return float(out.data.astype(np.float64).sum())

    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        target.data = base.reshape(base.shape).astype(target.dtype)
        plus = eval_sum()
        flat[i] = orig - eps
        target.data = base.reshape(base.shape).astype(target.dtype)
        minus = eval_sum()
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * eps)
    target.data = base.astype(target.dtype)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-3,
    rtol: float = 1e-2,
) -> bool:
    """Verify analytic gradients of ``fn`` for each grad-requiring input.

    Inputs should be float64 tensors for meaningful tolerances.  Raises
    ``AssertionError`` naming the offending input and worst element on
    mismatch; returns ``True`` otherwise (pytest-friendly).
    """
    inputs = list(inputs)
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    analytic = [t.grad if t.requires_grad else None for t in inputs]

    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        expected = numerical_gradient(fn, inputs, i, eps=eps)
        got = analytic[i]
        if got is None:
            raise AssertionError(f"input {i}: analytic gradient is missing")
        diff = np.abs(got.astype(np.float64) - expected)
        tol = atol + rtol * np.abs(expected)
        if not np.all(diff <= tol):
            worst = np.unravel_index(np.argmax(diff - tol), diff.shape)
            raise AssertionError(
                f"input {i}: gradient mismatch at {worst}: "
                f"analytic={got[worst]:.6g} numerical={expected[worst]:.6g} "
                f"(|diff|={diff[worst]:.3g} > tol={tol[worst]:.3g})"
            )
    return True
