"""Figure 13: averaged GPU utilization per system and workload.

The paper reports AvgPipe improving utilization by 86.1% (GNMT), 41.3%
(BERT) and 19.6% (AWD) over the baselines' average; the harness computes
the same relative improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    BASELINE_ORDER,
    avgpipe_matched_to,
    run_baseline,
)

__all__ = ["run_fig13", "Fig13Row"]


@dataclass
class Fig13Row:
    """One (workload, system) cell of Figure 13."""
    workload: str
    system: str
    avg_utilization: float | None
    oom: bool = False


def run_fig13(workloads: tuple[str, ...] = ("gnmt", "bert", "awd")) -> dict:
    """Regenerate Figure 13 plus AvgPipe's relative utilization gains."""
    rows: list[Fig13Row] = []
    improvements: dict[str, float] = {}
    for wl in workloads:
        baseline_utils = []
        for name in BASELINE_ORDER:
            base = run_baseline(wl, name)
            if base.oom:
                rows.append(Fig13Row(wl, base.display, None, oom=True))
                continue
            rows.append(Fig13Row(wl, base.display, base.result.avg_utilization))
            baseline_utils.append(base.result.avg_utilization)
        matched = avgpipe_matched_to(wl, "gpipe")
        rows.append(Fig13Row(wl, "AvgPipe", matched.result.avg_utilization))
        improvements[wl] = (
            matched.result.avg_utilization / float(np.mean(baseline_utils)) - 1.0
        ) * 100.0
    return {"rows": rows, "improvement_pct": improvements}
