"""Figures 2 & 7: illustrative timelines, reproduced as measurements.

* Figure 2 — utilization trace of a vanilla pipeline (and 2BW) on BERT:
  periodic idle, peak utilization well below 100%.
* Figure 7 — one batch on K=2 / M=4: AFAB vs 1F1B vs advance-FP
  timelines; t_afab <= t_advance < t_1f1b, and advance-FP's memory sits
  between the two (the paper's 3/8-of-AFAB example).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import BASELINE_SYSTEMS, choose_baseline_micro, simulate_baseline
from repro.core.simcfg import calibration_for
from repro.schedules import (
    AFABSchedule,
    AdvanceFPSchedule,
    OneFOneBSchedule,
    PipelineSimRunner,
    StageCosts,
)
from repro.sim import ClusterSpec, Simulator, make_cluster

__all__ = ["run_fig02", "run_fig07"]


def run_fig02(workload: str = "bert", registry=None) -> dict:
    """Vanilla-pipeline utilization trace (the paper's motivation plot).

    ``registry`` (a repro.obs MetricRegistry) optionally mirrors the
    runs' spans and Eq.-1 seconds; the figure output is unchanged.
    """
    cal = calibration_for(workload)
    out = {}
    for name in ("gpipe", "pipedream-2bw"):
        spec = BASELINE_SYSTEMS[name]
        m = choose_baseline_micro(spec, cal)
        res = simulate_baseline(spec, cal, num_micro=m, iterations=2,
                                record_utilization=True, registry=registry)
        curve = res.utilization_curves[0]
        out[name] = {
            "peak": float(curve.max()),
            "mean": float(curve.mean()),
            "idle_fraction": float((curve < 0.05).mean()),
        }
    return out


@dataclass
class Fig07Row:
    """One schedule's measurements in the Figure-7 worked example."""
    schedule: str
    batch_time: float
    peak_memory: int
    stash_peak: int
    timeline: str


def run_fig07() -> dict:
    """K=2, M=4, uniform stages — the paper's worked example."""
    K, M = 2, 4
    costs = StageCosts(
        fwd_flops=(4.0e6,) * K,
        act_out_bytes=(4.0e6,) * K,
        stash_bytes=(8.0e6,) * K,
        param_bytes=(1_000_000,) * K,
    )
    rows: list[Fig07Row] = []
    for label, sched in (
        ("AFAB", AFABSchedule()),
        ("1F1B", OneFOneBSchedule(versions=1)),
        ("advance-FP(1)", AdvanceFPSchedule(1)),
    ):
        sim = Simulator()
        # Two single-GPU nodes: the stage boundary crosses the slow
        # Ethernet, as in the paper's worked example.
        cluster = make_cluster(
            sim, 2, spec=ClusterSpec(nodes=2, gpus_per_node=1, memory_bytes=2**31)
        )
        runner = PipelineSimRunner(cluster, sched, costs, num_micro=M, mb_size=8.0)
        res = runner.run(iterations=1, render_timeline=True)
        rows.append(
            Fig07Row(label, res.batch_time, max(res.peak_memory), max(res.data_memory_peak), res.timeline)
        )
    return {"rows": rows}
