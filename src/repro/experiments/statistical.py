"""Statistical-efficiency runs (real training), shared by Figures 11 & 14.

Each system's real-numerics trainer runs to the workload's quality target
and reports epochs-to-target.  Results are cached per process because
Figure 11 (time-to-target = epochs x simulated batch time) and Figure 14
(epochs themselves) reuse the identical runs — as the paper's own
evaluation does.
"""

from __future__ import annotations

import functools

from repro.baselines import BASELINE_SYSTEMS
from repro.core.trainer import AvgPipeTrainer, TrainResult
from repro.experiments.common import avgpipe_matched_to
from repro.models.registry import build_workload

__all__ = ["statistical_results", "MAX_EPOCHS"]

MAX_EPOCHS = {"gnmt": 30, "bert": 12, "awd": 25}

#: systems whose update semantics coincide (sync full-batch SGD): train once.
_SYNC_ALIASES = ("pytorch", "gpipe", "dapple")


@functools.lru_cache(maxsize=None)
def _train(workload: str, system: str, seed: int = 0) -> TrainResult:
    spec = build_workload(workload)
    max_epochs = MAX_EPOCHS[workload]
    if system == "avgpipe":
        plan = avgpipe_matched_to(workload, "gpipe")
        trainer = AvgPipeTrainer(
            spec, seed=seed, max_epochs=max_epochs, num_pipelines=plan.num_pipelines
        )
        return trainer.train()
    if system == "sync-2x-batch":
        # The paper's Figure-5 rationale: naively doubling the batch (the
        # other way to feed two batches per iteration) hurts statistical
        # efficiency; elastic averaging is the alternative that should
        # beat it.  Same data, same recipe, twice the batch.
        import dataclasses

        doubled = dataclasses.replace(spec, batch_size=spec.batch_size * 2)
        from repro.core.trainer import SyncTrainer

        return SyncTrainer(doubled, seed=seed, max_epochs=max_epochs).train()
    base = BASELINE_SYSTEMS[system]
    return base.trainer(spec, seed, max_epochs).train()


def statistical_results(workload: str, seed: int = 0) -> dict[str, TrainResult]:
    """Epochs-to-target per system.  Sync-identical systems share one run
    (their numerics are identical by construction; only timing differs)."""
    sync = _train(workload, "pytorch", seed)
    out: dict[str, TrainResult] = {}
    for name in _SYNC_ALIASES:
        out[name] = sync
    out["pipedream"] = _train(workload, "pipedream", seed)
    out["pipedream-2bw"] = _train(workload, "pipedream-2bw", seed)
    out["avgpipe"] = _train(workload, "avgpipe", seed)
    out["sync-2x-batch"] = _train(workload, "sync-2x-batch", seed)
    return out
