"""Figure 16: GPU-utilization-over-time curves for GNMT.

Compares GPipe and PipeDream-2BW against AvgPipe(2BW): the paper shows
frequent idle dips for the baselines and a >57.8% higher sustained peak
for AvgPipe's parallel pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import BASELINE_SYSTEMS, choose_baseline_micro, simulate_baseline
from repro.core import AvgPipe
from repro.core.simcfg import calibration_for
from repro.experiments.common import avgpipe_matched_to

__all__ = ["run_fig16", "Fig16Series"]


@dataclass
class Fig16Series:
    """One system's utilization-over-time series for Figure 16."""
    system: str
    samples: np.ndarray  # utilization of device 0 on a uniform grid
    peak: float
    mean: float


def run_fig16(workload: str = "gnmt", samples: int = 120) -> dict:
    """Regenerate Figure 16's utilization traces and peak gain."""
    cal = calibration_for(workload)
    series: list[Fig16Series] = []
    for name in ("gpipe", "pipedream-2bw"):
        spec = BASELINE_SYSTEMS[name]
        m = choose_baseline_micro(spec, cal)
        res = simulate_baseline(spec, cal, num_micro=m, iterations=2, record_utilization=True)
        curve = res.utilization_curves[0][:samples]
        series.append(Fig16Series(spec.display, curve, float(curve.max()), float(curve.mean())))

    matched = avgpipe_matched_to(workload, "pipedream-2bw")
    system = AvgPipe(workload)
    plan_result = system.simulate_config(
        matched.num_micro,
        matched.num_pipelines,
        matched.advance,
        iterations=2,
        record_utilization=True,
    )
    curve = plan_result.utilization_curves[0][:samples]
    series.append(Fig16Series("AvgPipe(2BW)", curve, float(curve.max()), float(curve.mean())))

    baseline_peak = max(s.peak for s in series[:2])
    peak_gain_pct = (series[-1].peak / baseline_peak - 1.0) * 100.0 if baseline_peak > 0 else 0.0
    return {"series": series, "peak_gain_pct": peak_gain_pct}
