"""Figures 18 & 19: tuning cost and tuned training time.

Four strategies per workload:
  traversal   — try every (M, N) setting (ground truth, expensive),
  profiling   — the paper's method (one short profile + Equations 2-8),
  max-num     — micro-batch size one, then as many pipelines as fit,
  max-size    — one micro-batch per batch, then pipelines.

Figure 18 compares tuning cost (simulated seconds of measurement);
Figure 19 compares the chosen setting's measured per-batch time.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.core.profiler import Profiler
from repro.core.simcfg import calibration_for
from repro.core.tuner import GuidelineTuner, ProfilingTuner, TraversalTuner, TuningOutcome
from repro.schedules import AdvanceFPSchedule

__all__ = ["run_fig18", "run_fig19", "run_tuning", "TuningRow"]


@dataclass
class TuningRow:
    """One (workload, method) cell shared by Figures 18 and 19."""
    workload: str
    method: str
    m: int
    n: int
    tuning_cost: float
    measured_batch_time: float  # per iteration at the chosen setting
    time_per_batch: float


def _profiler(workload: str) -> Profiler:
    cal = calibration_for(workload)
    return Profiler(
        layer_costs=cal.layer_costs(),
        partition=cal.partition(),
        schedule=AdvanceFPSchedule(2),
        cluster_spec=cal.cluster_spec(),
        batch_size=cal.batch_size,
        activation_byte_scale=cal.activation_byte_scale,
        param_byte_scale=cal.param_byte_scale,
        stash_multiplier=cal.stash_multiplier,
        optimizer_state_factor=cal.optimizer_state_factor,
        with_reference_model=True,
    )


@functools.lru_cache(maxsize=None)  # Figures 18 and 19 share one sweep
def run_tuning(workloads: tuple[str, ...] = ("gnmt", "bert", "awd")) -> dict:
    """Run all four tuning strategies on every workload (cached)."""
    rows: list[TuningRow] = []
    for wl in workloads:
        cal = calibration_for(wl)
        limit = float(cal.memory_capacity_bytes)
        n_candidates = [1, 2, 3, 4]

        def add(outcome: TuningOutcome) -> None:
            rows.append(
                TuningRow(
                    wl,
                    outcome.method,
                    outcome.m,
                    outcome.n,
                    outcome.tuning_cost,
                    outcome.measured_batch_time,
                    outcome.measured_batch_time / max(outcome.n, 1),
                )
            )

        add(TraversalTuner(_profiler(wl), limit).tune(n_candidates=n_candidates))
        add(ProfilingTuner(_profiler(wl), limit).tune(n_candidates=n_candidates))
        guide = GuidelineTuner(_profiler(wl), limit)
        add(guide.tune("max-num", n_candidates=n_candidates))
        add(guide.tune("max-size", n_candidates=n_candidates))
    return {"rows": rows}


def run_fig18(workloads: tuple[str, ...] = ("gnmt", "bert", "awd")) -> dict:
    """Figure 18's view of the tuning sweep: measurement cost."""
    data = run_tuning(workloads)
    return {
        "rows": [r for r in data["rows"] if r.method in ("traversal", "profiling")],
        "all": data["rows"],
    }


def run_fig19(workloads: tuple[str, ...] = ("gnmt", "bert", "awd")) -> dict:
    """Figure 19's view of the tuning sweep: chosen-setting quality."""
    return run_tuning(workloads)
