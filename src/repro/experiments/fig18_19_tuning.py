"""Figures 18 & 19: tuning cost and tuned training time.

Four strategies per workload:
  traversal   — try every (M, N) setting (ground truth, expensive),
  profiling   — the paper's method (one short profile + Equations 2-8),
  max-num     — micro-batch size one, then as many pipelines as fit,
  max-size    — one micro-batch per batch, then pipelines.

Figure 18 compares tuning cost (simulated seconds of measurement);
Figure 19 compares the chosen setting's measured per-batch time.

The learned extension (:func:`run_tune_learned`) adds the
learned-vs-analytic column: on each held-out heterogeneous cluster
variant it plays the online loop — propose the top-ranked unmeasured
setting, "measure" it against a precomputed oracle sweep, feed the
record back through the :mod:`repro.tune` run store — and counts how
many profile runs each strategy needs to land within
:data:`LEARNED_EPSILON` of the oracle-best (M, N).  The learned
strategy starts from records of the *uniform* cluster (the transfer
tier), so its first proposal is already residual-corrected.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

from repro.core.predictor import Predictor, fits_memory
from repro.core.profiler import Profiler
from repro.core.simcfg import calibration_for
from repro.core.tuner import GuidelineTuner, ProfilingTuner, TraversalTuner, TuningOutcome
from repro.schedules import AdvanceFPSchedule

__all__ = [
    "run_fig18",
    "run_fig19",
    "run_tuning",
    "TuningRow",
    "LEARNED_EPSILON",
    "LEARNED_K_THRESHOLD",
    "LEARNED_M_CANDIDATES",
    "LEARNED_N_CANDIDATES",
    "oracle_sweep",
    "runs_to_epsilon",
    "run_tune_learned",
    "LearnedRow",
    "variant_profiler",
]


@dataclass
class TuningRow:
    """One (workload, method) cell shared by Figures 18 and 19."""
    workload: str
    method: str
    m: int
    n: int
    tuning_cost: float
    measured_batch_time: float  # per iteration at the chosen setting
    time_per_batch: float


def _profiler(workload: str) -> Profiler:
    cal = calibration_for(workload)
    return Profiler(
        layer_costs=cal.layer_costs(),
        partition=cal.partition(),
        schedule=AdvanceFPSchedule(2),
        cluster_spec=cal.cluster_spec(),
        batch_size=cal.batch_size,
        activation_byte_scale=cal.activation_byte_scale,
        param_byte_scale=cal.param_byte_scale,
        stash_multiplier=cal.stash_multiplier,
        optimizer_state_factor=cal.optimizer_state_factor,
        with_reference_model=True,
    )


@functools.lru_cache(maxsize=None)  # Figures 18 and 19 share one sweep
def run_tuning(workloads: tuple[str, ...] = ("gnmt", "bert", "awd")) -> dict:
    """Run all four tuning strategies on every workload (cached)."""
    rows: list[TuningRow] = []
    for wl in workloads:
        cal = calibration_for(wl)
        limit = float(cal.memory_capacity_bytes)
        n_candidates = [1, 2, 3, 4]

        def add(outcome: TuningOutcome) -> None:
            rows.append(
                TuningRow(
                    wl,
                    outcome.method,
                    outcome.m,
                    outcome.n,
                    outcome.tuning_cost,
                    outcome.measured_batch_time,
                    outcome.measured_batch_time / max(outcome.n, 1),
                )
            )

        add(TraversalTuner(_profiler(wl), limit).tune(n_candidates=n_candidates))
        add(ProfilingTuner(_profiler(wl), limit).tune(n_candidates=n_candidates))
        guide = GuidelineTuner(_profiler(wl), limit)
        add(guide.tune("max-num", n_candidates=n_candidates))
        add(guide.tune("max-size", n_candidates=n_candidates))
    return {"rows": rows}


def run_fig18(workloads: tuple[str, ...] = ("gnmt", "bert", "awd")) -> dict:
    """Figure 18's view of the tuning sweep: measurement cost."""
    data = run_tuning(workloads)
    return {
        "rows": [r for r in data["rows"] if r.method in ("traversal", "profiling")],
        "all": data["rows"],
    }


def run_fig19(workloads: tuple[str, ...] = ("gnmt", "bert", "awd")) -> dict:
    """Figure 19's view of the tuning sweep: chosen-setting quality."""
    return run_tuning(workloads)


# --------------------------------------------------------------------- #
# learned-vs-analytic extension (repro.tune)

#: "good enough": within 1% of the oracle-best per-batch time.  Tight
#: on purpose: at 5% the analytic first pick already qualifies on every
#: canned variant and the comparison is vacuous.
LEARNED_EPSILON = 0.01

#: regression constant: on every held-out hetero variant the learned
#: strategy (seeded with uniform-cluster records) must reach within
#: LEARNED_EPSILON of oracle-best in at most this many profile runs.
LEARNED_K_THRESHOLD = 2

#: the small grid the online loop plays over (awd batch 40 divisors).
LEARNED_M_CANDIDATES = (1, 2, 4, 8)
LEARNED_N_CANDIDATES = (1, 2)


@dataclass
class LearnedRow:
    """One held-out variant's learned-vs-analytic comparison."""
    workload: str
    variant: str
    oracle_best: float  # per-batch seconds at the oracle-best setting
    analytic_runs: int  # profile runs to reach within epsilon
    learned_runs: int
    analytic_top1_regret: float  # relative regret of the first proposal
    learned_top1_regret: float


def variant_profiler(workload: str, variant: str) -> Profiler:
    """A profiler against one canned hetero variant, jointly planned
    (balanced partition + placement, per-device memory caps)."""
    cal = calibration_for(workload)
    costs = cal.layer_costs()
    partition, placement = cal.hetero_plan(variant, costs, with_memory_caps=True)
    identity = placement == tuple(range(partition.num_stages))
    return Profiler(
        layer_costs=costs,
        partition=partition,
        schedule=AdvanceFPSchedule(2),
        cluster_spec=cal.cluster_spec(variant),
        batch_size=cal.batch_size,
        activation_byte_scale=cal.activation_byte_scale,
        param_byte_scale=cal.param_byte_scale,
        stash_multiplier=cal.stash_multiplier,
        optimizer_state_factor=cal.optimizer_state_factor,
        with_reference_model=True,
        placement=None if identity else placement,
    )


def oracle_sweep(
    profiler: Profiler,
    workload: str = "",
    m_candidates: tuple[int, ...] = LEARNED_M_CANDIDATES,
    n_candidates: tuple[int, ...] = LEARNED_N_CANDIDATES,
    iterations: int = 1,
) -> tuple[dict, dict]:
    """Simulate the whole grid once: ground truth + feedback records.

    Returns ``(oracle, records)`` where ``oracle[(m, n)]`` is the
    measured per-batch time (inf when the setting OOMs) and
    ``records[(m, n)]`` is the :class:`~repro.tune.store.TuneRecord` the
    online loop feeds back when it "measures" that setting — so the loop
    never re-simulates a setting the sweep already ran.
    """
    from repro.tune.store import TuneRecord, tuner_context

    context = tuner_context(profiler, workload=workload)
    profile = profiler.profile(iterations=4)
    predictor = Predictor(profile)
    oracle: dict[tuple[int, int], float] = {}
    records: dict[tuple[int, int], "TuneRecord"] = {}
    for m in m_candidates:
        for n in n_candidates:
            prediction = predictor.predict(m, n)
            result = profiler.run_setting(m, n, iterations=iterations)
            oom = result.oom is not None
            per_batch = None if oom else result.batch_time / n
            oracle[(m, n)] = float("inf") if oom else per_batch
            records[(m, n)] = TuneRecord(
                context=context.context,
                cluster=context.cluster,
                workload=workload,
                schedule=context.schedule,
                k=context.num_stages,
                m=m,
                n=n,
                predicted_batch_time=prediction.batch_time,
                predicted_peak_bytes=float(prediction.peak_memory),
                measured_batch_time=per_batch,
                measured_peak_bytes=None if oom else float(max(result.peak_memory)),
                oom=oom,
            )
    return oracle, records


def runs_to_epsilon(
    profiler: Profiler,
    oracle: dict,
    records: dict,
    memory_limit,
    store=None,
    workload: str = "",
    m_candidates: tuple[int, ...] = LEARNED_M_CANDIDATES,
    n_candidates: tuple[int, ...] = LEARNED_N_CANDIDATES,
    epsilon: float = LEARNED_EPSILON,
) -> tuple[int, list]:
    """Play the online loop; count runs until within epsilon of oracle.

    Each round ranks the unmeasured grid — analytically when ``store``
    is None (the ranking never changes), residual-corrected otherwise —
    "measures" the top proposal from the precomputed ``oracle``, and
    (learned only) appends the matching record so the next round
    re-ranks.  Returns ``(runs, proposals)``; runs is ``len(grid) + 1``
    when the strategy exhausts the grid without reaching epsilon.
    """
    from repro.core.tuner import _stage_memory_limits
    from repro.tune.residual import ResidualModel, select_records
    from repro.tune.store import tuner_context

    context = tuner_context(profiler, workload=workload)
    profile = profiler.profile(iterations=4)
    predictor = Predictor(profile)
    limits = _stage_memory_limits(profiler, memory_limit)
    grid = [predictor.predict(m, n) for m in m_candidates for n in n_candidates]
    finite = [v for v in oracle.values() if math.isfinite(v)]
    if not finite:
        raise RuntimeError("oracle sweep found no feasible setting")
    target = min(finite) * (1.0 + epsilon)
    measured: set[tuple[int, int]] = set()
    proposals: list[tuple[int, int]] = []
    for run in range(1, len(grid) + 1):
        model = None
        if store is not None and len(store) > 0:
            selected, _tier = select_records(store, context, workload)
            if selected:
                model = ResidualModel.fit(selected, context=context.context)
        ranked = []
        for p in grid:
            if (p.m, p.n) in measured:
                continue
            if not fits_memory(p.f_total, limits):
                continue
            if model is not None and model.known_oom(p.m, p.n):
                continue
            correction = model.correction(p.m, p.n) if model is not None else 1.0
            ranked.append((correction * p.batch_time, p.m, p.n))
        if not ranked:
            break
        _, m, n = min(ranked)
        proposals.append((m, n))
        measured.add((m, n))
        if store is not None:
            store.append(records[(m, n)])
        if oracle[(m, n)] <= target:
            return run, proposals
    return len(grid) + 1, proposals


@functools.lru_cache(maxsize=None)
def run_tune_learned(
    workload: str = "awd", variants: tuple[str, ...] | None = None
) -> dict:
    """The learned-vs-analytic column, leave-one-out over held-out specs.

    For each canned hetero variant the learned strategy's store is
    seeded with recorded sweeps of the *other* variants — never the
    variant under test — so every prediction on the held-out spec rides
    the cross-cluster transfer tier and then grows online.  The analytic
    strategy walks its fixed Eq.-1 ranking.  Heterogeneity shifts the
    measured/predicted residual in a way the variants share (the Eq.-2
    intensity model is near-exact on uniform clusters and systematically
    optimistic for large M under per-device speed/link skew), which is
    exactly what the transfer records teach — and what records of the
    *uniform* cluster cannot (its residual profile differs, which is why
    it is excluded from the seed).
    """
    from repro.sim.hetero import hetero_variant_names
    from repro.tune.store import RunStore

    if variants is None:
        variants = tuple(hetero_variant_names())
    sweeps = {v: oracle_sweep(variant_profiler(workload, v), workload=workload)
              for v in variants}

    rows: list[LearnedRow] = []
    for variant in variants:
        prof = variant_profiler(workload, variant)
        limit = list(prof.cluster_spec.memory_vector())
        oracle, var_records = sweeps[variant]
        best = min(v for v in oracle.values() if math.isfinite(v))

        analytic_runs, analytic_props = runs_to_epsilon(
            prof, oracle, var_records, limit, store=None, workload=workload
        )
        seed = [
            r
            for other, (_, recs) in sweeps.items()
            if other != variant
            for r in recs.values()
        ]
        store = RunStore.from_records(seed)
        learned_runs, learned_props = runs_to_epsilon(
            prof, oracle, var_records, limit, store=store, workload=workload
        )

        def top1_regret(props: list) -> float:
            value = oracle[props[0]] if props else float("inf")
            return (value - best) / best if math.isfinite(value) else float("inf")

        rows.append(
            LearnedRow(
                workload=workload,
                variant=variant,
                oracle_best=best,
                analytic_runs=analytic_runs,
                learned_runs=learned_runs,
                analytic_top1_regret=top1_regret(analytic_props),
                learned_top1_regret=top1_regret(learned_props),
            )
        )
    return {
        "rows": rows,
        "epsilon": LEARNED_EPSILON,
        "k_threshold": LEARNED_K_THRESHOLD,
        "workload": workload,
    }
