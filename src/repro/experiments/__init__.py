"""Experiment harness: one module per paper figure.

Each ``run_*`` function regenerates the rows of the corresponding figure
(workload x system grids of training time, memory, utilization, epochs,
tuning cost, ...).  The benchmark suite under ``benchmarks/`` calls these,
prints the tables, writes them to ``benchmarks/results/`` and asserts the
paper's qualitative shapes; the examples reuse the same entry points.
"""

from repro.experiments.common import (
    BaselineRun,
    avgpipe_matched_to,
    run_baseline,
    run_all_baselines,
)
from repro.experiments.statistical import statistical_results
from repro.experiments.fig11_training_time import run_fig11
from repro.experiments.fig12_memory import run_fig12
from repro.experiments.fig13_utilization import run_fig13
from repro.experiments.fig14_statistical import run_fig14
from repro.experiments.fig15_batch_sweep import run_fig15
from repro.experiments.fig16_util_curves import run_fig16
from repro.experiments.fig17_schedules import run_fig17
from repro.experiments.fig18_19_tuning import run_fig18, run_fig19, run_tune_learned
from repro.experiments.fig02_07_timelines import run_fig02, run_fig07
from repro.experiments.hetero_clusters import run_hetero

__all__ = [
    "BaselineRun",
    "run_baseline",
    "run_all_baselines",
    "avgpipe_matched_to",
    "statistical_results",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "run_fig17",
    "run_fig18",
    "run_fig19",
    "run_tune_learned",
    "run_fig02",
    "run_fig07",
    "run_hetero",
]
