"""Figure 11: end-to-end training time to the quality target.

Two layers of comparison, reported side by side:

* **epoch time** — batches/epoch x simulated time-per-batch: the pure
  systems measurement (scheduling, overlap, utilization).  This is where
  the paper's headline speedups live and where our reproduction matches
  (AvgPipe beats every baseline it is memory-matched to).
* **time to target** — epoch time x measured epochs-to-target from real
  training.  The paper's Figure 14 shows AvgPipe's epochs equal to
  PyTorch's on its noise-dominated real datasets; our signal-dominated
  miniature pays up to ~2x epochs at N=2 with Adam (see
  docs/elastic_averaging.md), which partially offsets the systems win in
  this column.  Both columns are printed so the regime difference is
  visible rather than hidden.

Also derives the paper's headline aggregates over *epoch time*:
AvgPipe's average speedup vs data parallelism (paper: 4.7x) and vs the
pipeline baselines (paper: 1.7x).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    BASELINE_ORDER,
    VARIANT_TAG,
    avgpipe_matched_to,
    run_baseline,
)
from repro.experiments.statistical import statistical_results
from repro.models.registry import build_workload
from repro.utils.stats import geometric_mean

__all__ = ["run_fig11", "Fig11Row"]


@dataclass
class Fig11Row:
    """One (workload, system) cell of Figure 11."""
    workload: str
    system: str
    epochs: int | None
    time_per_batch: float | None  # simulated seconds
    epoch_time: float | None  # simulated seconds per epoch
    training_time: float | None  # simulated seconds to target
    oom: bool = False
    note: str = ""


def _batches_per_epoch(workload: str) -> int:
    spec = build_workload(workload)
    loader = spec.make_train_loader(spec.batch_size, 0)
    return len(loader) if not isinstance(loader, list) else len(loader)


def run_fig11(workloads: tuple[str, ...] = ("gnmt", "bert", "awd")) -> dict:
    """Regenerate Figure 11 (see the module docstring)."""
    rows: list[Fig11Row] = []
    epoch_speedups_vs_dp: list[float] = []
    epoch_speedups_vs_pipeline: list[float] = []

    for wl in workloads:
        stats = statistical_results(wl)
        batches = _batches_per_epoch(wl)

        baseline_epoch_time: dict[str, float] = {}
        for name in BASELINE_ORDER:
            base = run_baseline(wl, name)
            if base.oom:
                rows.append(Fig11Row(wl, base.display, None, None, None, None, oom=True))
                continue
            epochs = stats[name].epochs_to_target
            epoch_time = batches * base.time_per_batch
            baseline_epoch_time[name] = epoch_time
            rows.append(
                Fig11Row(wl, base.display, epochs, base.time_per_batch, epoch_time,
                         epochs * epoch_time)
            )

        avg_epochs = stats["avgpipe"].epochs_to_target
        for name in BASELINE_ORDER:
            base = run_baseline(wl, name)
            if base.oom:
                continue
            matched = avgpipe_matched_to(wl, name)
            epoch_time = batches * matched.time_per_batch
            note = (
                f"M={matched.num_micro} N={matched.num_pipelines}"
                + (f" budget x{matched.budget_relaxation:.2f}" if matched.budget_relaxation > 1 else "")
            )
            rows.append(
                Fig11Row(wl, VARIANT_TAG[name], avg_epochs, matched.time_per_batch,
                         epoch_time, avg_epochs * epoch_time, note=note)
            )
            if name == "pytorch":
                epoch_speedups_vs_dp.append(baseline_epoch_time[name] / epoch_time)
            else:
                epoch_speedups_vs_pipeline.append(baseline_epoch_time[name] / epoch_time)

    return {
        "rows": rows,
        "avg_speedup_vs_dp": geometric_mean(epoch_speedups_vs_dp) if epoch_speedups_vs_dp else float("nan"),
        "avg_speedup_vs_pipeline": (
            geometric_mean(epoch_speedups_vs_pipeline) if epoch_speedups_vs_pipeline else float("nan")
        ),
    }
