"""Figure 12: per-system GPU memory footprints (peak over devices)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    BASELINE_ORDER,
    VARIANT_TAG,
    avgpipe_matched_to,
    run_baseline,
)

__all__ = ["run_fig12", "Fig12Row"]

MIB = 2**20


@dataclass
class Fig12Row:
    """One (workload, system) cell of Figure 12."""
    workload: str
    system: str
    peak_memory_mib: float | None
    weight_mib: float | None
    activation_mib: float | None
    oom: bool = False
    over_capacity: bool = False  # DP's unenforced replica (paper anomaly)


def run_fig12(workloads: tuple[str, ...] = ("gnmt", "bert", "awd")) -> dict:
    """Regenerate Figure 12's memory-footprint rows."""
    from repro.core.simcfg import calibration_for

    rows: list[Fig12Row] = []
    for wl in workloads:
        capacity = calibration_for(wl).memory_capacity_bytes
        for name in BASELINE_ORDER:
            base = run_baseline(wl, name)
            if base.oom:
                rows.append(Fig12Row(wl, base.display, None, None, None, oom=True))
                continue
            peak = max(base.result.peak_memory)
            rows.append(
                Fig12Row(
                    wl,
                    base.display,
                    peak / MIB,
                    max(base.result.weight_memory) / MIB,
                    max(base.result.data_memory_peak) / MIB,
                    over_capacity=peak > capacity,
                )
            )
        for name in BASELINE_ORDER:
            base = run_baseline(wl, name)
            if base.oom:
                continue
            matched = avgpipe_matched_to(wl, name)
            rows.append(
                Fig12Row(
                    wl,
                    VARIANT_TAG[name],
                    max(matched.result.peak_memory) / MIB,
                    max(matched.result.weight_memory) / MIB,
                    max(matched.result.data_memory_peak) / MIB,
                )
            )
    return {"rows": rows}
