"""Shared experiment plumbing: baseline runs and memory-matched AvgPipe.

The paper's §7.1 methodology: every baseline runs at its own best feasible
configuration, then AvgPipe is re-tuned under each baseline's measured
memory footprint — AvgPipe(P), AvgPipe(G), AvgPipe(PD), AvgPipe(2BW),
AvgPipe(D).  ``avgpipe_matched_to`` implements exactly that; when the
paper configuration (N >= 2) cannot fit under our conservative memory
accounting (BERT; see DESIGN.md), the budget is relaxed by the smallest
sufficient factor and the relaxation is *reported in the row*, never
silent.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.baselines import BASELINE_SYSTEMS, BaselineSystem, choose_baseline_micro, simulate_baseline
from repro.core import AvgPipe
from repro.core.simcfg import SimCalibration, calibration_for
from repro.schedules.executor import SimIterationResult

__all__ = ["BaselineRun", "run_baseline", "run_all_baselines", "avgpipe_matched_to", "AvgPipeRun"]

BASELINE_ORDER = ["pytorch", "gpipe", "pipedream", "pipedream-2bw", "dapple"]

#: short tags the paper uses for the memory-matched AvgPipe variants
VARIANT_TAG = {
    "pytorch": "AvgPipe(P)",
    "gpipe": "AvgPipe(G)",
    "pipedream": "AvgPipe(PD)",
    "pipedream-2bw": "AvgPipe(2BW)",
    "dapple": "AvgPipe(D)",
}


@dataclass
class BaselineRun:
    """One baseline's simulated result at its chosen configuration."""
    system: str
    display: str
    workload: str
    num_micro: int | None
    result: SimIterationResult

    @property
    def oom(self) -> bool:
        return self.result.oom is not None

    @property
    def time_per_batch(self) -> float:
        return self.result.time_per_batch

    @property
    def peak_memory(self) -> int:
        return max(self.result.peak_memory)


@dataclass
class AvgPipeRun:
    """A memory-matched AvgPipe result, including any budget relaxation."""
    variant: str  # e.g. "AvgPipe(G)"
    workload: str
    num_micro: int
    num_pipelines: int
    advance: int
    budget_bytes: float
    budget_relaxation: float  # 1.0 = matched exactly; >1 reported deviation
    result: SimIterationResult

    @property
    def time_per_batch(self) -> float:
        return self.result.time_per_batch

    @property
    def peak_memory(self) -> int:
        return max(self.result.peak_memory)


@functools.lru_cache(maxsize=None)
def run_baseline(workload: str, system: str, iterations: int = 3) -> BaselineRun:
    """Simulate one baseline at its best feasible configuration."""
    cal = calibration_for(workload)
    spec = BASELINE_SYSTEMS[system]
    if spec.schedule is None:
        result = simulate_baseline(spec, cal, iterations=iterations)
        return BaselineRun(system, spec.display, workload, None, result)
    try:
        m = choose_baseline_micro(spec, cal)
    except RuntimeError:
        # OOM at every M (PipeDream on BERT): report an OOM run.
        result = simulate_baseline(spec, cal, num_micro=max(
            mm for mm in range(1, cal.batch_size + 1) if cal.batch_size % mm == 0
        ), iterations=1)
        return BaselineRun(system, spec.display, workload, None, result)
    result = simulate_baseline(spec, cal, num_micro=m, iterations=iterations)
    return BaselineRun(system, spec.display, workload, m, result)


def run_all_baselines(workload: str, iterations: int = 3) -> list[BaselineRun]:
    """Simulate every baseline on a workload, in the paper's order."""
    return [run_baseline(workload, s, iterations) for s in BASELINE_ORDER]


@functools.lru_cache(maxsize=None)
def avgpipe_matched_to(workload: str, baseline: str, iterations: int = 3) -> AvgPipeRun:
    """Tune and simulate AvgPipe under ``baseline``'s memory footprint.

    The budget starts at the baseline's measured peak; if no setting with
    N >= 1 fits, it is relaxed in 15% steps (recorded in the returned
    row) — the honest version of the paper's "same or lower memory"
    constraint under our accounting, see DESIGN.md.
    """
    base = run_baseline(workload, baseline)
    cal = calibration_for(workload)
    # The budget can never exceed physical device memory, even when the
    # matched baseline's reported footprint does (DP's unenforced replica).
    budget = min(float(max(base.result.peak_memory)), float(cal.memory_capacity_bytes))
    if base.oom:
        budget = float(cal.memory_capacity_bytes)
    system = AvgPipe(workload)

    best: AvgPipeRun | None = None
    last_error: Exception | None = None
    relaxation = 1.0
    for _ in range(8):
        effective = min(budget * relaxation, float(cal.memory_capacity_bytes))
        try:
            plan = system.plan(memory_limit_bytes=effective, n_candidates=[1, 2, 3, 4])
            result = system.simulate(plan, iterations=iterations)
            if result.oom is None:
                candidate = AvgPipeRun(
                    variant=VARIANT_TAG[baseline],
                    workload=workload,
                    num_micro=plan.num_micro,
                    num_pipelines=plan.num_pipelines,
                    advance=plan.advance,
                    budget_bytes=effective,
                    budget_relaxation=relaxation,
                    result=result,
                )
                if best is None or candidate.time_per_batch < best.time_per_batch * 0.98:
                    best = candidate
                # Stop relaxing once the baseline is beaten or the budget
                # has hit physical capacity.
                if (
                    candidate.time_per_batch < base.time_per_batch
                    or effective >= cal.memory_capacity_bytes
                ):
                    break
        except RuntimeError as err:
            last_error = err
        relaxation *= 1.15
    if best is None:
        raise RuntimeError(
            f"AvgPipe could not be configured under {baseline}'s budget on {workload}"
        ) from last_error
    return best
