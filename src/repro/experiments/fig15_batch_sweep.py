"""Figure 15: GNMT epoch time vs batch size (64..256).

The paper's observation: GPipe's epoch time stays flat as the batch
grows (bubbles scale with it), while AvgPipe exploits the larger batch by
slicing more micro-batches, widening its advantage from 1.3x to 2.6x.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.baselines import BASELINE_SYSTEMS, choose_baseline_micro, simulate_baseline
from repro.core import AvgPipe
from repro.core.simcfg import calibration_for

__all__ = ["run_fig15", "Fig15Row"]

EPOCH_SAMPLES = 1382  # GNMT train-split size at the default data config


@dataclass
class Fig15Row:
    """One batch-size point of the Figure-15 sweep."""
    batch_size: int
    gpipe_epoch_time: float
    avgpipe_epoch_time: float
    speedup: float
    avgpipe_m: int
    avgpipe_n: int


def run_fig15(batch_sizes: tuple[int, ...] = (64, 128, 192, 256)) -> dict:
    """Regenerate Figure 15's GNMT batch-size sweep."""
    base_cal = calibration_for("gnmt")
    rows: list[Fig15Row] = []
    for batch in batch_sizes:
        # The paper's 32 GB devices are nowhere near full in this sweep;
        # our calibrated capacity was pinned against batch 128, so scale
        # it with the batch to keep memory non-binding here as well —
        # Figure 15 is about epoch-time shape, not memory limits.
        capacity = int(base_cal.memory_capacity_bytes * max(1.0, batch / 128))
        cal = replace(base_cal, batch_size=batch, memory_capacity_bytes=capacity)
        batches_per_epoch = max(EPOCH_SAMPLES // batch, 1)
        gpipe = BASELINE_SYSTEMS["gpipe"]
        m = choose_baseline_micro(gpipe, cal)
        gp = simulate_baseline(gpipe, cal, num_micro=m, iterations=2)
        system = AvgPipe("gnmt", calibration=cal)
        plan = system.plan(memory_limit_bytes=float(max(gp.peak_memory)), n_candidates=[1, 2, 3])
        ours = system.simulate(plan, iterations=2)
        gp_epoch = gp.time_per_batch * batches_per_epoch
        ap_epoch = ours.time_per_batch * batches_per_epoch
        rows.append(
            Fig15Row(batch, gp_epoch, ap_epoch, gp_epoch / ap_epoch, plan.num_micro, plan.num_pipelines)
        )
    return {"rows": rows}
