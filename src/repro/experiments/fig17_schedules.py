"""Figure 17: schedule ablation — AFAB vs 1F1B vs 1F1B+advance-FP.

Reports per workload: training time per iteration, last-GPU idle time
(17a), peak memory (17b) and, for BERT, the per-GPU memory profile (17c).
Run at N=1: with parallel pipelines active, one pipeline's bubbles absorb
the other's communication exposure and the schedules converge — an
observation we record in EXPERIMENTS.md (the paper does not state the N
used for this ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profiler import Profiler
from repro.core.simcfg import calibration_for
from repro.schedules import AFABSchedule, AdvanceFPSchedule, OneFOneBSchedule

__all__ = ["run_fig17", "Fig17Row"]

MIB = 2**20

#: per-workload M for the ablation (the AvgPipe-tuned micro-batch counts)
ABLATION_M = {"gnmt": 32, "bert": 16, "awd": 1}


@dataclass
class Fig17Row:
    """One (workload, schedule) cell of the Figure-17 ablation."""
    workload: str
    schedule: str
    iter_time: float | None
    last_gpu_idle: float | None
    peak_memory_mib: float | None
    per_gpu_memory_mib: tuple[float, ...] | None
    oom: bool = False


def _profiler(cal, schedule) -> Profiler:
    return Profiler(
        layer_costs=cal.layer_costs(),
        partition=cal.partition(),
        schedule=schedule,
        cluster_spec=cal.cluster_spec(),
        batch_size=cal.batch_size,
        activation_byte_scale=cal.activation_byte_scale,
        param_byte_scale=cal.param_byte_scale,
        stash_multiplier=cal.stash_multiplier,
        optimizer_state_factor=cal.optimizer_state_factor,
        with_reference_model=True,
    )


def run_fig17(workloads: tuple[str, ...] = ("gnmt", "bert", "awd"), advance: int = 4) -> dict:
    """Regenerate the Figure-17 schedule ablation at N=1."""
    rows: list[Fig17Row] = []
    for wl in workloads:
        cal = calibration_for(wl)
        m = ABLATION_M[wl]
        adv = min(advance, m)
        for label, sched in (
            ("AFAB", AFABSchedule()),
            ("1F1B", OneFOneBSchedule(versions=1)),
            (f"advance-FP({adv})", AdvanceFPSchedule(adv)),
        ):
            res = _profiler(cal, sched).run_setting(m, 1, iterations=3)
            if res.oom is not None:
                rows.append(Fig17Row(wl, label, None, None, None, None, oom=True))
                continue
            rows.append(
                Fig17Row(
                    wl,
                    label,
                    res.batch_time,
                    res.last_device_idle,
                    max(res.peak_memory) / MIB,
                    tuple(p / MIB for p in res.peak_memory),
                )
            )
    return {"rows": rows}
