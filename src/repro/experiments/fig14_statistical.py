"""Figure 14: statistical efficiency — epochs to the quality target.

The paper's claims: AvgPipe matches PyTorch's epochs across all three
workloads; PipeDream's multi-version staleness costs it statistical
efficiency, visibly on AWD.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.statistical import statistical_results

__all__ = ["run_fig14", "Fig14Row"]

DISPLAY = {
    "pytorch": "PyTorch (sync)",
    "gpipe": "GPipe (sync)",
    "dapple": "Dapple (sync)",
    "pipedream": "PipeDream",
    "pipedream-2bw": "PipeDream-2BW",
    "avgpipe": "AvgPipe",
    "sync-2x-batch": "Sync, 2x batch (Fig. 5a strawman)",
}


@dataclass
class Fig14Row:
    """One (workload, system) cell of Figure 14."""
    workload: str
    system: str
    epochs_to_target: int
    reached: bool
    final_metric: float


def run_fig14(workloads: tuple[str, ...] = ("gnmt", "bert", "awd")) -> dict:
    """Regenerate Figure 14 from the shared statistical runs."""
    rows: list[Fig14Row] = []
    for wl in workloads:
        stats = statistical_results(wl)
        for name in ("pytorch", "gpipe", "dapple", "pipedream", "pipedream-2bw",
                     "avgpipe", "sync-2x-batch"):
            result = stats[name]
            rows.append(
                Fig14Row(wl, DISPLAY[name], result.epochs_to_target, result.reached_target,
                         result.final_metric)
            )
    return {"rows": rows}
