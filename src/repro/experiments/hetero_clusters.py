"""Heterogeneous-cluster partitioning experiment (fig11/fig13 analogue).

For each canned heterogeneous variant of the GNMT testbed
(:mod:`repro.sim.hetero`), simulates one iteration-timed run under three
planning strategies:

* ``uniform-partition`` — the seed planner: :func:`partition_model`
  computed as if the cluster were uniform, straight-chain placement.
  This is what a heterogeneity-blind tuner would deploy.
* ``balanced`` — BaPipe-style :func:`partition_balanced` against the
  variant's per-device speeds and per-link bandwidths, still
  straight-chain (stage k on device k).
* ``balanced+placement`` — the joint search
  (:func:`search_partition_placement`): every stage->device permutation
  re-runs the balanced DP and the cheapest plan wins (Luo et al.,
  arXiv:2204.10562).

The headline quantity is simulated batch time per strategy and the
speedup over ``uniform-partition`` — the analogue of Figures 11/13's
"who wins and by how much", with heterogeneity instead of the baseline
systems as the independent variable.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.core.profiler import Profiler
from repro.core.simcfg import SimCalibration, calibration_for
from repro.graph.partitioner import Partition, partition_balanced
from repro.schedules import AdvanceFPSchedule
from repro.sim.hetero import hetero_variant_names

__all__ = ["run_hetero", "HeteroRow", "STRATEGY_ORDER", "plan_strategies"]

STRATEGY_ORDER = ("uniform-partition", "balanced", "balanced+placement")


@dataclass
class HeteroRow:
    """One (variant, strategy) cell of the hetero experiment."""
    workload: str
    variant: str
    strategy: str
    boundaries: tuple[int, ...]
    placement: tuple[int, ...]
    batch_time: float
    speedup_vs_uniform: float  # >1 = this strategy is faster
    oom: bool = False


def plan_strategies(
    cal: SimCalibration, variant: str, costs=None
) -> dict[str, tuple[Partition, tuple[int, ...] | None]]:
    """(partition, placement) per strategy for one canned variant."""
    costs = costs or cal.layer_costs()
    cspec = cal.cluster_spec(variant)
    k = cal.num_devices
    matrix = [
        [bw / cal.activation_byte_scale for bw in row]
        for row in cspec.bandwidth_matrix()
    ]
    # identity-placement slot bandwidths: the link into stage k is k-1 -> k
    chain_bw = [float("inf")] + [matrix[i - 1][i] for i in range(1, k)]
    balanced = partition_balanced(
        costs,
        k,
        device_speeds=cspec.speed_vector(),
        bandwidth_bytes_per_sec=chain_bw,
        flops_per_sec=cspec.peak_flops,
        comm_weight=0.2,
    )
    joint_part, joint_perm = cal.hetero_plan(variant, costs)
    return {
        "uniform-partition": (cal.partition(costs), None),
        "balanced": (balanced, None),
        "balanced+placement": (joint_part, joint_perm),
    }


def _simulate(
    cal: SimCalibration,
    variant: str,
    partition: Partition,
    placement: tuple[int, ...] | None,
    costs,
    num_micro: int,
    iterations: int,
) -> float:
    profiler = Profiler(
        layer_costs=costs,
        partition=partition,
        schedule=AdvanceFPSchedule(2),
        cluster_spec=cal.cluster_spec(variant),
        batch_size=cal.batch_size,
        activation_byte_scale=cal.activation_byte_scale,
        param_byte_scale=cal.param_byte_scale,
        stash_multiplier=cal.stash_multiplier,
        optimizer_state_factor=cal.optimizer_state_factor,
        with_reference_model=True,
        placement=placement,
    )
    result = profiler.run_setting(num_micro, 1, iterations=iterations)
    if result.oom is not None:
        return float("inf")
    return result.batch_time


@functools.lru_cache(maxsize=None)
def run_hetero(
    workloads: tuple[str, ...] = ("gnmt",),
    variants: tuple[str, ...] | None = None,
    num_micro: int = 8,
    iterations: int = 2,
) -> dict:
    """Regenerate the heterogeneity rows (cached).

    GNMT is the default workload: its 16-layer chain over 6 devices has
    enough partition freedom for balanced cuts to matter (AWD's 4-layer
    chain over 4 devices is forced to one layer per stage, leaving only
    placement as a lever).
    """
    variants = variants or hetero_variant_names()
    rows: list[HeteroRow] = []
    speedups: dict[tuple[str, str, str], float] = {}
    for wl in workloads:
        cal = calibration_for(wl)
        costs = cal.layer_costs()
        for variant in variants:
            plans = plan_strategies(cal, variant, costs)
            times: dict[str, float] = {}
            for strategy in STRATEGY_ORDER:
                part, perm = plans[strategy]
                times[strategy] = _simulate(
                    cal, variant, part, perm, costs, num_micro, iterations
                )
            t_uniform = times["uniform-partition"]
            for strategy in STRATEGY_ORDER:
                part, perm = plans[strategy]
                t = times[strategy]
                speedup = t_uniform / t if t > 0 else float("inf")
                rows.append(
                    HeteroRow(
                        workload=wl,
                        variant=variant,
                        strategy=strategy,
                        boundaries=part.boundaries,
                        placement=perm
                        if perm is not None
                        else tuple(range(cal.num_devices)),
                        batch_time=t,
                        speedup_vs_uniform=speedup,
                        oom=t == float("inf"),
                    )
                )
                speedups[(wl, variant, strategy)] = speedup
    return {"rows": rows, "speedup": speedups}
