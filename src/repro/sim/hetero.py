"""Canned heterogeneous cluster variants.

Three shapes the partition/placement search must handle, each a
perturbation of the default 4-device (2 nodes x 2 GPUs) testbed:

* ``mixed-gen`` — a cluster upgraded half-way: devices 2..3 are a
  previous-generation part at half throughput and 3/4 the memory.  The
  balanced partitioner must give the slow half proportionally fewer
  layers (BaPipe's motivating case, arXiv:2012.12544).
* ``straggler-node`` — one device (index 1) pinned at 0.4x speed, the
  planned-for version of what ``repro chaos --scenario straggler``
  injects at runtime.  The balanced partitioner shrinks that stage's
  layer span instead of letting it gate the pipeline.
* ``asym-links`` — devices uniform, but the inter-node pair (1, 2) is
  congested to ~1/5 bandwidth at 4x latency.  Partitioning alone cannot
  fix a bad wire; the placement pass (Luo et al., arXiv:2204.10562)
  must route the pipeline's cross-node cut over the healthy (3, 2)
  path instead.

All variants share ``num_devices == 4`` so they slot into the AWD-sized
configurations used by the experiments and the fuzzer.
"""

from __future__ import annotations

import dataclasses

from repro.sim.cluster import ClusterSpec

__all__ = ["HETERO_VARIANTS", "hetero_variant", "hetero_variant_names"]

GIB = 2**30


def _mixed_gen(base: ClusterSpec) -> ClusterSpec:
    d = base.num_devices
    half = d // 2
    return dataclasses.replace(
        base,
        device_speed=tuple([1.0] * half + [0.5] * (d - half)),
        device_memory_bytes=tuple(
            [base.memory_bytes] * half + [int(base.memory_bytes * 0.75)] * (d - half)
        ),
    )


def _straggler_node(base: ClusterSpec) -> ClusterSpec:
    speeds = [1.0] * base.num_devices
    speeds[1 % base.num_devices] = 0.4
    return dataclasses.replace(base, device_speed=tuple(speeds))


def _asym_links(base: ClusterSpec) -> ClusterSpec:
    if base.num_devices < 4:
        raise ValueError("asym-links needs >= 4 devices")
    slow_bw = base.inter_node_bandwidth / 5.0
    slow_lat = base.inter_node_latency * 4.0
    return dataclasses.replace(
        base,
        link_overrides=(
            (1, 2, slow_bw, slow_lat),
            (2, 1, slow_bw, slow_lat),
        ),
    )


HETERO_VARIANTS: dict[str, object] = {
    "mixed-gen": _mixed_gen,
    "straggler-node": _straggler_node,
    "asym-links": _asym_links,
}


def hetero_variant_names() -> tuple[str, ...]:
    return tuple(HETERO_VARIANTS)


def hetero_variant(name: str, base: ClusterSpec | None = None) -> ClusterSpec:
    """A canned heterogeneous spec derived from ``base`` (default: the
    2-node x 2-GPU testbed)."""
    if base is None:
        base = ClusterSpec(nodes=2, gpus_per_node=2)
    try:
        make = HETERO_VARIANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown hetero variant {name!r}; choose from {sorted(HETERO_VARIANTS)}"
        ) from None
    return make(base)
