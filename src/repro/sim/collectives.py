"""Collective-communication primitives on the simulated cluster.

The data-parallel baseline prices its gradient synchronization as a ring
all-reduce; this module provides the ring as a reusable, step-accurate
simulation (2(K-1) phases of chunk exchanges over the actual link
topology) plus an analytic lower bound, so the coarser single-transfer
approximation used by :class:`DataParallelSimRunner` can be validated
against a faithful execution (see ``tests/test_sim_collectives.py``).
"""

from __future__ import annotations

from repro.sim.cluster import Cluster
from repro.sim.events import Event, Simulator

__all__ = ["ring_allreduce", "ring_allreduce_lower_bound"]


def ring_allreduce(cluster: Cluster, nbytes: float, name: str = "allreduce") -> Event:
    """Simulate a ring all-reduce of ``nbytes`` per participant.

    All devices participate in ring order.  The classic algorithm runs
    2(K-1) phases; in each phase every device sends one chunk of size
    ``nbytes / K`` to its successor, and a phase completes when every
    transfer of that phase has arrived (the ring is bulk-synchronous at
    chunk granularity).  Returns an event that fires at completion.
    """
    sim = cluster.sim
    k = cluster.num_devices
    if k < 2:
        done = sim.event(name=name)
        sim.schedule(0.0, done)
        return done
    chunk = nbytes / k

    def protocol():
        for _phase in range(2 * (k - 1)):
            transfers = [
                cluster.link(i, (i + 1) % k).transfer(chunk, name=f"{name}.p{_phase}.d{i}")
                for i in range(k)
            ]
            yield sim.all_of(transfers)

    return sim.process(protocol(), name=name)


def ring_allreduce_lower_bound(cluster: Cluster, nbytes: float) -> float:
    """Bandwidth-optimal time bound: 2(K-1)/K x nbytes over the slowest
    link on the ring, plus per-phase latency."""
    k = cluster.num_devices
    if k < 2:
        return 0.0
    slowest_bw = min(cluster.link(i, (i + 1) % k).bandwidth for i in range(k))
    max_latency = max(cluster.link(i, (i + 1) % k).latency for i in range(k))
    phases = 2 * (k - 1)
    return phases * (nbytes / k / slowest_bw + max_latency)
