"""Discrete-event cluster simulator.

Stands in for the paper's 3-node x 2-V100 / 1 Gbps testbed.  The design
follows generalized processor sharing:

* :class:`~repro.sim.events.Simulator` — event heap + generator-based
  processes (a minimal simpy).
* :class:`~repro.sim.resource.SharedResource` — capacity shared among
  concurrent tasks in proportion to their declared demands; a compute
  kernel that can only extract 40% of a GPU alone declares demand 0.4,
  two such kernels co-run at full speed, four of them stretch 1.6x.
  This is exactly the utilization model behind the paper's Equation 2.
* :class:`~repro.sim.device.Device` — a GPU: compute resource + memory
  ledger + the arithmetic-intensity -> utilization curve.
* :class:`~repro.sim.link.Link` — directed bandwidth resource with
  latency; intra-node links are ~80x faster than the 1 Gbps inter-node
  Ethernet, reproducing the paper's communication bottleneck.
* :class:`~repro.sim.cluster.Cluster` — the topology (devices per node,
  link matrix) and factory helpers for the paper's configurations.
* :class:`~repro.sim.trace.TraceRecorder` — per-device busy/comm/bubble
  accounting and utilization-over-time curves (Figures 2, 13, 16).
"""

from repro.sim.events import AllOf, Event, Process, Simulator
from repro.sim.resource import SharedResource
from repro.sim.memory import MemoryLedger, OutOfMemoryError
from repro.sim.device import Device, UtilizationCurve
from repro.sim.link import Link
from repro.sim.cluster import Cluster, ClusterSpec, make_cluster
from repro.sim.hetero import HETERO_VARIANTS, hetero_variant, hetero_variant_names
from repro.sim.trace import SpanKind, TraceRecorder

__all__ = [
    "Simulator",
    "Event",
    "AllOf",
    "Process",
    "SharedResource",
    "MemoryLedger",
    "OutOfMemoryError",
    "Device",
    "UtilizationCurve",
    "Link",
    "Cluster",
    "ClusterSpec",
    "make_cluster",
    "HETERO_VARIANTS",
    "hetero_variant",
    "hetero_variant_names",
    "SpanKind",
    "TraceRecorder",
]
