"""Execution tracing: spans, time decomposition and utilization curves.

Each stage process reports what it is doing (computing / blocked on a
receive whose transfer is in flight / idle waiting on schedule
dependencies); the recorder aggregates per device into the paper's
T_gpu / T_com / T_bub decomposition (Equation 1) and renders the
Figure-2/16 utilization-over-time curves from the device resources'
step functions.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.sim.cluster import Cluster
from repro.utils.timeline_render import TimelineSpan, render_gantt

__all__ = ["SpanKind", "TraceRecorder", "EQ1_COMPONENT"]


class SpanKind(str, enum.Enum):
    """What a recorded span was doing: fwd/bwd/comm/bubble/sync/fault."""
    FWD = "fwd"
    BWD = "bwd"
    COMM = "comm"  # receive wait that blocks a stage process
    BUBBLE = "bubble"  # idle wait on upstream/downstream dependencies
    SYNC = "sync"  # optimizer / allreduce / averaging
    FAULT = "fault"  # injected fault window (repro.resilience)
    RECOVERY = "recovery"  # detection-to-recovery window


#: Equation-1 component each span kind contributes to.  FAULT/RECOVERY
#: are annotation windows, not device work, and map to no component.
EQ1_COMPONENT: dict[SpanKind, str] = {
    SpanKind.FWD: "gpu",
    SpanKind.BWD: "gpu",
    SpanKind.COMM: "com",
    SpanKind.BUBBLE: "bub",
    SpanKind.SYNC: "sync",
}


@dataclass(slots=True)
class _Span:
    device: int
    start: float
    end: float
    kind: SpanKind
    label: str
    #: structured identity for causality checking (repro.verify.fuzz):
    #: which pipeline/stage produced this span, and which *global*
    #: micro-batch index (iteration * M + micro) it processed.  ``None``
    #: for spans without a per-micro identity (sync/comm/bubble).
    pipeline: int | None = None
    stage: int | None = None
    micro: int | None = None


@dataclass
class TraceRecorder:
    """Collects spans emitted by runtime processes.

    An optional :class:`~repro.obs.registry.MetricRegistry` mirrors every
    span into metric series as it is recorded: a per-(device, component)
    ``trace.eq1_seconds`` counter accumulating the same float additions
    in the same order as :meth:`time_decomposition` (so the two agree
    *bitwise*, which the obs cross-check test asserts), plus per-kind
    span counts and duration histograms.  With no registry attached (the
    default) the hot path is untouched.
    """

    spans: list[_Span] = field(default_factory=list)
    #: duck-typed MetricRegistry; None (default) disables mirroring.
    registry: object | None = None

    def record(
        self,
        device: int,
        start: float,
        end: float,
        kind: SpanKind,
        label: str = "",
        *,
        pipeline: int | None = None,
        stage: int | None = None,
        micro: int | None = None,
    ) -> None:
        if end < start:
            raise ValueError(f"span ends before it starts: {start} > {end} ({label})")
        if end > start:
            self.spans.append(_Span(device, start, end, kind, label, pipeline, stage, micro))
            if self.registry is not None:
                duration = end - start
                self.registry.counter("trace.spans", device=device, kind=kind.value).inc()
                self.registry.histogram(
                    "trace.span_seconds", device=device, kind=kind.value
                ).observe(duration)
                component = EQ1_COMPONENT.get(kind)
                if component is not None:
                    self.registry.counter(
                        "trace.eq1_seconds", device=device, component=component
                    ).inc(duration)

    def compute_spans(self) -> list[_Span]:
        """FWD/BWD spans carrying a (pipeline, stage, micro) identity."""
        return [
            s
            for s in self.spans
            if s.kind in (SpanKind.FWD, SpanKind.BWD) and s.micro is not None
        ]

    # ------------------------------------------------------------------ #
    # aggregation

    def time_decomposition(self, device: int) -> dict[str, float]:
        """T_gpu / T_com / T_bub totals for one device (Equation 1)."""
        out = {"gpu": 0.0, "com": 0.0, "bub": 0.0, "sync": 0.0}
        for span in self.spans:
            if span.device != device:
                continue
            if span.kind in (SpanKind.FAULT, SpanKind.RECOVERY):
                continue  # annotation windows, not device work (see fault_spans)
            duration = span.end - span.start
            if span.kind in (SpanKind.FWD, SpanKind.BWD):
                out["gpu"] += duration
            elif span.kind == SpanKind.COMM:
                out["com"] += duration
            elif span.kind == SpanKind.BUBBLE:
                out["bub"] += duration
            else:
                out["sync"] += duration
        return out

    def time_decomposition_all(self, num_devices: int) -> list[dict[str, float]]:
        """Per-device Equation-1 totals in one pass over the span list.

        Accumulates each device's components in span order, i.e. the same
        float additions in the same order as calling
        :meth:`time_decomposition` per device — the results agree bitwise.
        """
        out = [{"gpu": 0.0, "com": 0.0, "bub": 0.0, "sync": 0.0} for _ in range(num_devices)]
        gpu_kinds = (SpanKind.FWD, SpanKind.BWD)
        skip_kinds = (SpanKind.FAULT, SpanKind.RECOVERY)
        for span in self.spans:
            dev = span.device
            if dev >= num_devices or span.kind in skip_kinds:
                continue
            d = out[dev]
            duration = span.end - span.start
            if span.kind in gpu_kinds:
                d["gpu"] += duration
            elif span.kind == SpanKind.COMM:
                d["com"] += duration
            elif span.kind == SpanKind.BUBBLE:
                d["bub"] += duration
            else:
                d["sync"] += duration
        return out

    def fault_spans(self) -> list[_Span]:
        """Injected fault / recovery annotation windows (repro.resilience)."""
        return [s for s in self.spans if s.kind in (SpanKind.FAULT, SpanKind.RECOVERY)]

    def idle_time(self, device: int) -> float:
        d = self.time_decomposition(device)
        return d["com"] + d["bub"]

    def device_busy_interval(self, device: int) -> tuple[float, float]:
        starts = [s.start for s in self.spans if s.device == device]
        ends = [s.end for s in self.spans if s.device == device]
        if not starts:
            return (0.0, 0.0)
        return (min(starts), max(ends))

    # ------------------------------------------------------------------ #
    # utilization (from the device compute resources)

    @staticmethod
    def average_utilization(cluster: Cluster, horizon: float) -> float:
        """Mean GPU utilization over all devices up to ``horizon``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        total = sum(d.compute.utilization_integral(horizon) for d in cluster.devices)
        return total / (horizon * len(cluster.devices))

    @staticmethod
    def utilization_curve(cluster: Cluster, device: int, horizon: float, samples: int = 200) -> np.ndarray:
        """Utilization sampled on a uniform grid (Figure 16's series)."""
        steps = cluster.devices[device].compute.utilization_steps
        times = np.array([t for t, _ in steps])
        values = np.array([u for _, u in steps])
        grid = np.linspace(0.0, horizon, samples, endpoint=False)
        idx = np.searchsorted(times, grid, side="right") - 1
        return values[np.clip(idx, 0, len(values) - 1)]

    # ------------------------------------------------------------------ #
    # rendering

    def render(self, n_devices: int, width: int = 100, end_time: float | None = None) -> str:
        spans = [
            TimelineSpan(s.device, s.start, s.end, s.kind.value, s.label)
            for s in self.spans
            if s.kind in (SpanKind.FWD, SpanKind.BWD, SpanKind.COMM)
        ]
        return render_gantt(spans, n_devices, width=width, end_time=end_time)
