"""Directed communication link.

Each transfer pays a fixed latency and then streams its bytes through the
link's shared bandwidth (demand 1.0 — network transfers saturate their
link, so two concurrent transfers on one link halve each other, as on a
real Ethernet).  Intra-node links (NVLink/PCIe class) are orders of
magnitude faster than the paper's 1 Gbps inter-node Ethernet; the
contrast is what makes 1F1B communication-bound in Figures 2 and 17.
"""

from __future__ import annotations

from repro.sim.events import Event, Simulator
from repro.sim.resource import SharedResource

__all__ = ["Link"]


class Link:
    """Directed bandwidth resource with latency (see module docstring)."""
    def __init__(
        self,
        sim: Simulator,
        src: int,
        dst: int,
        bandwidth_bytes_per_sec: float,
        latency_sec: float = 0.0,
        name: str | None = None,
    ) -> None:
        if bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_sec < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.latency = latency_sec
        self.bandwidth = bandwidth_bytes_per_sec
        self.pipe = SharedResource(
            sim, capacity=bandwidth_bytes_per_sec, name=name or f"link{src}->{dst}"
        )
        self._degradation = 1.0
        # Event names for the default transfer label, composed once: every
        # pipeline send pays this path, and the strings never change.
        self._xfer_done_name = f"{self.pipe.name}.xfer"
        self._xfer_gate_name = self._xfer_done_name + ".latency"

    # ------------------------------------------------------------------ #
    # fault hooks (repro.resilience)

    @property
    def degradation(self) -> float:
        return self._degradation

    @property
    def partitioned(self) -> bool:
        return self.pipe.frozen

    def degrade(self, factor: float) -> None:
        """Divide the effective bandwidth by ``factor`` (congestion, flaky
        NIC); ``factor=1.0`` restores nominal.  In-flight transfers slow
        down from this instant."""
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {factor}")
        self._degradation = factor
        self.pipe.set_capacity(self.bandwidth / factor)

    def sever(self) -> None:
        """Network partition: transfers stall entirely until :meth:`heal`."""
        self.pipe.freeze()

    def heal(self) -> None:
        """Undo :meth:`sever` and any degradation; stalled bytes resume."""
        self._degradation = 1.0
        self.pipe.set_capacity(self.bandwidth)
        self.pipe.unfreeze()

    def transfer(self, nbytes: float, name: str = "xfer") -> Event:
        """Start a transfer now; the event fires on delivery."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if name == "xfer":
            done_name = self._xfer_done_name
            gate_name = self._xfer_gate_name
        else:
            done_name = f"{self.pipe.name}.{name}"
            gate_name = done_name + ".latency"
        if self.latency == 0.0:
            if nbytes > 0:
                return self.pipe.execute(nbytes, demand=1.0, name=name)
            return self.sim.schedule(0.0, Event(self.sim, name=done_name))
        done = Event(self.sim, name=done_name)

        def start(_: Event) -> None:
            stream = self.pipe.execute(nbytes, demand=1.0, name=name)
            stream.add_callback(lambda ev: done.succeed())

        gate = Event(self.sim, name=gate_name)
        gate.add_callback(start)
        self.sim.schedule(self.latency, gate)
        return done

    def transfer_time_alone(self, nbytes: float) -> float:
        """Analytic time for a contention-free transfer (used by tuner)."""
        return self.latency + nbytes / self.bandwidth
