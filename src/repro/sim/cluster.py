"""Cluster topology: devices grouped into nodes, links between them.

:func:`make_cluster` builds the paper's testbed shape — ``nodes`` machines
with ``gpus_per_node`` devices each, fast intra-node links and a slow
shared-Ethernet path between nodes.  Device indices are global and
pipeline stage k maps to device k (the paper's straight-chain placement)
unless a placement permutation says otherwise.

A :class:`ClusterSpec` is *uniform* by default (every device identical,
every same-class link identical) — the paper's testbed.  Three optional
fields make it heterogeneous:

* ``device_speed`` — per-device multiplier on ``peak_flops`` (0.5 = a
  previous-generation part at half throughput);
* ``device_memory_bytes`` — absolute per-device memory capacities,
  overriding the shared ``memory_bytes``;
* ``link_overrides`` — ``(src, dst, bandwidth, latency)`` rows replacing
  the class-derived parameters of specific directed links (a congested
  or mis-cabled path).

Uniform specs take exactly the code paths they always did — no
multiplication by 1.0, no override lookup on a hit-less dict — so every
golden, oracle and benchmark built on uniform clusters is bit-for-bit
unchanged.  Canned heterogeneous shapes live in :mod:`repro.sim.hetero`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.device import Device, UtilizationCurve
from repro.sim.events import Simulator
from repro.sim.link import Link

__all__ = ["ClusterSpec", "Cluster", "make_cluster"]

GIB = 2**30


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware parameters; defaults mirror the paper's testbed scaled to
    the synthetic workloads' flop counts.

    ``peak_flops`` is deliberately small because the synthetic models are
    small; what matters is the *ratio* of compute time to communication
    time, tuned so inter-node activation transfers cost the same order as
    a micro-batch of compute — the regime where the paper's scheduling
    effects appear.
    """

    nodes: int = 3
    gpus_per_node: int = 2
    peak_flops: float = 2.0e8
    memory_bytes: int = 2 * GIB
    intra_node_bandwidth: float = 8.0e9  # NVLink/PCIe class, bytes/s
    inter_node_bandwidth: float = 1.25e8  # 1 Gbps Ethernet in bytes/s
    intra_node_latency: float = 5e-6
    inter_node_latency: float = 1e-4
    curve: UtilizationCurve = field(default_factory=UtilizationCurve)
    #: per-device speed multipliers (len == num_devices); None = uniform
    device_speed: tuple[float, ...] | None = None
    #: absolute per-device memory capacities; None = memory_bytes everywhere
    device_memory_bytes: tuple[int, ...] | None = None
    #: (src, dst, bandwidth_bytes_per_sec, latency_sec) rows replacing the
    #: class-derived parameters of specific *directed* links
    link_overrides: tuple[tuple[int, int, float, float], ...] = ()

    def __post_init__(self) -> None:
        d = self.num_devices
        if self.device_speed is not None:
            if len(self.device_speed) != d:
                raise ValueError(
                    f"device_speed has {len(self.device_speed)} entries for {d} devices"
                )
            if any(s <= 0 for s in self.device_speed):
                raise ValueError(f"device speeds must be positive: {self.device_speed}")
        if self.device_memory_bytes is not None:
            if len(self.device_memory_bytes) != d:
                raise ValueError(
                    f"device_memory_bytes has {len(self.device_memory_bytes)} "
                    f"entries for {d} devices"
                )
            if any(m <= 0 for m in self.device_memory_bytes):
                raise ValueError(
                    f"device memory capacities must be positive: {self.device_memory_bytes}"
                )
        for row in self.link_overrides:
            src, dst, bandwidth, latency = row
            if src == dst:
                raise ValueError(f"link override {row} is a self-link")
            if not (0 <= src < d and 0 <= dst < d):
                raise ValueError(f"link override {row} outside 0..{d - 1}")
            if bandwidth <= 0:
                raise ValueError(f"link override {row} has non-positive bandwidth")
            if latency < 0:
                raise ValueError(f"link override {row} has negative latency")

    @property
    def num_devices(self) -> int:
        return self.nodes * self.gpus_per_node

    @property
    def is_uniform(self) -> bool:
        """True when every device and same-class link is identical."""
        return (
            self.device_speed is None
            and self.device_memory_bytes is None
            and not self.link_overrides
        )

    # ------------------------------------------------------------------ #
    # per-device / per-link accessors (the planner's view of the spec)

    def node_of(self, device: int) -> int:
        return device // self.gpus_per_node

    def speed_of(self, device: int) -> float:
        return 1.0 if self.device_speed is None else self.device_speed[device]

    def peak_flops_of(self, device: int) -> float:
        """Effective peak of one device (no arithmetic on uniform specs)."""
        if self.device_speed is None:
            return self.peak_flops
        return self.peak_flops * self.device_speed[device]

    def memory_bytes_of(self, device: int) -> int:
        if self.device_memory_bytes is None:
            return self.memory_bytes
        return self.device_memory_bytes[device]

    def link_params(self, src: int, dst: int) -> tuple[float, float]:
        """(bandwidth, latency) of the directed link src -> dst."""
        if src == dst:
            raise ValueError("no self-links")
        for o_src, o_dst, bandwidth, latency in self.link_overrides:
            if o_src == src and o_dst == dst:
                return bandwidth, latency
        if self.node_of(src) == self.node_of(dst):
            return self.intra_node_bandwidth, self.intra_node_latency
        return self.inter_node_bandwidth, self.inter_node_latency

    def speed_vector(self) -> tuple[float, ...]:
        """Per-device speed multipliers (all ones for a uniform spec)."""
        return tuple(self.speed_of(i) for i in range(self.num_devices))

    def memory_vector(self) -> tuple[int, ...]:
        """Per-device memory capacities in bytes."""
        return tuple(self.memory_bytes_of(i) for i in range(self.num_devices))

    def bandwidth_matrix(self) -> list[list[float]]:
        """D x D directed bandwidths; the diagonal is +inf (no transfer)."""
        d = self.num_devices
        return [
            [
                float("inf") if i == j else self.link_params(i, j)[0]
                for j in range(d)
            ]
            for i in range(d)
        ]


class Cluster:
    """Devices grouped into nodes with lazily-created directed links."""
    def __init__(self, sim: Simulator, spec: ClusterSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.devices: list[Device] = [
            Device(
                sim,
                index=i,
                node=i // spec.gpus_per_node,
                peak_flops=spec.peak_flops_of(i),
                memory_bytes=spec.memory_bytes_of(i),
                curve=spec.curve,
            )
            for i in range(spec.num_devices)
        ]
        self._links: dict[tuple[int, int], Link] = {}

    def link(self, src: int, dst: int) -> Link:
        """The directed link between two devices (created lazily)."""
        if src == dst:
            raise ValueError("no self-links")
        key = (src, dst)
        if key not in self._links:
            bandwidth, latency = self.spec.link_params(src, dst)
            self._links[key] = Link(
                self.sim,
                src,
                dst,
                bandwidth_bytes_per_sec=bandwidth,
                latency_sec=latency,
            )
        return self._links[key]

    def is_cross_node(self, src: int, dst: int) -> bool:
        return self.devices[src].node != self.devices[dst].node

    @property
    def num_devices(self) -> int:
        return len(self.devices)


def make_cluster(
    sim: Simulator,
    num_devices: int | None = None,
    spec: ClusterSpec | None = None,
    **overrides,
) -> Cluster:
    """Convenience factory.

    ``make_cluster(sim, 6)`` gives the paper's 3x2 testbed;
    ``make_cluster(sim, 4)`` the 2-node AWD configuration.
    """
    if spec is None:
        if num_devices is None:
            raise ValueError("pass num_devices or spec")
        if num_devices % 2 == 0:
            base = ClusterSpec(nodes=num_devices // 2, gpus_per_node=2, **overrides)
        else:
            base = ClusterSpec(nodes=num_devices, gpus_per_node=1, **overrides)
        spec = base
    elif num_devices is not None and spec.num_devices != num_devices:
        raise ValueError(f"spec has {spec.num_devices} devices, asked for {num_devices}")
    return Cluster(sim, spec)
