"""Cluster topology: devices grouped into nodes, links between them.

:func:`make_cluster` builds the paper's testbed shape — ``nodes`` machines
with ``gpus_per_node`` devices each, fast intra-node links and a slow
shared-Ethernet path between nodes.  Device indices are global and
pipeline stage k maps to device k (the paper's straight-chain placement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.device import Device, UtilizationCurve
from repro.sim.events import Simulator
from repro.sim.link import Link

__all__ = ["ClusterSpec", "Cluster", "make_cluster"]

GIB = 2**30


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware parameters; defaults mirror the paper's testbed scaled to
    the synthetic workloads' flop counts.

    ``peak_flops`` is deliberately small because the synthetic models are
    small; what matters is the *ratio* of compute time to communication
    time, tuned so inter-node activation transfers cost the same order as
    a micro-batch of compute — the regime where the paper's scheduling
    effects appear.
    """

    nodes: int = 3
    gpus_per_node: int = 2
    peak_flops: float = 2.0e8
    memory_bytes: int = 2 * GIB
    intra_node_bandwidth: float = 8.0e9  # NVLink/PCIe class, bytes/s
    inter_node_bandwidth: float = 1.25e8  # 1 Gbps Ethernet in bytes/s
    intra_node_latency: float = 5e-6
    inter_node_latency: float = 1e-4
    curve: UtilizationCurve = field(default_factory=UtilizationCurve)

    @property
    def num_devices(self) -> int:
        return self.nodes * self.gpus_per_node


class Cluster:
    """Devices grouped into nodes with lazily-created directed links."""
    def __init__(self, sim: Simulator, spec: ClusterSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.devices: list[Device] = [
            Device(
                sim,
                index=i,
                node=i // spec.gpus_per_node,
                peak_flops=spec.peak_flops,
                memory_bytes=spec.memory_bytes,
                curve=spec.curve,
            )
            for i in range(spec.num_devices)
        ]
        self._links: dict[tuple[int, int], Link] = {}

    def link(self, src: int, dst: int) -> Link:
        """The directed link between two devices (created lazily)."""
        if src == dst:
            raise ValueError("no self-links")
        key = (src, dst)
        if key not in self._links:
            same_node = self.devices[src].node == self.devices[dst].node
            self._links[key] = Link(
                self.sim,
                src,
                dst,
                bandwidth_bytes_per_sec=(
                    self.spec.intra_node_bandwidth if same_node else self.spec.inter_node_bandwidth
                ),
                latency_sec=(
                    self.spec.intra_node_latency if same_node else self.spec.inter_node_latency
                ),
            )
        return self._links[key]

    def is_cross_node(self, src: int, dst: int) -> bool:
        return self.devices[src].node != self.devices[dst].node

    @property
    def num_devices(self) -> int:
        return len(self.devices)


def make_cluster(
    sim: Simulator,
    num_devices: int | None = None,
    spec: ClusterSpec | None = None,
    **overrides,
) -> Cluster:
    """Convenience factory.

    ``make_cluster(sim, 6)`` gives the paper's 3x2 testbed;
    ``make_cluster(sim, 4)`` the 2-node AWD configuration.
    """
    if spec is None:
        if num_devices is None:
            raise ValueError("pass num_devices or spec")
        if num_devices % 2 == 0:
            base = ClusterSpec(nodes=num_devices // 2, gpus_per_node=2, **overrides)
        else:
            base = ClusterSpec(nodes=num_devices, gpus_per_node=1, **overrides)
        spec = base
    elif num_devices is not None and spec.num_devices != num_devices:
        raise ValueError(f"spec has {spec.num_devices} devices, asked for {num_devices}")
    return Cluster(sim, spec)
