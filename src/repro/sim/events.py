"""Minimal discrete-event engine (a compact simpy).

* :class:`Simulator` owns the clock and the event heap.
* :class:`Event` — one-shot; processes wait on events; ``succeed(value)``
  wakes all waiters at the current time.  ``cancel()`` tombstones a
  pending event: it is dropped from the queue without firing and without
  advancing the clock.
* :class:`Process` — wraps a generator that yields events; the engine
  resumes the generator with the event's value when it fires.  A process
  is itself an event (fires when the generator returns).
* :class:`AllOf` — barrier over several events.

The engine is deterministic: simultaneous events fire in schedule order
(heap ties broken by a monotone sequence number), so every experiment is
bit-reproducible.

Queue tuning
------------
Cancellation is lazy: a tombstoned event stays in the heap and is skipped
at pop time, so ``cancel()`` is O(1).  When tombstones outnumber live
entries the heap is compacted in one linear pass (between pops only —
never mid-drain), which keeps a cancel-heavy workload from dragging a
dead heap around.  Events that were *succeeded* elsewhere before their
scheduled time still advance the clock when popped, exactly as before —
only ``cancel()`` produces clock-invisible entries.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

__all__ = ["Simulator", "Event", "Process", "AllOf"]

# Compact when the heap holds more than this many tombstones AND they are
# the majority of entries; small heaps are cheaper to drain than rebuild.
_COMPACT_MIN_TOMBSTONES = 64


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("sim", "triggered", "cancelled", "value", "callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.triggered = False
        self.cancelled = False
        self.value: Any = None
        # Lazily allocated: most events never get a callback before firing.
        self.callbacks: list[Callable[["Event"], None]] | None = None
        self.name = name

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise RuntimeError(f"event {self.name or id(self)} already triggered")
        if self.cancelled:
            raise RuntimeError(f"event {self.name or id(self)} was cancelled")
        self.triggered = True
        self.value = value
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = None
            for cb in callbacks:
                cb(self)
        return self

    def cancel(self) -> "Event":
        """Tombstone a pending event: never fires, never advances the clock.

        Waiters registered via :meth:`add_callback` are discarded — the
        caller is responsible for not cancelling events a live process
        still depends on.  Cancelling twice is a no-op; cancelling a
        triggered event is an error.
        """
        if self.triggered:
            raise RuntimeError(f"cannot cancel fired event {self.name or id(self)}")
        if not self.cancelled:
            self.cancelled = True
            self.callbacks = None
            self.sim._note_cancel()
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            callback(self)
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "fired" if self.triggered else "cancelled" if self.cancelled else "pending"
        )
        return f"Event({self.name or hex(id(self))}, {state})"


class AllOf(Event):
    """Fires when every constituent event has fired."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, name="all_of")
        events = list(events)
        self._remaining = len(events)
        if self._remaining == 0:
            # Fire at the current instant, but via the queue for determinism.
            sim.schedule(0.0, self)
            return
        for ev in events:
            ev.add_callback(self._on_child)

    def _on_child(self, _: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed()


class Process(Event):
    """Drives a generator; each yielded Event suspends the process."""

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any], name: str = "") -> None:
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._send = gen.send
        self._resume_cb = self._resume  # one bound method for every resume
        # Kick off via the queue so creation order does not leak into
        # same-instant semantics.
        start = Event(sim, name=f"{self.name}.start")
        start.callbacks = [self._resume_cb]
        sim.schedule(0.0, start)

    def _resume(self, fired: Event) -> None:
        try:
            target = self._send(fired.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise TypeError(f"process {self.name} yielded {target!r}, expected Event")
        target.add_callback(self._resume_cb)


class Simulator:
    """Event heap + clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._tombstones = 0

    def schedule(self, delay: float, event: Event) -> Event:
        """Arrange for ``event.succeed()`` at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        return event

    def timeout(self, delay: float, name: str = "timeout") -> Event:
        return self.schedule(delay, Event(self, name=name))

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def process(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # ------------------------------------------------------------------ #
    # tombstone bookkeeping

    def _note_cancel(self) -> None:
        self._tombstones += 1

    def _should_compact(self) -> bool:
        return (
            self._tombstones > _COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(self._heap)
        )

    def _compact(self) -> None:
        """Drop tombstoned entries and re-heapify (linear time).

        Only entries whose event was cancelled are removed; entries whose
        event was succeeded early keep their clock-advancing pop, so
        compaction is invisible to simulation results.
        """
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._tombstones = 0

    # ------------------------------------------------------------------ #

    def run(self, until: float | None = None) -> float:
        """Drain the heap (optionally up to time ``until``); returns the
        final clock value."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            # Inlined _should_compact(): this check runs once per pop.
            if self._tombstones > _COMPACT_MIN_TOMBSTONES and self._tombstones * 2 > len(heap):
                self._compact()
                heap = self._heap
                if not heap:
                    break
            t = heap[0][0]
            if until is not None and t > until:
                self.now = until
                return self.now
            event = pop(heap)[2]
            if event.cancelled:
                if self._tombstones:
                    self._tombstones -= 1
                continue  # dropped without touching the clock
            self.now = t
            if not event.triggered:  # succeeded-early events are skipped
                event.succeed(event.value)
            # Same-timestamp batch: everything tied at t already passed the
            # ``until`` check, so drain the tie without re-peeking it.
            while heap and heap[0][0] == t:
                event = pop(heap)[2]
                if event.cancelled:
                    if self._tombstones:
                        self._tombstones -= 1
                    continue
                if not event.triggered:
                    event.succeed(event.value)
        return self.now

    def run_until_process(self, process: Process, limit: float = 1e12) -> float:
        """Run until ``process`` completes; raises if the heap drains first."""
        heap = self._heap
        pop = heapq.heappop
        while not process.triggered:
            # Inlined _should_compact(): this check runs once per pop.
            if self._tombstones > _COMPACT_MIN_TOMBSTONES and self._tombstones * 2 > len(heap):
                self._compact()
                heap = self._heap
            if not heap:
                raise RuntimeError(
                    f"deadlock: process {process.name} never completed "
                    f"(no events left at t={self.now})"
                )
            t, _, event = pop(heap)
            if event.cancelled:
                if self._tombstones:
                    self._tombstones -= 1
                continue
            if t > limit:
                raise RuntimeError(f"simulation exceeded time limit {limit}")
            self.now = t
            if not event.triggered:
                event.succeed(event.value)
        return self.now
