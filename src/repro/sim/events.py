"""Minimal discrete-event engine (a compact simpy).

* :class:`Simulator` owns the clock and the event heap.
* :class:`Event` — one-shot; processes wait on events; ``succeed(value)``
  wakes all waiters at the current time.
* :class:`Process` — wraps a generator that yields events; the engine
  resumes the generator with the event's value when it fires.  A process
  is itself an event (fires when the generator returns).
* :class:`AllOf` — barrier over several events.

The engine is deterministic: simultaneous events fire in schedule order
(heap ties broken by a monotone sequence number), so every experiment is
bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

__all__ = ["Simulator", "Event", "Process", "AllOf"]


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("sim", "triggered", "value", "callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self.callbacks: list[Callable[["Event"], None]] = []
        self.name = name

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise RuntimeError(f"event {self.name or id(self)} already triggered")
        self.triggered = True
        self.value = value
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.triggered else "pending"
        return f"Event({self.name or hex(id(self))}, {state})"


class AllOf(Event):
    """Fires when every constituent event has fired."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, name="all_of")
        events = list(events)
        self._remaining = len(events)
        if self._remaining == 0:
            # Fire at the current instant, but via the queue for determinism.
            sim.schedule(0.0, self)
            return
        for ev in events:
            ev.add_callback(self._on_child)

    def _on_child(self, _: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed()


class Process(Event):
    """Drives a generator; each yielded Event suspends the process."""

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any], name: str = "") -> None:
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        # Kick off via the queue so creation order does not leak into
        # same-instant semantics.
        start = Event(sim, name=f"{self.name}.start")
        start.add_callback(self._resume)
        sim.schedule(0.0, start)

    def _resume(self, fired: Event) -> None:
        try:
            target = self._gen.send(fired.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise TypeError(f"process {self.name} yielded {target!r}, expected Event")
        target.add_callback(self._resume)


class Simulator:
    """Event heap + clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0

    def schedule(self, delay: float, event: Event) -> Event:
        """Arrange for ``event.succeed()`` at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        return event

    def timeout(self, delay: float, name: str = "timeout") -> Event:
        return self.schedule(delay, Event(self, name=name))

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def process(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def run(self, until: float | None = None) -> float:
        """Drain the heap (optionally up to time ``until``); returns the
        final clock value."""
        while self._heap:
            t, _, event = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = t
            if not event.triggered:  # cancelled/superseded events are skipped
                event.succeed(event.value)
        return self.now

    def run_until_process(self, process: Process, limit: float = 1e12) -> float:
        """Run until ``process`` completes; raises if the heap drains first."""
        while not process.triggered:
            if not self._heap:
                raise RuntimeError(
                    f"deadlock: process {process.name} never completed "
                    f"(no events left at t={self.now})"
                )
            t, _, event = heapq.heappop(self._heap)
            if t > limit:
                raise RuntimeError(f"simulation exceeded time limit {limit}")
            self.now = t
            if not event.triggered:
                event.succeed(event.value)
        return self.now
