"""Per-device memory accounting.

The ledger tracks named allocations (weights, optimizer state, activation
stashes) with peak tracking; exceeding capacity raises
:class:`OutOfMemoryError` — how the PipeDream-on-BERT OOM of Figure 11/12
reproduces.  Allocation is instantaneous (memory changes at op boundaries
in every schedule we model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MemoryLedger", "OutOfMemoryError"]


class OutOfMemoryError(RuntimeError):
    """Raised when a device allocation exceeds its capacity."""

    def __init__(self, device: str, requested: int, used: int, capacity: int, tag: str) -> None:
        super().__init__(
            f"OOM on {device}: allocating {requested / 2**20:.1f} MiB ({tag}) with "
            f"{used / 2**20:.1f} MiB in use of {capacity / 2**20:.1f} MiB"
        )
        self.device = device
        self.requested = requested
        self.used = used
        self.capacity = capacity
        self.tag = tag


@dataclass
class MemoryLedger:
    """Byte-accurate allocation tracking with category breakdown."""

    capacity: int
    device_name: str = "device"
    used: int = 0
    peak: int = 0
    by_tag: dict[str, int] = field(default_factory=dict)
    peak_by_tag: dict[str, int] = field(default_factory=dict)

    def alloc(self, nbytes: int, tag: str = "untagged", enforce: bool = True) -> None:
        """Allocate; ``enforce=False`` records an over-capacity footprint
        without raising (used for the paper's own anomaly of reporting a
        data-parallel footprint above device memory — see Figure 12)."""
        if nbytes < 0:
            raise ValueError(f"negative allocation {nbytes}")
        if enforce and self.used + nbytes > self.capacity:
            raise OutOfMemoryError(self.device_name, nbytes, self.used, self.capacity, tag)
        self.used += nbytes
        self.by_tag[tag] = self.by_tag.get(tag, 0) + nbytes
        self.peak = max(self.peak, self.used)
        self.peak_by_tag[tag] = max(self.peak_by_tag.get(tag, 0), self.by_tag[tag])

    def free(self, nbytes: int, tag: str = "untagged") -> None:
        if nbytes < 0:
            raise ValueError(f"negative free {nbytes}")
        current = self.by_tag.get(tag, 0)
        if nbytes > current:
            raise ValueError(
                f"{self.device_name}: freeing {nbytes} bytes of {tag!r} "
                f"but only {current} allocated"
            )
        self.by_tag[tag] = current - nbytes
        self.used -= nbytes

    def reset_peak(self) -> None:
        self.peak = self.used
        self.peak_by_tag = dict(self.by_tag)

    def publish(self, registry, **labels) -> None:
        """Mirror current/peak footprints into a metric registry.

        Gauges: ``sim.mem.used_bytes`` / ``sim.mem.peak_bytes`` plus a
        per-tag ``sim.mem.tag_peak_bytes`` high-water mark (the Figure-12
        activation/weight breakdown).  ``labels`` typically carries the
        owning device index.
        """
        registry.gauge("sim.mem.used_bytes", **labels).set(self.used)
        registry.gauge("sim.mem.peak_bytes", **labels).set(self.peak)
        registry.gauge("sim.mem.capacity_bytes", **labels).set(self.capacity)
        for tag, peak in sorted(self.peak_by_tag.items()):
            registry.gauge("sim.mem.tag_peak_bytes", tag=tag, **labels).set(peak)
