"""Simulated GPU: compute resource + memory + utilization curve.

The utilization curve maps a kernel's micro-batch size to the fraction of
peak throughput a single kernel extracts (its *demand* on the shared
compute resource).  The saturating form

    u(b) = u_floor + (u_max - u_floor) * b / (b + b_half)

matches the paper's observations: small micro-batches leave arithmetic
intensity low (~60% peak for vanilla pipelines in Figure 2), whole
batches approach peak, and co-running a second pipeline raises device
utilization with diminishing returns (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.events import Event, Simulator
from repro.sim.memory import MemoryLedger
from repro.sim.resource import SharedResource

__all__ = ["UtilizationCurve", "Device"]


@dataclass(frozen=True)
class UtilizationCurve:
    """Saturating micro-batch-size -> single-kernel utilization map."""

    u_max: float = 0.95
    u_floor: float = 0.12
    b_half: float = 10.0

    def __post_init__(self) -> None:
        if not 0 <= self.u_floor < self.u_max <= 1.0:
            raise ValueError(f"need 0 <= u_floor < u_max <= 1, got {self}")
        if self.b_half <= 0:
            raise ValueError("b_half must be positive")

    def demand(self, micro_batch_size: float) -> float:
        if micro_batch_size <= 0:
            raise ValueError(f"micro-batch size must be positive, got {micro_batch_size}")
        u = self.u_floor + (self.u_max - self.u_floor) * micro_batch_size / (
            micro_batch_size + self.b_half
        )
        return min(u, 1.0)


class Device:
    """One simulated GPU."""

    def __init__(
        self,
        sim: Simulator,
        index: int,
        node: int,
        peak_flops: float,
        memory_bytes: int,
        curve: UtilizationCurve | None = None,
    ) -> None:
        self.sim = sim
        self.index = index
        self.node = node
        self.peak_flops = peak_flops
        self.curve = curve or UtilizationCurve()
        self.compute = SharedResource(sim, capacity=peak_flops, name=f"gpu{index}")
        self.memory = MemoryLedger(capacity=memory_bytes, device_name=f"gpu{index}")
        self.failed = False
        self._slowdown = 1.0
        self._demand_cache: dict[float, float] = {}

    def run_kernel(self, flops: float, micro_batch_size: float, name: str = "kernel") -> Event:
        """Submit a compute kernel; returns its completion event."""
        # The curve is a pure function of the micro-batch size and kernels
        # overwhelmingly share one size, so memoize per device.
        demand = self._demand_cache.get(micro_batch_size)
        if demand is None:
            demand = self.curve.demand(micro_batch_size)
            self._demand_cache[micro_batch_size] = demand
        return self.compute.execute(flops, demand, name=name)

    # ------------------------------------------------------------------ #
    # fault hooks (repro.resilience)

    def fail(self) -> None:
        """Crash the device: in-flight and future kernels make no progress."""
        self.failed = True
        self.compute.freeze()

    def restore(self) -> None:
        """Bring a crashed device back; frozen kernels resume."""
        self.failed = False
        self.compute.unfreeze()

    @property
    def slowdown(self) -> float:
        return self._slowdown

    def set_slowdown(self, factor: float) -> None:
        """Throttle the device to ``peak_flops / factor`` (a straggler).

        ``factor=1.0`` restores nominal speed.  Takes effect immediately,
        including for kernels already in flight.
        """
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {factor}")
        self._slowdown = factor
        self.compute.set_capacity(self.peak_flops / factor)

    # ------------------------------------------------------------------ #
    # telemetry (repro.obs)

    def telemetry(self) -> dict:
        """Snapshot of the device's observable state (registry-free)."""
        return {
            "device": self.index,
            "node": self.node,
            "frozen": self.compute.frozen,
            "capacity": self.compute.capacity,
            "nominal_capacity": self.compute.nominal_capacity,
            "slowdown": self._slowdown,
            "utilization": self.compute.current_demand,
            "mem_used": self.memory.used,
            "mem_peak": self.memory.peak,
        }

    def publish_telemetry(self, registry) -> None:
        """Mirror :meth:`telemetry` into registry gauges (see the gauge
        catalog in :func:`repro.obs.telemetry.publish_cluster`)."""
        registry.gauge("sim.device.frozen", device=self.index).set(
            1.0 if self.compute.frozen else 0.0
        )
        registry.gauge("sim.device.capacity", device=self.index).set(self.compute.capacity)
        registry.gauge("sim.device.nominal_capacity", device=self.index).set(
            self.compute.nominal_capacity
        )
        registry.gauge("sim.device.slowdown", device=self.index).set(self._slowdown)
        registry.gauge("sim.device.utilization", device=self.index).set(
            self.compute.current_demand
        )
        self.memory.publish(registry, device=self.index)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Device(gpu{self.index}, node={self.node})"
