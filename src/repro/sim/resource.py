"""Generalized processor-sharing resource.

A :class:`SharedResource` has ``capacity`` work-units/second.  Each task
declares ``work`` (units) and ``demand`` — the fraction of capacity the
task can extract when running alone (a GPU kernel with low arithmetic
intensity cannot saturate the device; a network transfer saturates its
link, demand 1.0).  Concurrent tasks are granted

    rate_i = demand_i * capacity                 if sum(demands) <= 1
    rate_i = demand_i / sum(demands) * capacity  otherwise

i.e. under-subscribed tasks coexist for free; over-subscription stretches
everybody proportionally.  This is exactly the utilization model the
paper's predictor assumes in Equation 2 (the ``max(phi - 1, 0)`` overflow
integral), so the simulator and the analytic tuner agree by construction
on *why* parallel pipelines help and when they stop helping.

Completion times are recomputed lazily: whenever membership changes, the
remaining work of every active task is decayed by the elapsed time at the
old rates and a fresh completion event is scheduled for the new earliest
finisher.  Stale completion events are recognized by generation counters.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.sim.events import Event, Simulator

__all__ = ["SharedResource"]

_EPS = 1e-12


class _ActiveTask:
    # Plain __slots__ class (not a dataclass): tasks are compared by
    # identity in the scheduler hot path, and field-by-field __eq__ was
    # pure overhead there.
    __slots__ = ("work_left", "demand", "done", "rate")

    def __init__(self, work_left: float, demand: float, done: Event) -> None:
        self.work_left = work_left
        self.demand = demand
        self.done = done
        self.rate = 0.0


class SharedResource:
    """Capacity shared among concurrent tasks in proportion to demand."""

    def __init__(self, sim: Simulator, capacity: float, name: str = "resource") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.nominal_capacity = capacity
        self.name = name
        self._active: list[_ActiveTask] = []
        self._last_update = 0.0
        self._generation = 0
        self._frozen = False
        self._tick_name = f"{name}.tick"
        # Completion-event names, composed once per distinct task label:
        # callers reuse a handful of labels across thousands of submits.
        self._task_names: dict[str, str] = {}
        self._finish_eps = _EPS * (capacity if capacity > 1.0 else 1.0)
        self._tick_cb = self._on_tick_event
        # (time, total_granted_demand) steps for utilization traces.
        self.utilization_steps: list[tuple[float, float]] = [(0.0, 0.0)]
        self._observers: list[Callable[[float, float], None]] = []

    # ------------------------------------------------------------------ #

    def execute(self, work: float, demand: float, name: str = "task") -> Event:
        """Submit a task; the returned event fires when it completes."""
        if work < 0:
            raise ValueError(f"negative work {work}")
        if not 0 < demand <= 1.0:
            raise ValueError(f"demand must be in (0, 1], got {demand}")
        full_name = self._task_names.get(name)
        if full_name is None:
            full_name = f"{self.name}.{name}"
            self._task_names[name] = full_name
        done = Event(self.sim, name=full_name)
        if work == 0:
            self.sim.schedule(0.0, done)
            return done
        self._settle()
        self._active.append(_ActiveTask(work_left=work, demand=demand, done=done))
        self._reschedule()
        return done

    @property
    def current_demand(self) -> float:
        """Total granted demand right now (the utilization in [0, 1])."""
        total = sum(t.demand for t in self._active)
        return min(total, 1.0)

    def add_observer(self, fn: Callable[[float, float], None]) -> None:
        """``fn(time, utilization)`` on every utilization change."""
        self._observers.append(fn)

    # ------------------------------------------------------------------ #
    # fault hooks (repro.resilience): service-rate changes mid-flight

    @property
    def frozen(self) -> bool:
        return self._frozen

    def set_capacity(self, capacity: float) -> None:
        """Change the service rate; in-flight tasks stretch/shrink from now.

        Used by fault injection to model degraded links and straggling
        devices: remaining work is settled at the old rates first, so a
        capacity change is exact at any instant.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._settle()
        self.capacity = capacity
        self._finish_eps = _EPS * (capacity if capacity > 1.0 else 1.0)
        self._reschedule()

    def freeze(self) -> None:
        """Halt service entirely (a crashed device / severed link).

        Active tasks keep their remaining work but make no progress and
        schedule no completion events until :meth:`unfreeze`.
        """
        if self._frozen:
            return
        self._settle()
        self._frozen = True
        self._reschedule()

    def unfreeze(self) -> None:
        """Resume service after :meth:`freeze`; tasks pick up where frozen."""
        if not self._frozen:
            return
        self._settle()
        self._frozen = False
        self._reschedule()

    # ------------------------------------------------------------------ #

    def _settle(self) -> None:
        """Decay remaining work by time elapsed at the current rates."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for task in self._active:
                task.work_left -= task.rate * dt
        self._last_update = now

    def _reschedule(self) -> None:
        """Recompute rates, complete any finished tasks, arm next event."""
        # Fast path: exactly one live, unfinished task — the overwhelmingly
        # common shape on pipeline compute resources.  Same arithmetic as
        # the general path below (scale is 1.0 since demand <= 1, and
        # ``d * 1.0 * c`` is bitwise ``d * c``), so results are identical.
        active = self._active
        if len(active) == 1:
            task = active[0]
            if task.work_left > self._finish_eps:
                total_demand = task.demand
                if self._frozen:
                    task.rate = 0.0
                    util = 0.0
                else:
                    task.rate = task.demand * self.capacity
                    util = total_demand
                steps = self.utilization_steps
                if abs(util - steps[-1][1]) > 1e-12:
                    steps.append((self.sim.now, util))
                    for fn in self._observers:
                        fn(self.sim.now, util)
                self._generation += 1
                if self._frozen:
                    return
                sim = self.sim
                tick = Event(sim, name=self._tick_name)
                tick.value = self._generation
                tick.callbacks = [self._tick_cb]
                sim._seq += 1
                heapq.heappush(
                    sim._heap,
                    (sim.now + task.work_left / task.rate, sim._seq, tick),
                )
                return
        # Complete tasks whose work is (numerically) exhausted.  One pass,
        # identity-partitioned: each task has its own completion event, so
        # this is exactly the old two-listcomp membership split.
        threshold = self._finish_eps
        active = self._active
        kept: list[_ActiveTask] = []
        finished: list[_ActiveTask] = []
        for task in active:
            if task.work_left <= threshold:
                finished.append(task)
            else:
                kept.append(task)
        if finished:
            self._active = active = kept
            for task in finished:
                if not task.done.triggered:
                    task.done.succeed()

        total_demand = 0.0
        for task in active:
            total_demand += task.demand
        scale = 1.0 if total_demand <= 1.0 else 1.0 / total_demand
        if self._frozen:
            for task in active:
                task.rate = 0.0
        else:
            capacity = self.capacity
            for task in active:
                task.rate = task.demand * scale * capacity

        util = 0.0 if self._frozen else (total_demand if total_demand <= 1.0 else 1.0)
        if abs(util - self.utilization_steps[-1][1]) > 1e-12 or not active:
            self.utilization_steps.append((self.sim.now, util))
            for fn in self._observers:
                fn(self.sim.now, util)

        self._generation += 1
        if not active or self._frozen:
            return  # frozen: no completion event until unfreeze
        soonest = active[0].work_left / active[0].rate
        for task in active:
            left = task.work_left / task.rate
            if left < soonest:
                soonest = left
        # The tick carries its generation in ``value`` (the run loop fires
        # events with ``succeed(event.value)``, so it survives) — this
        # avoids a fresh closure per reschedule on the hottest path.
        sim = self.sim
        tick = Event(sim, name=self._tick_name)
        tick.value = self._generation
        tick.callbacks = [self._tick_cb]
        sim._seq += 1
        heapq.heappush(
            sim._heap,
            (sim.now + (soonest if soonest >= 0.0 else 0.0), sim._seq, tick),
        )

    def _on_tick_event(self, tick: Event) -> None:
        if tick.value != self._generation:
            return  # superseded by a later membership change
        self._settle()
        self._reschedule()

    # ------------------------------------------------------------------ #

    def busy_time(self, horizon: float | None = None) -> float:
        """Integral of time with utilization > 0 up to ``horizon``."""
        return self._integrate(lambda u: 1.0 if u > 0 else 0.0, horizon)

    def utilization_integral(self, horizon: float | None = None) -> float:
        """Integral of the utilization curve (compute volume / capacity)."""
        return self._integrate(lambda u: u, horizon)

    def _integrate(self, weight: Callable[[float], float], horizon: float | None) -> float:
        end = self.sim.now if horizon is None else horizon
        total = 0.0
        steps = self.utilization_steps
        for i, (t, u) in enumerate(steps):
            t_next = steps[i + 1][0] if i + 1 < len(steps) else end
            t_next = min(t_next, end)
            if t_next > t:
                total += (t_next - t) * weight(u)
        return total
