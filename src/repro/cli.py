"""Command-line interface.

    python -m repro plan gnmt                 # tune (M, N, advance) and simulate
    python -m repro baselines bert            # simulate the five baselines
    python -m repro train awd --epochs 10     # real elastic-averaging training
    python -m repro figure fig17              # regenerate one paper figure
    python -m repro timeline --schedule 1f1b  # render a schedule timeline
    python -m repro verify --quick            # oracle + sanitizer + fuzzer
    python -m repro tune sweep awd --store runs.jsonl  # learned-tuner run history
    python -m repro chaos --scenario smoke    # fault injection + recovery
    python -m repro sched --scenario smoke --policy fair  # multi-job elastic scheduler
    python -m repro report --out obs_out      # instrumented run + Chrome trace
    python -m repro bench --suite smoke       # hot-path benchmarks -> BENCH_<n>.json
    python -m repro calibrate gnmt            # simulator calibration matrix

Every command prints plain-text tables (no plotting dependencies) and is
deterministic for a given seed.
"""

from __future__ import annotations

import argparse
import sys

MIB = 2**20

# Sentinel for a bare `--compare` (no path): resolve to the newest
# BENCH_<n>.json at command time.
_LATEST_BASELINE = "<latest>"


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core import AvgPipe
    from repro.utils import format_table

    if getattr(args, "hetero", None):
        return _cmd_plan_hetero(args)
    system = AvgPipe(args.workload)
    plan = system.plan(
        memory_limit_bytes=args.memory_mib * MIB if args.memory_mib else None,
        n_candidates=list(range(1, args.max_pipelines + 1)),
    )
    result = system.simulate(plan, iterations=args.iterations, render_timeline=args.timeline)
    rows = [
        ["partition", str(plan.partition.boundaries)],
        ["micro-batches (M)", plan.num_micro],
        ["parallel pipelines (N)", plan.num_pipelines],
        ["advance forward depth", plan.advance],
        ["tuning cost (sim s)", round(plan.tuning_cost, 3)],
        ["time per batch (ms)", round(result.time_per_batch * 1e3, 2)],
        ["peak device memory (MiB)", round(max(result.peak_memory) / MIB, 1)],
        ["average GPU utilization", round(result.avg_utilization, 3)],
    ]
    print(format_table(["metric", "value"], rows, title=f"AvgPipe plan — {args.workload}"))
    if args.timeline:
        print()
        print(result.timeline)
    return 0


def _cmd_plan_hetero(args: argparse.Namespace) -> int:
    """Plan against a canned heterogeneous cluster variant.

    Runs the joint balanced-partition/placement search, then the paper's
    profiling tuner on the heterogeneous spec with per-device memory
    budgets, and reports the full plan.
    """
    from repro.core.profiler import Profiler
    from repro.core.simcfg import calibration_for
    from repro.core.tuner import ProfilingTuner
    from repro.schedules import AdvanceFPSchedule
    from repro.utils import format_table

    cal = calibration_for(args.workload)
    cspec = cal.cluster_spec(args.hetero)
    costs = cal.layer_costs()
    partition, placement = cal.hetero_plan(args.hetero, costs)
    profiler = Profiler(
        layer_costs=costs,
        partition=partition,
        schedule=AdvanceFPSchedule(2),
        cluster_spec=cspec,
        batch_size=cal.batch_size,
        activation_byte_scale=cal.activation_byte_scale,
        param_byte_scale=cal.param_byte_scale,
        stash_multiplier=cal.stash_multiplier,
        optimizer_state_factor=cal.optimizer_state_factor,
        with_reference_model=True,
        placement=placement,
    )
    budget = args.memory_mib * MIB if args.memory_mib else None
    limits = (
        [min(budget, cap) for cap in cspec.memory_vector()]
        if budget
        else list(cspec.memory_vector())
    )
    tuner = ProfilingTuner(profiler, limits)
    outcome = tuner.tune(n_candidates=list(range(1, args.max_pipelines + 1)))
    rows = [
        ["hetero variant", args.hetero],
        ["device speeds", str(cspec.speed_vector())],
        ["partition", str(partition.boundaries)],
        ["placement (stage -> device)", str(placement)],
        ["micro-batches (M)", outcome.m],
        ["parallel pipelines (N)", outcome.n],
        ["tuning cost (sim s)", round(outcome.tuning_cost, 3)],
        ["time per batch (ms)", round(outcome.measured_batch_time * 1e3, 2)],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"AvgPipe hetero plan — {args.workload} on {args.hetero}",
        )
    )
    return 0


def _cmd_baselines(args: argparse.Namespace) -> int:
    from repro.experiments import avgpipe_matched_to, run_all_baselines
    from repro.utils import format_table

    rows = []
    for run in run_all_baselines(args.workload, iterations=args.iterations):
        rows.append([
            run.display,
            run.num_micro if run.num_micro is not None else "-",
            "OOM" if run.oom else round(run.time_per_batch * 1e3, 1),
            "OOM" if run.oom else round(run.peak_memory / MIB, 1),
            "-" if run.oom else round(run.result.avg_utilization, 2),
        ])
    matched = avgpipe_matched_to(args.workload, args.match)
    note = f" (budget x{matched.budget_relaxation:.2f})" if matched.budget_relaxation > 1 else ""
    rows.append([
        f"{matched.variant} M={matched.num_micro} N={matched.num_pipelines}{note}",
        matched.num_micro,
        round(matched.time_per_batch * 1e3, 1),
        round(matched.peak_memory / MIB, 1),
        round(matched.result.avg_utilization, 2),
    ])
    print(
        format_table(
            ["system", "M", "ms/batch", "peak MiB", "avg util"],
            rows,
            title=f"Baselines vs AvgPipe — {args.workload}",
        )
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import AvgPipe

    system = AvgPipe(args.workload)
    plan = system.plan(n_candidates=list(range(1, args.max_pipelines + 1)))
    trainer = system.trainer(plan, seed=args.seed, max_epochs=args.epochs)
    print(
        f"Training {args.workload} with N={plan.num_pipelines} parallel pipelines "
        f"(target: {system.spec.metric_name} {'>=' if system.spec.metric_mode == 'max' else '<='} "
        f"{system.spec.target})"
    )
    result = trainer.train()
    for epoch, metric in enumerate(result.metric_history):
        print(f"  epoch {epoch + 1}: {system.spec.metric_name} = {metric:.3f}")
    status = "reached" if result.reached_target else "did not reach"
    print(f"{status} the target in {result.epochs_run} epochs")
    return 0 if result.reached_target else 1


def _cmd_figure(args: argparse.Namespace) -> int:
    import repro.experiments as exp

    registry = {
        "fig02": exp.run_fig02,
        "fig07": exp.run_fig07,
        "fig11": exp.run_fig11,
        "fig12": exp.run_fig12,
        "fig13": exp.run_fig13,
        "fig14": exp.run_fig14,
        "fig15": exp.run_fig15,
        "fig16": exp.run_fig16,
        "fig17": exp.run_fig17,
        "fig18": exp.run_fig18,
        "fig19": exp.run_fig19,
        "hetero": exp.run_hetero,
        "tune-learned": exp.run_tune_learned,
    }
    if args.name not in registry:
        print(f"unknown figure {args.name!r}; available: {', '.join(sorted(registry))}")
        return 2
    data = registry[args.name]()
    _print_figure(args.name, data)
    return 0


def _print_figure(name: str, data) -> None:
    """Best-effort plain rendering of a figure harness result."""
    from dataclasses import asdict, is_dataclass

    from repro.utils import format_table

    rows = data.get("rows") if isinstance(data, dict) else None
    if rows and is_dataclass(rows[0]):
        dicts = [asdict(r) for r in rows]
        headers = [k for k in dicts[0] if not isinstance(dicts[0][k], (tuple, list, str)) or k in ("workload", "system", "schedule", "method", "note", "variant", "strategy", "boundaries", "placement")]
        table = [[d.get(h, "") for h in headers] for d in dicts]
        print(format_table(headers, table, title=name))
    else:
        import pprint

        pprint.pprint(data)
    for key, value in (data.items() if isinstance(data, dict) else []):
        if key != "rows" and isinstance(value, (int, float)):
            print(f"{key}: {value:.3f}")


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.core.simcfg import calibration_for
    from repro.core.profiler import Profiler
    from repro.schedules import schedule_by_name

    cal = calibration_for(args.workload)
    profiler = Profiler(
        layer_costs=cal.layer_costs(),
        partition=cal.partition(),
        schedule=schedule_by_name(args.schedule, advance=args.advance),
        cluster_spec=cal.cluster_spec(),
        batch_size=cal.batch_size,
        activation_byte_scale=cal.activation_byte_scale,
        param_byte_scale=cal.param_byte_scale,
        stash_multiplier=cal.stash_multiplier,
        optimizer_state_factor=cal.optimizer_state_factor,
        activation_recompute=args.recompute,
    )
    result = profiler.run_setting(args.micro, args.pipelines, iterations=1, render_timeline=True)
    if result.oom is not None:
        print(f"OOM: {result.oom}")
        return 1
    print(result.timeline)
    print(f"\niteration time: {result.batch_time * 1e3:.1f} ms; "
          f"peak memory: {max(result.peak_memory) / MIB:.1f} MiB")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Run the verification subsystem: sanitizer, oracle, fuzzer."""
    from repro.verify import (
        VERIFIED_SCHEDULES,
        check_schedule,
        check_trace_causality,
        corrupt_schedule,
        fuzz_configs,
        inject_causality_violation,
        run_differential_sweep,
        run_fuzz,
    )
    from repro.verify.fuzz import build_runner

    failures = 0

    # ---- schedule sanitizer -------------------------------------------- #
    grid = [(2, 2), (2, 4), (3, 6), (4, 8)] if not args.quick else [(2, 4), (4, 8)]
    lint_checked = 0
    for name, factory in VERIFIED_SCHEDULES.items():
        schedule = factory()
        if args.inject in ("swapped-bwd", "dropped-bwd", "dup-fwd", "cross-deadlock"):
            schedule = corrupt_schedule(schedule, args.inject)
        for num_stages, num_micro in grid:
            violations = check_schedule(schedule, num_stages, num_micro)
            lint_checked += 1
            for v in violations:
                failures += 1
                print(f"SANITIZER {name} K={num_stages} M={num_micro}: {v}")
    print(f"sanitizer: {lint_checked} (schedule, K, M) combinations linted")

    # ---- differential oracle ------------------------------------------- #
    if args.quick:
        reports = run_differential_sweep(
            stages=(2, 3), micros=(2, 4), pipelines=(1, 2), seed=args.seed
        )
    else:
        reports = run_differential_sweep(seed=args.seed)
    worst = max(r.worst() for r in reports)
    for r in reports:
        if not r.ok(args.tol):
            failures += 1
            print(f"ORACLE diverged beyond {args.tol}: {r}")
    print(f"oracle: {len(reports)} differential checks, worst |delta| = {worst:.3g}")

    # ---- fuzzer + causality -------------------------------------------- #
    if args.fuzz > 0:
        results = run_fuzz(args.fuzz, seed=args.seed)
        spans = sum(r.spans_checked for r in results)
        ooms = sum(r.oomed for r in results)
        for r in results:
            for p in r.problems:
                failures += 1
                print(f"FUZZ {r.config.describe()}: {p}")
        print(f"fuzz: {len(results)} configs ({ooms} predicted OOM), {spans} trace spans checked")

    # ---- scheduler fuzzer (job-arrival axis) --------------------------- #
    sched_count = args.sched_fuzz if args.sched_fuzz is not None else (3 if args.quick else 9)
    if sched_count > 0:
        from repro.verify import run_sched_fuzz

        sresults = run_sched_fuzz(sched_count, seed=args.seed)
        done = sum(r.jobs_completed for r in sresults)
        rejected = sum(r.jobs_rejected for r in sresults)
        preempts = sum(r.preemptions for r in sresults)
        resizes = sum(r.resizes for r in sresults)
        for r in sresults:
            for p in r.problems:
                failures += 1
                print(f"SCHED-FUZZ {r.config.describe()}: {p}")
        print(f"sched-fuzz: {len(sresults)} clusters ({done} jobs completed, "
              f"{rejected} rejected, {preempts} preemptions, {resizes} resizes)")

    # ---- run-store fuzzer (learned-tuner history axis) ------------------ #
    tune_count = args.tune_fuzz if args.tune_fuzz is not None else (2 if args.quick else 5)
    if tune_count > 0:
        from repro.verify import run_tune_fuzz

        tresults = run_tune_fuzz(tune_count, seed=args.seed)
        loaded = sum(r.records_loaded for r in tresults)
        applied = sum(1 for r in tresults if r.residual_applied)
        for r in tresults:
            for p in r.problems:
                failures += 1
                print(f"TUNE-FUZZ {r.config.describe()}: {p}")
        print(f"tune-fuzz: {len(tresults)} stores ({loaded} records, "
              f"{applied} residual-ranked, {len(tresults) - applied} analytic fallback)")

    if args.inject == "causality":
        cfg = next(
            c for c in fuzz_configs(50, seed=args.seed)
            if c.memory_regime == "fits" and c.num_stages >= 2
        )
        runner, bundle = build_runner(cfg)
        runner.run(iterations=cfg.iterations)
        print("inject:", inject_causality_violation(runner.trace))
        streams = [
            bundle.schedule.stage_ops(k, bundle.num_stages, cfg.num_micro)
            for k in range(bundle.num_stages)
        ]
        problems = check_trace_causality(
            runner.trace, streams, cfg.num_micro, cfg.iterations, cfg.num_pipelines
        )
        for p in problems:
            failures += 1
            print(f"CAUSALITY {cfg.describe()}: {p}")

    if failures:
        print(f"verify: FAILED with {failures} violation(s)")
        return 1
    print("verify: all checks passed")
    return 0


def _tune_profiler(args: argparse.Namespace):
    """The profiler `repro tune` measures against: uniform or hetero."""
    from repro.core.profiler import Profiler
    from repro.core.simcfg import calibration_for
    from repro.schedules import AdvanceFPSchedule

    if args.hetero:
        from repro.experiments.fig18_19_tuning import variant_profiler

        return variant_profiler(args.workload, args.hetero)
    cal = calibration_for(args.workload)
    return Profiler(
        layer_costs=cal.layer_costs(),
        partition=cal.partition(),
        schedule=AdvanceFPSchedule(2),
        cluster_spec=cal.cluster_spec(),
        batch_size=cal.batch_size,
        activation_byte_scale=cal.activation_byte_scale,
        param_byte_scale=cal.param_byte_scale,
        stash_multiplier=cal.stash_multiplier,
        optimizer_state_factor=cal.optimizer_state_factor,
        with_reference_model=True,
    )


def _cmd_tune(args: argparse.Namespace) -> int:
    """Learned-tuner run store: record / predict / sweep subcommands."""
    from repro.core.simcfg import calibration_for
    from repro.tune import RunStore, StoreError
    from repro.utils import format_table

    profiler = _tune_profiler(args)
    cal = calibration_for(args.workload)
    budget = args.memory_mib * MIB if args.memory_mib else None
    if args.hetero:
        caps = profiler.cluster_spec.memory_vector()
        limits = [min(budget, c) for c in caps] if budget else list(caps)
    else:
        limits = budget if budget else float(cal.memory_capacity_bytes)
    try:
        store = RunStore(args.store) if args.store else None
    except StoreError as exc:
        print(f"tune: cannot load run store: {exc}")
        return 2
    where = f" on {args.hetero}" if args.hetero else ""

    if args.action == "record":
        from repro.tune import record_run

        record = record_run(
            profiler,
            args.micro,
            args.pipelines,
            store=store,
            workload=args.workload,
            iterations=args.iterations,
        )
        rows = [
            ["fingerprint", record.fingerprint],
            ["setting (M, N)", f"({record.m}, {record.n})"],
            ["predicted ms/batch", round(record.predicted_batch_time * 1e3, 3)],
            ["measured ms/batch",
             "OOM" if record.oom else round(record.measured_batch_time * 1e3, 3)],
            ["predicted peak MiB", round(record.predicted_peak_bytes / MIB, 1)],
            ["measured peak MiB",
             "OOM" if record.oom else round(record.measured_peak_bytes / MIB, 1)],
        ]
        print(format_table(["field", "value"],
                           rows, title=f"tune record — {args.workload}{where}"))
        if store is not None:
            print(f"appended to {store.path} ({len(store)} records)")
        else:
            print("not persisted — pass --store to keep the record")
        return 0

    if args.action == "predict":
        from repro.core.tuner import ProfilingTuner

        n_candidates = list(range(1, args.max_pipelines + 1))
        outcome = ProfilingTuner(
            profiler, limits, history=store, workload=args.workload
        ).tune(n_candidates=n_candidates)
        rows = [
            ["micro-batches (M)", outcome.m],
            ["parallel pipelines (N)", outcome.n],
            ["tuning cost (sim s)", round(outcome.tuning_cost, 3)],
            ["time per batch (ms)",
             round(outcome.measured_batch_time / max(outcome.n, 1) * 1e3, 2)],
            ["records consulted", outcome.records_consulted],
            ["residual applied", "yes" if outcome.residual_applied else "no"],
        ]
        if outcome.residual_applied and outcome.analytic_setting is not None:
            rows.append(["analytic would pick", str(outcome.analytic_setting)])
        print(format_table(["metric", "value"],
                           rows, title=f"tune predict — {args.workload}{where}"))
        if args.expect_identical:
            baseline = ProfilingTuner(profiler, limits).tune(
                n_candidates=n_candidates
            )
            same = (
                (outcome.m, outcome.n) == (baseline.m, baseline.n)
                and outcome.measured_batch_time == baseline.measured_batch_time
                and outcome.tuning_cost == baseline.tuning_cost
            )
            if not same:
                print("tune predict: DIVERGED from the analytic tuner "
                      f"((({outcome.m}, {outcome.n})) vs (({baseline.m}, {baseline.n}))) "
                      "although --expect-identical was set")
                return 1
            print("tune predict: identical to the analytic tuner (as expected)")
        return 0

    # action == "sweep": measure the whole grid, seed the store
    from repro.experiments.fig18_19_tuning import (
        LEARNED_M_CANDIDATES,
        LEARNED_N_CANDIDATES,
        oracle_sweep,
    )

    m_grid = tuple(args.micro) if args.micro else LEARNED_M_CANDIDATES
    n_grid = tuple(range(1, args.max_pipelines + 1)) if args.max_pipelines else LEARNED_N_CANDIDATES
    oracle, records = oracle_sweep(
        profiler,
        workload=args.workload,
        m_candidates=m_grid,
        n_candidates=n_grid,
        iterations=args.iterations,
    )
    best = min((v for v in oracle.values() if v != float("inf")), default=None)
    rows = []
    for (m, n), record in sorted(records.items()):
        measured = oracle[(m, n)]
        rows.append([
            m,
            n,
            round(record.predicted_batch_time * 1e3, 3),
            "OOM" if record.oom else round(measured * 1e3, 3),
            "-" if record.oom else round(measured / record.predicted_batch_time, 3),
            "*" if measured == best else "",
        ])
        if store is not None:
            store.append(record)
    print(format_table(
        ["M", "N", "predicted ms", "measured ms", "ratio", "best"],
        rows,
        title=f"tune sweep — {args.workload}{where}",
    ))
    if store is not None:
        print(f"appended {len(records)} records to {store.path} "
              f"({len(store)} total)")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run one seeded fault scenario end to end and print the report."""
    from repro.resilience import SCENARIOS, run_scenario

    if args.list:
        for name, scenario in sorted(SCENARIOS.items()):
            print(f"{name:12s} {scenario.description}")
        return 0
    report = run_scenario(args.scenario, seed=args.seed, recovery=not args.no_recovery)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, default=float))
    else:
        print(report.render())
    return 0 if report.recovered else 1


def _cmd_sched(args: argparse.Namespace) -> int:
    """Multi-job scheduler: run a canned scenario under one policy and
    compare against the static FIFO baseline."""
    from repro.sched import (
        SCHED_SCENARIOS,
        SchedVerdict,
        crosscheck_result,
        render_report,
        run_scenario,
    )

    if args.list:
        for name, scenario in sorted(SCHED_SCENARIOS.items()):
            devices = scenario.nodes * scenario.gpus_per_node
            print(f"{name:8s} {devices:2d} devices, {scenario.num_jobs:2d} jobs  "
                  f"{scenario.description}")
        return 0

    candidate = run_scenario(args.scenario, args.policy, seed=args.seed)
    if args.policy == "fifo" or args.no_baseline:
        baseline = candidate
    else:
        baseline = run_scenario(args.scenario, "fifo", seed=args.seed)
    crosschecks = []
    if not args.no_crosscheck:
        crosschecks = crosscheck_result(candidate, seed=args.seed)
    verdict = SchedVerdict(
        baseline=baseline, candidate=candidate, crosschecks=crosschecks
    )

    if args.json:
        import json

        print(json.dumps(verdict.to_dict(), indent=2, default=float))
    else:
        print(render_report(verdict))
    if args.out:
        import json
        import os

        os.makedirs(args.out, exist_ok=True)
        log_path = os.path.join(args.out, f"sched_{args.scenario}_{args.policy}.log")
        with open(log_path, "w") as fh:
            fh.write(candidate.log_text() + "\n")
        with open(os.path.join(args.out, "sched_verdict.json"), "w") as fh:
            json.dump(verdict.to_dict(), fh, indent=2, default=float)
        print(f"\nwrote {log_path}, sched_verdict.json")
    if baseline is candidate:
        # no comparison requested: succeed if the run itself was healthy
        return 0 if all(c.ok for c in crosschecks) else 1
    return 0 if verdict.passed else 1


def _cmd_report(args: argparse.Namespace) -> int:
    """Instrumented short run: metrics + Chrome trace + run report."""
    import os

    from repro.obs import build_run_report

    report, exporter = build_run_report(
        workload=args.workload,
        baseline=args.baseline,
        iterations=args.iterations,
        seed=args.seed,
        train_epochs=0 if args.no_train else args.train_epochs,
    )
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        trace_path = os.path.join(args.out, "trace.json")
        exporter.write(trace_path)
        with open(os.path.join(args.out, "run_report.json"), "w") as fh:
            fh.write(report.to_json())
        with open(os.path.join(args.out, "run_report.md"), "w") as fh:
            fh.write(report.to_markdown())
        print(f"wrote {trace_path} ({report.trace_events} events), "
              f"run_report.json, run_report.md")
        print()
    print(report.to_markdown())
    print(exporter.device_summary())
    if not report.eq1_match:
        print("report: Eq.-1 registry decomposition DIVERGES from the trace recorder")
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the hot-path benchmark suite; optionally compare a baseline."""
    import json

    from repro.obs.bench import (
        compare_payloads,
        latest_bench_path,
        render_compare,
        render_results,
        run_suite,
        select_suite,
        suite_names,
        to_payload,
        write_payload,
    )

    if args.compare is _LATEST_BASELINE:
        # Bare --compare: the newest baseline is the highest-numbered
        # BENCH_<n>.json (next_bench_path numbers past the max, so the
        # ordering survives deleted early files).
        resolved = latest_bench_path(".")
        if resolved is None:
            print("--compare: no BENCH_<n>.json baseline in the current directory")
            return 2
        print(f"--compare: using newest baseline {resolved}")
        args.compare = str(resolved)

    if args.list:
        for bench in select_suite("full"):
            smoke = "smoke" if bench.smoke else "full-only"
            print(f"{bench.name:24s} [{bench.group}, {smoke}] {bench.params}")
        print(f"suites: {', '.join(suite_names())}")
        return 0

    if args.input is not None:
        # File-vs-file mode: no re-measurement, so self-compare is exact.
        with open(args.input) as fh:
            payload = json.load(fh)
        if args.compare is None:
            print(f"{args.input}: {len(payload.get('benchmarks', []))} benchmarks "
                  f"(suite {payload.get('suite')!r}); nothing to do without --compare")
            return 2
        with open(args.compare) as fh:
            baseline = json.load(fh)
        report = compare_payloads(
            baseline, payload,
            threshold=args.threshold, time_threshold=args.time_threshold,
        )
        print(render_compare(report))
        return 0 if (report.ok or args.report_only) else 1

    try:
        benches = select_suite(args.suite)
    except KeyError as exc:
        print(exc.args[0])
        return 2

    registry = None
    if args.calibrate:
        from repro.core.calibrate import run_calibration
        from repro.core.simcfg import SIM_CALIBRATIONS, calibration_for
        from repro.obs import MetricRegistry

        registry = MetricRegistry()
        for name in sorted(SIM_CALIBRATIONS):
            run_calibration(calibration_for(name), registry=registry)
        print(f"calibrated {len(SIM_CALIBRATIONS)} workloads "
              f"({sum(1 for _ in registry.series(prefix='calibrate.'))} gauges "
              "recorded into the fingerprint)")

    results, registry, exporter = run_suite(
        benches,
        repeats=args.repeats,
        warmup=args.warmup,
        seed=args.seed,
        registry=registry,
        record_trace=args.trace is not None,
        progress=lambda r: print(
            f"  {r.name:24s} median {r.median * 1e3:9.3f} ms  "
            f"peak {r.alloc_peak_bytes / 1024:9.1f} KiB"
        ),
    )
    print()
    print(render_results(results, title=f"repro bench — suite '{args.suite}'"))
    payload = to_payload(
        results, args.suite, args.repeats, args.warmup, args.seed, registry
    )
    if not args.no_write:
        path = write_payload(payload, args.out)
        print(f"\nwrote {path} ({len(results)} benchmarks)")
    if args.trace is not None:
        exporter.write(args.trace)
        print(f"wrote {args.trace} (one span per timed repeat)")

    if args.compare is not None:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        report = compare_payloads(
            baseline, payload,
            threshold=args.threshold, time_threshold=args.time_threshold,
        )
        print()
        print(render_compare(report))
        if not report.ok and not args.report_only:
            return 1
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    """Print the calibration matrix; publish calibrate.* gauges."""
    from repro.core.calibrate import (
        calibration_with_overrides,
        render_calibration,
        run_calibration,
    )
    from repro.core.simcfg import SIM_CALIBRATIONS
    from repro.obs import MetricRegistry

    workloads = [args.workload] if args.workload else sorted(SIM_CALIBRATIONS)
    registry = MetricRegistry()
    for name in workloads:
        cal = calibration_with_overrides(
            name,
            activation_byte_scale=args.act_scale,
            param_byte_scale=args.param_scale,
            memory_capacity_mib=args.cap_mib,
        )
        rows = run_calibration(cal, registry=registry)
        print(render_calibration(cal, rows))
        print()
    if args.json:
        import json

        print(json.dumps(registry.snapshot(), indent=1, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("plan", help="tune and simulate AvgPipe on a workload")
    p.add_argument("workload", choices=["gnmt", "bert", "awd"])
    p.add_argument("--memory-mib", type=float, default=None, help="memory budget per device")
    p.add_argument("--max-pipelines", type=int, default=4)
    p.add_argument("--iterations", type=int, default=3)
    p.add_argument("--timeline", action="store_true", help="render the ASCII timeline")
    p.add_argument("--hetero", default=None, metavar="VARIANT",
                   choices=["mixed-gen", "straggler-node", "asym-links"],
                   help="plan against a canned heterogeneous cluster variant "
                        "(balanced partition + placement search)")
    p.set_defaults(fn=_cmd_plan)

    p = sub.add_parser("baselines", help="simulate the paper's five baselines")
    p.add_argument("workload", choices=["gnmt", "bert", "awd"])
    p.add_argument("--match", default="gpipe", choices=["pytorch", "gpipe", "pipedream", "pipedream-2bw", "dapple"],
                   help="which baseline AvgPipe's memory budget is matched to")
    p.add_argument("--iterations", type=int, default=3)
    p.set_defaults(fn=_cmd_baselines)

    p = sub.add_parser("train", help="real elastic-averaging training")
    p.add_argument("workload", choices=["gnmt", "bert", "awd"])
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-pipelines", type=int, default=3)
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("figure", help="regenerate one paper figure")
    p.add_argument("name", help="fig02, fig07, fig11..fig19, hetero, tune-learned")
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser("timeline", help="render a schedule timeline")
    p.add_argument("--workload", default="bert", choices=["gnmt", "bert", "awd"])
    p.add_argument("--schedule", default="advance_fp",
                   choices=["afab", "gpipe", "1f1b", "dapple", "2bw", "advance_fp", "pipedream"])
    p.add_argument("--advance", type=int, default=2)
    p.add_argument("--micro", type=int, default=8)
    p.add_argument("--pipelines", type=int, default=1)
    p.add_argument("--recompute", action="store_true",
                   help="enable activation recomputation (GPipe re-materialization)")
    p.set_defaults(fn=_cmd_timeline)

    p = sub.add_parser("verify", help="differential oracle + schedule sanitizer + sim fuzzer")
    p.add_argument("--fuzz", type=int, default=25, help="number of fuzzed simulator configs")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tol", type=float, default=1e-9,
                   help="max tolerated |delta| between pipeline and oracle")
    p.add_argument("--quick", action="store_true", help="reduced sweep for CI smoke runs")
    p.add_argument("--sched-fuzz", type=int, default=None, metavar="N",
                   help="number of fuzzed multi-job scheduler clusters "
                        "(default: 9, or 3 with --quick; 0 disables)")
    p.add_argument("--tune-fuzz", type=int, default=None, metavar="N",
                   help="number of fuzzed learned-tuner run stores "
                        "(default: 5, or 2 with --quick; 0 disables)")
    p.add_argument("--inject", default="none",
                   choices=["none", "swapped-bwd", "dropped-bwd", "dup-fwd",
                            "cross-deadlock", "causality"],
                   help="deliberately corrupt a schedule or trace; verify must then fail")
    p.set_defaults(fn=_cmd_verify)

    tune_shared = argparse.ArgumentParser(add_help=False)
    tune_shared.add_argument("workload", choices=["gnmt", "bert", "awd"])
    tune_shared.add_argument("--store", default=None, metavar="RUNS.jsonl",
                             help="run-history store (JSONL; created on first append)")
    tune_shared.add_argument("--hetero", default=None, metavar="VARIANT",
                             choices=["mixed-gen", "straggler-node", "asym-links"],
                             help="measure against a canned heterogeneous cluster")
    tune_shared.add_argument("--memory-mib", type=float, default=None,
                             help="memory budget per device")

    p = sub.add_parser("tune", help="learned tuner run store: record / predict / sweep")
    tsub = p.add_subparsers(dest="action", required=True)
    tp = tsub.add_parser("record", parents=[tune_shared],
                         help="run one (M, N) setting and append prediction vs "
                              "measurement to the store")
    tp.add_argument("--micro", type=int, required=True, metavar="M",
                    help="micro-batch count")
    tp.add_argument("--pipelines", type=int, default=1, metavar="N",
                    help="parallel pipelines")
    tp.add_argument("--iterations", type=int, default=3)
    tp.set_defaults(fn=_cmd_tune)
    tp = tsub.add_parser("predict", parents=[tune_shared],
                         help="pick (M, N) with the profiling tuner, consulting "
                              "the store's records when any match")
    tp.add_argument("--max-pipelines", type=int, default=4)
    tp.add_argument("--expect-identical", action="store_true",
                    help="also run the analytic tuner and exit non-zero if the "
                         "learned decision diverges (CI gate for empty stores)")
    tp.set_defaults(fn=_cmd_tune)
    tp = tsub.add_parser("sweep", parents=[tune_shared],
                         help="measure the whole (M, N) grid and seed the store")
    tp.add_argument("--micro", type=int, nargs="+", default=None, metavar="M",
                    help="micro-batch grid (default: 1 2 4 8)")
    tp.add_argument("--max-pipelines", type=int, default=None, metavar="N",
                    help="pipeline grid 1..N (default: 1 2)")
    tp.add_argument("--iterations", type=int, default=1)
    tp.set_defaults(fn=_cmd_tune)

    p = sub.add_parser("chaos", help="seeded fault injection + recovery scenarios")
    p.add_argument("--scenario", default="smoke",
                   choices=["smoke", "blackout", "straggler", "partition"],
                   help="named fault scenario (see --list)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-recovery", action="store_true",
                   help="disable recovery policies; a detected failure then "
                        "stays unrecovered and the exit code is non-zero")
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.add_argument("--list", action="store_true", help="list scenarios and exit")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("sched", help="multi-job elastic scheduler vs static FIFO")
    p.add_argument("--scenario", default="smoke",
                   choices=["smoke", "rush", "hetero"],
                   help="canned seeded arrival scenario (see --list)")
    p.add_argument("--policy", default="fair",
                   choices=["fifo", "priority", "fair"],
                   help="scheduling policy for the candidate run")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-baseline", action="store_true",
                   help="skip the static FIFO comparison run")
    p.add_argument("--no-crosscheck", action="store_true",
                   help="skip the real-trainer elastic-oracle numerics replay")
    p.add_argument("--json", action="store_true", help="emit the verdict as JSON")
    p.add_argument("--out", default=None,
                   help="directory for the event log + sched_verdict.json")
    p.add_argument("--list", action="store_true", help="list scenarios and exit")
    p.set_defaults(fn=_cmd_sched)

    p = sub.add_parser("report", help="instrumented run: metrics, Chrome trace, run report")
    p.add_argument("--workload", default="bert", choices=["gnmt", "bert", "awd"])
    p.add_argument("--baseline", default="gpipe",
                   choices=["gpipe", "pipedream", "pipedream-2bw", "dapple"],
                   help="which pipelined baseline to instrument (fig02 config)")
    p.add_argument("--iterations", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--train-epochs", type=int, default=1,
                   help="epochs for the real-numerics telemetry phase")
    p.add_argument("--no-train", action="store_true",
                   help="skip the numerics phase (simulation telemetry only)")
    p.add_argument("--out", default=None,
                   help="directory for trace.json / run_report.{json,md}")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("bench", help="hot-path benchmark suite -> BENCH_<n>.json")
    p.add_argument("--suite", default="full",
                   help="full, smoke, or a group name (see --list)")
    p.add_argument("--repeats", type=int, default=5, help="timed repeats per benchmark")
    p.add_argument("--warmup", type=int, default=1, help="untimed warmup runs")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None,
                   help="output file or directory (default: auto-numbered "
                        "BENCH_<n>.json in the current directory)")
    p.add_argument("--no-write", action="store_true",
                   help="measure and print without writing a BENCH file")
    p.add_argument("--compare", nargs="?", default=None, const=_LATEST_BASELINE,
                   metavar="BASELINE.json",
                   help="compare against a baseline BENCH file (bare --compare "
                        "uses the highest-numbered BENCH_<n>.json in the "
                        "current directory); exit 1 on regression")
    p.add_argument("--input", default=None, metavar="CURRENT.json",
                   help="compare an existing BENCH file instead of re-measuring "
                        "(file-vs-file; requires --compare)")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="relative regression threshold on median time / peak "
                        "allocation (default 0.25)")
    p.add_argument("--time-threshold", type=float, default=None,
                   help="override --threshold for the wall-time check only "
                        "(peak allocation is deterministic; wall time is not — "
                        "a cross-machine gate wants them split)")
    p.add_argument("--report-only", action="store_true",
                   help="print the comparison but never fail the exit code")
    p.add_argument("--trace", default=None, metavar="TRACE.json",
                   help="also export one Chrome-trace span per timed repeat")
    p.add_argument("--calibrate", action="store_true",
                   help="run the calibration matrix first and record its "
                        "calibrate.* gauges in the environment fingerprint")
    p.add_argument("--list", action="store_true",
                   help="list benchmarks and suites, then exit")
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("calibrate",
                       help="baseline/AvgPipe calibration matrix + calibrate.* gauges")
    p.add_argument("workload", nargs="?", default=None,
                   choices=["gnmt", "bert", "awd"],
                   help="one workload (default: all)")
    p.add_argument("--act-scale", type=float, default=None,
                   help="override activation_byte_scale")
    p.add_argument("--param-scale", type=float, default=None,
                   help="override param_byte_scale")
    p.add_argument("--cap-mib", type=float, default=None,
                   help="override per-device memory capacity (MiB)")
    p.add_argument("--json", action="store_true",
                   help="also dump the calibrate.* gauge snapshot as JSON")
    p.set_defaults(fn=_cmd_calibrate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
