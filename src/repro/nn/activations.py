"""Activation layers (module wrappers around the functional forms)."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor, gelu, relu, tanh

__all__ = ["ReLU", "GELU", "Tanh"]


class ReLU(Module):
    """Module wrapper around :func:`repro.tensor.relu`."""
    def forward(self, x: Tensor) -> Tensor:
        return relu(x)


class GELU(Module):
    """Module wrapper around :func:`repro.tensor.gelu`."""
    def forward(self, x: Tensor) -> Tensor:
        return gelu(x)


class Tanh(Module):
    """Module wrapper around :func:`repro.tensor.tanh`."""
    def forward(self, x: Tensor) -> Tensor:
        return tanh(x)
