"""Fully-connected layer."""

from __future__ import annotations

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor.functional import linear

__all__ = ["Linear"]


class Linear(Module):
    """``y = x @ W^T + b`` over the last input dimension."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), self._rng))
        if bias:
            self.bias = Parameter(init.uniform((out_features,), self._rng, 1.0 / in_features**0.5))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(f"Linear expected last dim {self.in_features}, got {x.shape}")
        if x.ndim >= 2:
            return linear(x, self.weight, self.bias)
        # 1-d input: fall back to the composed ops (vector matmul grads).
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"
