"""Neural-network layers over the autograd engine.

Mirrors the slice of ``torch.nn`` that the paper's three workloads (GNMT,
BERT, AWD-LSTM) require, plus the container/introspection machinery the
pipeline partitioner and elastic-averaging runtime rely on:

* ``Module.state_dict`` / ``load_state_dict`` — weight versioning
  (PipeDream stashing, PipeDream-2BW double buffering) and elastic
  averaging both operate on flat state dicts.
* ``Sequential`` exposes an ordered layer list the partitioner cuts into
  pipeline stages.
"""

from repro.nn.module import Module, Parameter
from repro.nn.container import Sequential, ModuleList
from repro.nn.linear import Linear
from repro.nn.embedding import Embedding
from repro.nn.normalization import LayerNorm
from repro.nn.dropout import Dropout, WeightDrop
from repro.nn.activations import ReLU, GELU, Tanh
from repro.nn.recurrent import LSTMCell, LSTM
from repro.nn.attention import MultiHeadAttention
from repro.nn.transformer import TransformerEncoderLayer, PositionalEncoding
from repro.nn.loss import CrossEntropyLoss, MSELoss

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "WeightDrop",
    "ReLU",
    "GELU",
    "Tanh",
    "LSTMCell",
    "LSTM",
    "MultiHeadAttention",
    "TransformerEncoderLayer",
    "PositionalEncoding",
    "CrossEntropyLoss",
    "MSELoss",
]
