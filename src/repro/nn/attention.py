"""Scaled-dot-product multi-head attention (BERT / GNMT-decoder kernel)."""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor import Tensor
from repro.tensor.functional import scaled_dot_attention

__all__ = ["MultiHeadAttention"]


class MultiHeadAttention(Module):
    """Multi-head attention over (B, T, D) inputs.

    ``forward(query, key, value, mask)`` with an optional additive mask of
    shape broadcastable to (B, heads, Tq, Tk); masked positions should be
    a large negative number (we use -1e9 internally for boolean masks).
    """

    def __init__(self, d_model: int, num_heads: int, attn_dropout: float = 0.0) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.attn_dropout = attn_dropout
        self.q_proj = Linear(d_model, d_model)
        self.k_proj = Linear(d_model, d_model)
        self.v_proj = Linear(d_model, d_model)
        self.out_proj = Linear(d_model, d_model)

    def _split_heads(self, x: Tensor) -> Tensor:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def forward(
        self,
        query: Tensor,
        key: Tensor | None = None,
        value: Tensor | None = None,
        mask: np.ndarray | None = None,
    ) -> Tensor:
        key = query if key is None else key
        value = key if value is None else value
        if query.ndim != 3:
            raise ValueError(f"attention expects (B, T, D), got {query.shape}")
        b, tq, _ = query.shape

        q = self._split_heads(self.q_proj(query))  # (B, H, Tq, dh)
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))

        bias = None
        if mask is not None:
            mask = np.asarray(mask)
            if mask.dtype == bool:
                bias = np.where(mask, 0.0, -1e9).astype(q.dtype)
            else:
                bias = mask.astype(q.dtype)
        ctx = scaled_dot_attention(
            q, k, v,
            scale=1.0 / np.sqrt(self.d_head),
            bias=bias,
            dropout_p=self.attn_dropout,
            rng=self._rng,
            training=self.training,
        )  # (B, H, Tq, dh)
        ctx = ctx.transpose(0, 2, 1, 3).reshape(b, tq, self.d_model)
        return self.out_proj(ctx)

    def __repr__(self) -> str:
        return f"MultiHeadAttention(d_model={self.d_model}, heads={self.num_heads})"
