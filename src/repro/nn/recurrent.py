"""LSTM layers (the GNMT and AWD-LSTM building block).

The cell computes the four gates in one fused matmul per input/hidden pair
— ``gates = x @ W_ih^T + h @ W_hh^T + b`` — which keeps arithmetic
intensity high per the HPC guides (one big GEMM instead of four small
ones).  The sequence loop is unavoidable; everything inside it is
vectorized over the batch.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, zeros
from repro.tensor.functional import lstm_cell

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """Single-step LSTM with fused gate projection."""

    def __init__(self, input_size: int, hidden_size: int) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("LSTMCell sizes must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        bound = 1.0 / np.sqrt(hidden_size)
        self.weight_ih = Parameter(init.uniform((4 * hidden_size, input_size), self._rng, bound))
        self.weight_hh = Parameter(init.uniform((4 * hidden_size, hidden_size), self._rng, bound))
        self.bias = Parameter(init.uniform((4 * hidden_size,), self._rng, bound))

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h, c = state
        if x.shape[-1] != self.input_size:
            raise ValueError(f"LSTMCell expected input dim {self.input_size}, got {x.shape}")
        return lstm_cell(
            x, h, c, self.weight_ih, self.weight_hh, self.bias, self.hidden_size
        )

    def init_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        return (zeros(batch_size, self.hidden_size), zeros(batch_size, self.hidden_size))

    def __repr__(self) -> str:
        return f"LSTMCell(in={self.input_size}, hidden={self.hidden_size})"


class LSTM(Module):
    """Unidirectional single-layer LSTM over (T, B, D) sequences."""

    def __init__(self, input_size: int, hidden_size: int) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = LSTMCell(input_size, hidden_size)

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Returns (outputs stacked over time, final (h, c))."""
        if x.ndim != 3:
            raise ValueError(f"LSTM expects (T, B, D) input, got shape {x.shape}")
        seq_len, batch, _ = x.shape
        if state is None:
            state = self.cell.init_state(batch)
        h, c = state
        cell = self.cell
        # Write each step's output straight into the preallocated stacked
        # buffer instead of stack()-ing T tensors at the end; the joining
        # node keeps stack's exact split backward, so outputs and grads are
        # bitwise identical to the composed form (tested).
        steps: list[Tensor] = []
        out_buf: np.ndarray | None = None
        for t in range(seq_len):
            h, c = cell(x[t], (h, c))
            if out_buf is None:
                out_buf = np.empty((seq_len, *h.shape), dtype=h.dtype)
            out_buf[t] = h.data
            steps.append(h)

        def backward(g: np.ndarray):
            pieces = np.split(g, seq_len, axis=0)
            return tuple(p.squeeze(axis=0) for p in pieces)

        outputs = Tensor._make(out_buf, tuple(steps), backward, "stack")
        return outputs, (h, c)

    def __repr__(self) -> str:
        return f"LSTM(in={self.input_size}, hidden={self.hidden_size})"
