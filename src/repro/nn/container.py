"""Module containers.

``Sequential`` is the canonical pipeline-parallel model form: the
partitioner (:mod:`repro.graph.partitioner`) cuts its ordered children
into contiguous stages, and the pipeline runtimes execute slices of it.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.nn.module import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Applies child modules in registration order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        for i, layer in enumerate(layers):
            if not isinstance(layer, Module):
                raise TypeError(f"Sequential child {i} is not a Module: {layer!r}")
            self.register_module(str(i), layer)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index):
        layers = list(self._modules.values())
        if isinstance(index, slice):
            return Sequential(*layers[index])
        return layers[index]

    def append(self, layer: Module) -> "Sequential":
        self.register_module(str(len(self._modules)), layer)
        return self

    def forward(self, x):
        for layer in self._modules.values():
            x = layer(x)
        return x


class ModuleList(Module):
    """A registered list of modules without a forward of its own."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        for i, module in enumerate(modules):
            self.register_module(str(i), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def append(self, module: Module) -> "ModuleList":
        self.register_module(str(len(self._modules)), module)
        return self

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList has no forward(); iterate over it instead")
