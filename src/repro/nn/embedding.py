"""Token embedding layer."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, embedding_lookup

__all__ = ["Embedding"]


class Embedding(Module):
    """Integer-index row lookup into a learned table."""

    def __init__(self, num_embeddings: int, embedding_dim: int, padding_idx: int | None = None) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding sizes must be positive")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        weight = init.normal((num_embeddings, embedding_dim), self._rng, std=0.1)
        if padding_idx is not None:
            weight[padding_idx] = 0.0
        self.weight = Parameter(weight)

    def forward(self, indices) -> Tensor:
        idx = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={idx.min()}, max={idx.max()}"
            )
        return embedding_lookup(self.weight, idx)

    def __repr__(self) -> str:
        return f"Embedding(num={self.num_embeddings}, dim={self.embedding_dim})"
