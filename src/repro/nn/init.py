"""Weight initializers (Xavier/Kaiming/uniform), all taking an explicit RNG."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "uniform", "normal", "zeros_"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform init: bound = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform init: bound = sqrt(3 / fan_in)."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(3.0 / fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, bound: float) -> np.ndarray:
    """Uniform init in [-bound, bound]."""
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Gaussian init with the given standard deviation."""
    return (rng.standard_normal(shape) * std).astype(np.float32)


def zeros_(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initializer."""
    return np.zeros(shape, dtype=np.float32)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out
