"""Dropout variants, including the DropConnect used by AWD-LSTM."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, dropout

__all__ = ["Dropout", "WeightDrop"]


class Dropout(Module):
    """Standard inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.p, self._rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class WeightDrop(Module):
    """DropConnect on the recurrent weights of a wrapped module.

    This is the "weight-dropped" part of AWD-LSTM [Merity et al. 2018]:
    before each forward in training mode, the named weight matrices are
    replaced by masked copies.  The mask is resampled per call.
    """

    def __init__(self, inner: Module, weight_names: list[str], p: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"weight-drop p must be in [0, 1), got {p}")
        self.inner = inner
        self.weight_names = list(weight_names)
        self.p = p
        params = dict(inner.named_parameters())
        for name in self.weight_names:
            if name not in params:
                raise KeyError(f"WeightDrop: {name!r} not found in inner module parameters")

    def forward(self, *args, **kwargs):
        if self.training and self.p > 0.0:
            params = dict(self.inner.named_parameters())
            originals: dict[str, np.ndarray] = {}
            keep = 1.0 - self.p
            for name in self.weight_names:
                param = params[name]
                originals[name] = param.data
                mask = (self._rng.random(param.shape) < keep).astype(param.dtype) / keep
                param.data = param.data * mask
            try:
                return self.inner(*args, **kwargs)
            finally:
                for name, data in originals.items():
                    params[name].data = data
        return self.inner(*args, **kwargs)

    def __repr__(self) -> str:
        return f"WeightDrop(p={self.p}, weights={self.weight_names})"
