"""Layer normalization."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, layer_norm

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """Normalizes over the last dimension with learned affine parameters."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        if normalized_shape <= 0:
            raise ValueError("normalized_shape must be positive")
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape, dtype=np.float32))
        self.bias = Parameter(np.zeros(normalized_shape, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.normalized_shape:
            raise ValueError(f"LayerNorm expected last dim {self.normalized_shape}, got {x.shape}")
        return layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape}, eps={self.eps})"
