"""Transformer encoder layer and sinusoidal positional encoding (BERT body)."""

from __future__ import annotations

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.normalization import LayerNorm
from repro.tensor import Tensor, gelu

__all__ = ["TransformerEncoderLayer", "PositionalEncoding"]


class TransformerEncoderLayer(Module):
    """Pre-norm transformer block: LN -> MHA -> +residual, LN -> MLP -> +residual.

    Pre-norm keeps gradients healthy at depth without LR warmup (post-norm
    stacks deeper than ~2 blocks plateau under plain Adam), which matters
    here because statistical-efficiency experiments compare epoch counts
    and must not be confounded by optimization pathologies.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int | None = None,
        dropout_p: float = 0.1,
    ) -> None:
        super().__init__()
        d_ff = d_ff if d_ff is not None else 4 * d_model
        self.attn = MultiHeadAttention(d_model, num_heads, attn_dropout=dropout_p)
        self.norm1 = LayerNorm(d_model)
        self.ff1 = Linear(d_model, d_ff)
        self.ff2 = Linear(d_ff, d_model)
        self.norm2 = LayerNorm(d_model)
        self.drop = Dropout(dropout_p)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        attn_out = self.attn(self.norm1(x), mask=mask)
        x = x + self.drop(attn_out)
        ff_out = self.ff2(gelu(self.ff1(self.norm2(x))))
        return x + self.drop(ff_out)


class PositionalEncoding(Module):
    """Adds fixed sinusoidal position embeddings to a (B, T, D) input."""

    def __init__(self, d_model: int, max_len: int = 512) -> None:
        super().__init__()
        position = np.arange(max_len)[:, None].astype(np.float64)
        div = np.exp(np.arange(0, d_model, 2) * (-np.log(10000.0) / d_model))
        table = np.zeros((max_len, d_model), dtype=np.float32)
        table[:, 0::2] = np.sin(position * div)
        table[:, 1::2] = np.cos(position * div[: d_model // 2])
        self.table = table  # constant buffer, not a Parameter
        self.max_len = max_len

    def forward(self, x: Tensor) -> Tensor:
        t = x.shape[-2]
        if t > self.max_len:
            raise ValueError(f"sequence length {t} exceeds positional table {self.max_len}")
        return x + Tensor(self.table[:t])
