"""Module/Parameter base classes.

The interesting parts relative to a toy implementation:

* ``state_dict`` / ``load_state_dict`` copy raw ndarrays, because the
  pipeline runtimes (PipeDream weight stashing, PipeDream-2BW double
  buffering, AvgPipe's reference model) snapshot and restore weights many
  times per batch and must never alias live parameters.
* Each module owns a ``repro`` RNG handle (seeded via
  :mod:`repro.utils.seeding`) so dropout masks are reproducible per
  pipeline replica — pipelines with different seeds must diverge, replicas
  of the same pipeline must not.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.tensor import Tensor
from repro.utils.seeding import derive_rng

__all__ = ["Module", "Parameter"]


class Parameter(Tensor):
    """A Tensor registered as a trainable weight of a Module."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(np.asarray(data), requires_grad=True)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, dtype={self.dtype})"


class Module:
    """Base class with parameter registration and traversal."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)
        object.__setattr__(self, "_rng", derive_rng(type(self).__name__))

    # ------------------------------------------------------------------ #
    # attribute plumbing

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # traversal

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (prefix + name, param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def parameter_bytes(self) -> int:
        return sum(p.data.nbytes for p in self.parameters())

    # ------------------------------------------------------------------ #
    # train / eval and gradient management

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def seed(self, seed: int) -> "Module":
        """Re-seed every submodule RNG; used to give pipeline replicas
        identical (or deliberately distinct) dropout streams."""
        for i, module in enumerate(self.modules()):
            object.__setattr__(module, "_rng", derive_rng(type(module).__name__, i, seed=seed))
        return self

    # ------------------------------------------------------------------ #
    # state dict

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Deep-copied mapping of parameter name -> ndarray."""
        return OrderedDict((name, p.data.copy()) for name, p in self.named_parameters())

    def load_state_dict(self, state: dict) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            param = params[name]
            value = np.asarray(value, dtype=param.dtype)
            if value.shape != param.shape:
                raise ValueError(f"{name}: shape {value.shape} != parameter {param.shape}")
            param.data = value.copy()

    # ------------------------------------------------------------------ #
    # call protocol

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [f"  ({n}): {m!r}" for n, m in self._modules.items()]
        body = "\n".join(child_lines)
        if body:
            return f"{type(self).__name__}(\n{body}\n)"
        return f"{type(self).__name__}()"
