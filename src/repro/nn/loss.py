"""Loss modules."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, cross_entropy

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss(Module):
    """Mean token-level cross entropy over (..., C) logits.

    ``ignore_index`` masks padding targets out of both the loss and the
    denominator, matching the GNMT/AWD training setups.
    """

    def __init__(self, ignore_index: int | None = None) -> None:
        super().__init__()
        self.ignore_index = ignore_index

    def forward(self, logits: Tensor, targets) -> Tensor:
        tgt = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
        return cross_entropy(logits, tgt.reshape(-1), ignore_index=self.ignore_index)


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        tgt = target if isinstance(target, Tensor) else Tensor(np.asarray(target, dtype=prediction.dtype))
        diff = prediction - tgt
        return (diff * diff).mean()
