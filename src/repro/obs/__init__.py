"""Observability layer: metrics registry, trace export, run reports.

Everything here is opt-in and read-only: no simulator or trainer path
allocates a single metric series unless a caller hands it an *enabled*
:class:`MetricRegistry`, and the instrumented code paths are bitwise
identical to the uninstrumented ones (the obs test suite pins both
properties).
"""

from repro.obs.bench import (
    Benchmark,
    BenchResult,
    bench_catalog,
    compare_payloads,
    run_benchmark,
    run_suite,
    select_suite,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.obs.report import (
    RunReport,
    build_run_report,
    sched_telemetry,
    tuner_telemetry,
)
from repro.obs.telemetry import (
    ClusterTelemetrySampler,
    TrainingTelemetry,
    publish_cluster,
)
from repro.obs.trace_export import TraceExporter

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS",
    "TraceExporter",
    "TrainingTelemetry",
    "ClusterTelemetrySampler",
    "publish_cluster",
    "RunReport",
    "build_run_report",
    "sched_telemetry",
    "tuner_telemetry",
    "Benchmark",
    "BenchResult",
    "bench_catalog",
    "compare_payloads",
    "run_benchmark",
    "run_suite",
    "select_suite",
]
