"""Metric registry: counters, gauges, histograms with labeled series.

The paper's claims are measured claims — Equation 1's T_gpu/T_com/T_bub
decomposition, utilization-over-time (Figures 2/16), memory footprints
(Figure 12) — so instrumentation is a first-class subsystem here, the
way PipeDream and DAPPLE treat profiling.  A :class:`MetricRegistry`
holds labeled series of three instrument kinds:

* :class:`Counter` — monotone accumulator (span seconds, iterations);
* :class:`Gauge` — last-value with high/low-water marks (memory peaks,
  divergence, device capacity telemetry);
* :class:`Histogram` — fixed-bucket distribution with an exact
  count/sum/min/max sidecar and p50/p95/p99 quantile estimates whose
  error is bounded by the width of the bucket containing the quantile.

Design constraints the tests pin down:

* **zero overhead when disabled** — a registry constructed with
  ``enabled=False`` (and the shared :data:`NULL_REGISTRY`) hands out
  no-op singleton instruments and records *nothing*: no series are
  created, no allocations grow with the run, and instrumented code paths
  perform no arithmetic on behalf of the registry;
* **order-faithful accumulation** — a counter is a plain running float
  sum in call order, so a counter fed the same additions as an existing
  aggregation (e.g. :meth:`TraceRecorder.time_decomposition`) matches it
  bitwise, not approximately;
* **mergeable histograms** — :meth:`Histogram.merge` is commutative and
  (up to float-addition rounding on ``sum``) associative, so per-device
  or per-worker histograms can be combined in any order.
"""

from __future__ import annotations

import math
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS",
]

#: Default histogram buckets for simulated-seconds durations: exponential
#: from 1 µs to ~100 s, the span of one kernel to one whole run.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = tuple(
    1e-6 * (4.0**i) for i in range(14)
)


class Counter:
    """Monotone accumulator; ``inc`` rejects negative amounts."""

    __slots__ = ("value", "updates")

    def __init__(self) -> None:
        self.value = 0.0
        self.updates = 0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount
        self.updates += 1

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value, "updates": self.updates}


class Gauge:
    """Last-value instrument with high/low-water marks."""

    __slots__ = ("value", "max_value", "min_value", "updates")

    def __init__(self) -> None:
        self.value = 0.0
        self.max_value = -math.inf
        self.min_value = math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.max_value = max(self.max_value, value)
        self.min_value = min(self.min_value, value)
        self.updates += 1

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def to_dict(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "max": self.max_value if self.updates else None,
            "min": self.min_value if self.updates else None,
            "updates": self.updates,
        }


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``bounds`` are strictly increasing bucket *upper* edges; an implicit
    overflow bucket catches values above the last edge.  Quantiles are
    estimated by locating the bucket containing the target rank and
    interpolating inside it, so for values that land in finite buckets
    the estimate is within one bucket width of the true empirical
    quantile (a property test pins this).
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.bucket_counts[self._bucket_of(value)] += 1

    def _bucket_of(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value
            mid = (lo + hi) // 2
            if self.bounds[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine two histograms over the same buckets (commutative;
        associative up to float rounding on ``sum``)."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        out = Histogram(self.bounds)
        out.bucket_counts = [a + b for a, b in zip(self.bucket_counts, other.bucket_counts)]
        out.count = self.count + other.count
        out.sum = self.sum + other.sum
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = max(1, math.ceil(q * self.count))  # inverted-CDF rank
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            cumulative += n
            if cumulative >= rank:
                # The first bucket reaching the rank is non-empty, and the
                # order statistic at that rank lies inside it.
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = self.bounds[i - 1] if i > 0 else min(self.min, hi)
                frac = (rank - (cumulative - n)) / n
                return lo + (hi - lo) * frac
        return self.max  # pragma: no cover - cumulative == count covers rank

    def summary(self) -> dict:
        """The fixed p50/p95/p99 summary the run report embeds."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean if self.count else None,
            "p50": self.quantile(0.50) if self.count else None,
            "p95": self.quantile(0.95) if self.count else None,
            "p99": self.quantile(0.99) if self.count else None,
        }

    def to_dict(self) -> dict:
        return {"type": "histogram", **self.summary()}


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL = _NullInstrument()

LabelKey = tuple[tuple[str, str], ...]


class MetricRegistry:
    """Labeled metric series, keyed by (name, sorted label items).

    Instruments are created on first touch and returned on every
    subsequent touch with the same (name, labels), so call sites can
    write ``registry.counter("x", device=3).inc(dt)`` in hot loops.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._series: dict[tuple[str, LabelKey], Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------ #
    # instrument accessors

    @staticmethod
    def _key(name: str, labels: dict) -> tuple[str, LabelKey]:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def counter(self, name: str, **labels) -> Counter | _NullInstrument:
        if not self.enabled:
            return _NULL
        key = self._key(name, labels)
        inst = self._series.get(key)
        if inst is None:
            inst = self._series[key] = Counter()
        elif not isinstance(inst, Counter):
            raise TypeError(f"{name}{labels} already registered as {type(inst).__name__}")
        return inst

    def gauge(self, name: str, **labels) -> Gauge | _NullInstrument:
        if not self.enabled:
            return _NULL
        key = self._key(name, labels)
        inst = self._series.get(key)
        if inst is None:
            inst = self._series[key] = Gauge()
        elif not isinstance(inst, Gauge):
            raise TypeError(f"{name}{labels} already registered as {type(inst).__name__}")
        return inst

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels
    ) -> Histogram | _NullInstrument:
        if not self.enabled:
            return _NULL
        key = self._key(name, labels)
        inst = self._series.get(key)
        if inst is None:
            inst = self._series[key] = Histogram(buckets or DEFAULT_TIME_BUCKETS)
        elif not isinstance(inst, Histogram):
            raise TypeError(f"{name}{labels} already registered as {type(inst).__name__}")
        return inst

    # ------------------------------------------------------------------ #
    # introspection

    def __len__(self) -> int:
        return len(self._series)

    def get(self, name: str, **labels):
        """The instrument at (name, labels), or None if never touched."""
        return self._series.get(self._key(name, labels))

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Counter/gauge value convenience; ``default`` if absent."""
        inst = self.get(name, **labels)
        return default if inst is None else inst.value

    def series(self, name: str | None = None, prefix: str | None = None) -> Iterator[
        tuple[str, dict[str, str], Counter | Gauge | Histogram]
    ]:
        """Iterate (name, labels, instrument), sorted for determinism."""
        for (series_name, label_key), inst in sorted(self._series.items()):
            if name is not None and series_name != name:
                continue
            if prefix is not None and not series_name.startswith(prefix):
                continue
            yield series_name, dict(label_key), inst

    def snapshot(self) -> dict:
        """JSON-ready dump of every series (the run report's ``metrics``)."""
        out: dict[str, list[dict]] = {}
        for series_name, labels, inst in self.series():
            out.setdefault(series_name, []).append({"labels": labels, **inst.to_dict()})
        return out


#: The shared disabled registry: safe to pass anywhere a registry is
#: accepted, records nothing, costs (almost) nothing.
NULL_REGISTRY = MetricRegistry(enabled=False)
