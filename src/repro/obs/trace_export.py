"""Chrome-trace / Perfetto export of :class:`TraceRecorder` spans.

Converts the simulator's span list (fwd/bwd/comm/bubble/sync and the
resilience fault/recovery annotation windows, each carrying its
pipeline/stage/micro identity) into the Trace Event Format that
``chrome://tracing`` and https://ui.perfetto.dev load directly:
complete ("X") events with microsecond ``ts``/``dur``, one ``pid`` per
simulated device and one ``tid`` lane per pipeline.  Also renders a
text flamegraph-style per-device summary for terminals.

The JSON emitter is byte-stable for a deterministic simulation: keys are
sorted, timestamps are rounded to nanosecond precision, and event order
is the recorder's span order — a golden-file test pins the output for
the Figure-7 worked example.
"""

from __future__ import annotations

import json

from repro.sim.trace import SpanKind, TraceRecorder

__all__ = ["TraceExporter"]

#: tid lane for spans with no pipeline identity (waits, sync, faults).
SHARED_LANE = 0

_KIND_ORDER = [k.value for k in SpanKind]


class TraceExporter:
    """Exports one recorded run; stateless beyond the recorder handle."""

    def __init__(self, trace: TraceRecorder, num_devices: int | None = None) -> None:
        self.trace = trace
        devices = {s.device for s in trace.spans}
        self.num_devices = (
            num_devices if num_devices is not None
            else (max(devices) + 1 if devices else 0)
        )

    # ------------------------------------------------------------------ #
    # Chrome trace JSON

    def to_chrome_trace(self) -> dict:
        """Trace Event Format dict (the ``traceEvents`` envelope)."""
        events: list[dict] = []
        for dev in range(self.num_devices):
            events.append({
                "args": {"name": f"GPU {dev}"},
                "name": "process_name",
                "ph": "M",
                "pid": dev,
                "tid": SHARED_LANE,
            })
        lanes = sorted({
            s.pipeline for s in self.trace.spans if s.pipeline is not None
        })
        for dev in range(self.num_devices):
            names = [(SHARED_LANE, "waits/sync")] + [
                (p + 1, f"pipeline {p}") for p in lanes
            ]
            for tid, name in names:
                events.append({
                    "args": {"name": name},
                    "name": "thread_name",
                    "ph": "M",
                    "pid": dev,
                    "tid": tid,
                })
        for span in self.trace.spans:
            tid = SHARED_LANE if span.pipeline is None else span.pipeline + 1
            args: dict = {}
            if span.pipeline is not None:
                args["pipeline"] = span.pipeline
            if span.stage is not None:
                args["stage"] = span.stage
            if span.micro is not None:
                args["micro"] = span.micro
            name = span.kind.value if not span.label else f"{span.kind.value} {span.label}"
            events.append({
                "args": args,
                "cat": span.kind.value,
                "dur": round((span.end - span.start) * 1e6, 3),
                "name": name,
                "ph": "X",
                "pid": span.device,
                "tid": tid,
                "ts": round(span.start * 1e6, 3),
            })
        return {
            "displayTimeUnit": "ms",
            "otherData": {
                "format": "repro.obs chrome trace",
                "num_devices": self.num_devices,
                "spans": len(self.trace.spans),
            },
            "traceEvents": events,
        }

    def to_json(self, indent: int | None = 1) -> str:
        """Byte-stable JSON rendering of :meth:`to_chrome_trace`."""
        return json.dumps(self.to_chrome_trace(), indent=indent, sort_keys=True)

    def write(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_json() + "\n")

    # ------------------------------------------------------------------ #
    # text flamegraph-style summary

    def device_summary(self, width: int = 40) -> str:
        """Per-device time-by-kind bars, widest contributor on top."""
        lines: list[str] = []
        for dev in range(self.num_devices):
            spans = [s for s in self.trace.spans if s.device == dev]
            by_kind: dict[str, tuple[float, int]] = {}
            for s in spans:
                total, n = by_kind.get(s.kind.value, (0.0, 0))
                by_kind[s.kind.value] = (total + (s.end - s.start), n + 1)
            busy = sum(t for t, _ in by_kind.values())
            lines.append(f"GPU {dev}  ({busy * 1e3:.2f} ms accounted, {len(spans)} spans)")
            ranked = sorted(
                by_kind.items(),
                key=lambda kv: (-kv[1][0], _KIND_ORDER.index(kv[0])),
            )
            for kind, (total, n) in ranked:
                frac = total / busy if busy > 0 else 0.0
                bar = "#" * max(1, round(frac * width))
                lines.append(
                    f"  {kind:<9s} {bar:<{width}s} {frac:6.1%}  "
                    f"{total * 1e3:9.3f} ms  n={n}"
                )
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"
