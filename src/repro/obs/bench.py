"""Hot-path benchmark harness (``repro bench``).

The paper's contribution is a *performance* argument (Equations 1-8
predict throughput, Figures 11-19 measure it), so the reproduction needs
to observe its own speed the same way it observes its numerics: with a
tracked, regression-gated trajectory.  This module provides

* :class:`Benchmark` / :func:`run_benchmark` — one deterministic, seeded
  measurement: ``warmup`` untimed runs, ``repeats`` timed runs
  (median/IQR over ``time.perf_counter``), plus one profiled run under
  :mod:`tracemalloc` recording peak allocated bytes, net retained bytes
  and the net allocated-block delta;
* :func:`bench_catalog` — the curated suite over the Tier-1-critical hot
  paths: an autograd forward+backward step on each registered model
  (gnmt/bert/awd), the :mod:`repro.sim.events` loop at large K·M·N,
  executor schedule generation for every schedule in
  ``repro.verify.VERIFIED_SCHEDULES``, one elastic averaging round,
  a checkpoint-v2 save/load round-trip, and Chrome-trace export;
* :func:`write_payload` — results land as ``BENCH_<n>.json`` at the repo
  root (auto-numbered) with an environment fingerprint
  (python/platform/git sha/package version/calibration constants);
* :func:`compare_payloads` — per-benchmark delta verdicts against a
  baseline file; a run *regresses* when its median wall time or peak
  allocation exceeds the baseline by more than ``threshold`` (25 %
  default), which is what gives ``repro bench --compare`` its non-zero
  exit code.

Every timed repeat is also mirrored into a ``bench.wall_seconds``
:class:`~repro.obs.registry.MetricRegistry` histogram and (optionally) a
:class:`~repro.sim.trace.TraceRecorder` span, so a bench run is
inspectable in Perfetto through the existing
:class:`~repro.obs.trace_export.TraceExporter` like any other run.

Instrumentation is observation-only: benchmark thunks run the exact same
code paths Tier-1 exercises, and a bitwise-identity test pins that the
harness changes nothing about what it measures.
"""

from __future__ import annotations

import json
import math
import os
import platform
import re
import statistics
import subprocess
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.obs.registry import MetricRegistry
from repro.utils.tables import format_table

__all__ = [
    "Benchmark",
    "BenchResult",
    "CompareReport",
    "CompareRow",
    "SCHEMA",
    "bench_catalog",
    "compare_payloads",
    "fingerprint",
    "latest_bench_path",
    "next_bench_path",
    "render_compare",
    "render_results",
    "run_benchmark",
    "run_suite",
    "select_suite",
    "suite_names",
    "to_payload",
    "write_payload",
]

#: schema tag embedded in every BENCH_<n>.json
SCHEMA = "repro.obs.bench/v1"

#: default regression threshold: 25 % on median wall time or peak bytes
DEFAULT_THRESHOLD = 0.25

#: exponential wall-clock buckets: 10 µs .. ~80 s (real seconds, not the
#: simulated-time span of DEFAULT_TIME_BUCKETS)
BENCH_TIME_BUCKETS: tuple[float, ...] = tuple(1e-5 * (2.0**i) for i in range(24))

_BENCH_FILE = re.compile(r"^BENCH_(\d+)\.json$")


# --------------------------------------------------------------------- #
# benchmark definition + single-benchmark runner


@dataclass(frozen=True)
class Benchmark:
    """One named measurement.

    ``setup(seed)`` builds all fixtures and returns the zero-argument
    thunk the runner times; everything expensive that is *not* the hot
    path under measurement belongs in setup.  ``smoke`` marks benchmarks
    cheap enough for the CI smoke suite.
    """

    name: str
    group: str
    setup: Callable[[int], Callable[[], object]]
    params: dict = field(default_factory=dict)
    smoke: bool = True


@dataclass
class BenchResult:
    """Timing + allocation measurements for one benchmark."""

    name: str
    group: str
    params: dict
    repeats: int
    warmup: int
    times: list[float]
    alloc_peak_bytes: int
    alloc_net_bytes: int
    alloc_net_blocks: int
    #: the profiled run's return value when it is a plain scalar — a
    #: bitwise determinism checksum for the benchmarked computation
    #: (loss value, simulated batch time, op count, export length, ...).
    check: float | int | bool | None = None

    @property
    def median(self) -> float:
        return statistics.median(self.times)

    @property
    def iqr(self) -> float:
        if len(self.times) < 2:
            return 0.0
        q = statistics.quantiles(self.times, n=4, method="inclusive")
        return q[2] - q[0]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "group": self.group,
            "params": self.params,
            "check": self.check,
            "timing": {
                "repeats": self.repeats,
                "warmup": self.warmup,
                "median_s": self.median,
                "iqr_s": self.iqr,
                "mean_s": statistics.fmean(self.times),
                "min_s": min(self.times),
                "max_s": max(self.times),
                "samples_s": list(self.times),
            },
            "alloc": {
                "peak_bytes": self.alloc_peak_bytes,
                "net_bytes": self.alloc_net_bytes,
                "net_blocks": self.alloc_net_blocks,
            },
        }


def _seed_everything(seed: int) -> None:
    from repro.utils.seeding import set_global_seed

    np.random.seed(seed)
    set_global_seed(seed)


def run_benchmark(
    bench: Benchmark,
    repeats: int = 5,
    warmup: int = 1,
    seed: int = 0,
    registry: MetricRegistry | None = None,
    trace=None,
    trace_origin: float | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> BenchResult:
    """Measure one benchmark: warmup, timed repeats, one profiled run.

    The allocation profile runs *after* the timed repeats (tracemalloc
    slows allocation several-fold, so mixing the two would poison the
    wall-clock numbers).  ``trace``/``trace_origin`` let a suite record
    each timed repeat as a span on a shared recorder.
    """
    if repeats < 1:
        raise ValueError(f"need at least one timed repeat, got {repeats}")
    _seed_everything(seed)
    thunk = bench.setup(seed)

    for _ in range(warmup):
        thunk()

    times: list[float] = []
    hist = None
    if registry is not None:
        hist = registry.histogram(
            "bench.wall_seconds", buckets=BENCH_TIME_BUCKETS, benchmark=bench.name
        )
    for i in range(repeats):
        t0 = clock()
        thunk()
        t1 = clock()
        times.append(t1 - t0)
        if hist is not None:
            hist.observe(t1 - t0)
        if trace is not None:
            from repro.sim.trace import SpanKind

            origin = trace_origin if trace_origin is not None else 0.0
            trace.record(
                0, t0 - origin, t1 - origin, SpanKind.SYNC,
                label=bench.name, micro=i,
            )

    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    tracemalloc.reset_peak()
    base, _ = tracemalloc.get_traced_memory()
    value = thunk()
    current, peak = tracemalloc.get_traced_memory()
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    net_blocks = sum(
        stat.count_diff for stat in after.compare_to(before, "filename")
    )
    result = BenchResult(
        name=bench.name,
        group=bench.group,
        params=dict(bench.params),
        repeats=repeats,
        warmup=warmup,
        times=times,
        alloc_peak_bytes=max(peak - base, 0),
        alloc_net_bytes=current - base,
        alloc_net_blocks=net_blocks,
        check=value if isinstance(value, (bool, int, float)) else None,
    )
    if registry is not None:
        registry.gauge("bench.alloc_peak_bytes", benchmark=bench.name).set(
            result.alloc_peak_bytes
        )
        registry.gauge("bench.alloc_net_bytes", benchmark=bench.name).set(
            result.alloc_net_bytes
        )
        registry.counter("bench.runs").inc()
    return result


# --------------------------------------------------------------------- #
# curated suite: the Tier-1-critical hot paths


def _model_step_bench(workload: str, batch_cap: int, smoke: bool) -> Benchmark:
    def setup(seed: int) -> Callable[[], object]:
        from repro.models.registry import build_workload

        spec = build_workload(workload)
        model = spec.build_model()
        loader = spec.make_train_loader(spec.batch_size, seed)
        batch = next(iter(loader))
        batch = {k: v[:batch_cap] for k, v in batch.items()}

        def step() -> float:
            model.zero_grad()
            loss = model.loss(batch)
            loss.backward()
            return float(loss.item())

        return step

    return Benchmark(
        name=f"model.step.{workload}",
        group="models",
        setup=setup,
        params={"workload": workload, "batch": batch_cap},
        smoke=smoke,
    )


def _sim_events_bench(num_stages: int, num_micro: int, num_pipelines: int) -> Benchmark:
    def setup(seed: int) -> Callable[[], object]:
        from repro.schedules import AdvanceFPSchedule, PipelineSimRunner, StageCosts
        from repro.sim import Simulator
        from repro.sim.cluster import ClusterSpec, make_cluster

        del seed  # fully deterministic: fixed costs, no RNG
        costs = StageCosts(
            fwd_flops=tuple(1e9 for _ in range(num_stages)),
            act_out_bytes=tuple(1e6 for _ in range(num_stages)),
            stash_bytes=tuple(6e6 for _ in range(num_stages)),
            param_bytes=tuple(int(4e6) for _ in range(num_stages)),
        )

        def run() -> float:
            sim = Simulator()
            cluster = make_cluster(
                sim,
                num_stages,
                spec=ClusterSpec(
                    nodes=num_stages, gpus_per_node=1, memory_bytes=1 << 50
                ),
            )
            runner = PipelineSimRunner(
                cluster,
                AdvanceFPSchedule(advance=2),
                costs,
                num_micro=num_micro,
                mb_size=4.0,
                num_pipelines=num_pipelines,
            )
            return runner.run(iterations=1).batch_time

        return run

    return Benchmark(
        name="sim.events.large",
        group="sim",
        setup=setup,
        params={"K": num_stages, "M": num_micro, "N": num_pipelines},
    )


#: (K, M) grid every schedule-generation benchmark walks
_SCHED_GRID: tuple[tuple[int, int], ...] = ((4, 16), (8, 32), (8, 64))
_SCHED_INNER_LOOPS = 10


def _sched_gen_bench(schedule_name: str) -> Benchmark:
    def setup(seed: int) -> Callable[[], object]:
        from repro.verify import VERIFIED_SCHEDULES

        del seed
        factory = VERIFIED_SCHEDULES[schedule_name]

        def gen() -> int:
            total = 0
            for _ in range(_SCHED_INNER_LOOPS):
                schedule = factory()
                for num_stages, num_micro in _SCHED_GRID:
                    for stage in range(num_stages):
                        total += len(schedule.stage_ops(stage, num_stages, num_micro))
                        schedule.stash_bound(stage, num_stages, num_micro)
            return total

        return gen

    return Benchmark(
        name=f"sched.gen.{schedule_name}",
        group="sched",
        setup=setup,
        params={
            "schedule": schedule_name,
            "grid": [list(g) for g in _SCHED_GRID],
            "loops": _SCHED_INNER_LOOPS,
        },
    )


def _elastic_round_bench(num_pipelines: int = 3) -> Benchmark:
    def setup(seed: int) -> Callable[[], object]:
        from repro.core.elastic import ElasticAveragingFramework
        from repro.models.registry import build_workload

        spec = build_workload("awd")
        models = [spec.build_model() for _ in range(num_pipelines)]
        framework = ElasticAveragingFramework(models, queue_delay=1)
        rng = np.random.default_rng(seed)
        nudges = [
            {name: rng.standard_normal(p.data.shape).astype(np.float32) * 1e-3
             for name, p in model.named_parameters()}
            for model in models
        ]

        def round_() -> bool:
            # One full §3.2 iteration: each pipeline takes a (synthetic)
            # optimizer step, dilutes toward the reference and posts its
            # delta; the reference process then drains and applies.
            for i in range(framework.num_parallel):
                before = framework.capture(i)
                for name, param in framework.models[i].named_parameters():
                    param.data = param.data + nudges[i][name]
                framework.commit(i, before)
            return framework.end_iteration()

        return round_

    return Benchmark(
        name="elastic.round",
        group="core",
        setup=setup,
        params={"workload": "awd", "N": num_pipelines},
    )


def _checkpoint_bench() -> Benchmark:
    def setup(seed: int) -> Callable[[], object]:
        import tempfile

        from repro.core.checkpoint import load_trainer, save_trainer
        from repro.core.trainer import AvgPipeTrainer
        from repro.resilience.chaos import tiny_chaos_spec

        spec = tiny_chaos_spec()
        source = AvgPipeTrainer(spec, seed=seed, num_pipelines=2, max_epochs=1)
        target = AvgPipeTrainer(spec, seed=seed + 1, num_pipelines=2, max_epochs=1)
        # The TemporaryDirectory lives in this closure; when the suite
        # drops the thunk the finalizer removes it.
        tmp = tempfile.TemporaryDirectory(prefix="repro_bench_ckpt_")
        path = os.path.join(tmp.name, "ckpt.npz")

        def roundtrip() -> str:
            save_trainer(source, path)
            load_trainer(target, path)
            assert tmp  # keep the directory alive as long as the thunk
            return path

        return roundtrip

    return Benchmark(
        name="checkpoint.roundtrip",
        group="core",
        setup=setup,
        params={"workload": "tiny-awd-chaos", "N": 2, "format": 2},
    )


def _trace_export_bench(num_stages: int = 4, num_micro: int = 16, num_pipelines: int = 2) -> Benchmark:
    def setup(seed: int) -> Callable[[], object]:
        from repro.obs.trace_export import TraceExporter
        from repro.schedules import AdvanceFPSchedule, PipelineSimRunner, StageCosts
        from repro.sim import Simulator
        from repro.sim.cluster import ClusterSpec, make_cluster

        del seed
        sim = Simulator()
        cluster = make_cluster(
            sim,
            num_stages,
            spec=ClusterSpec(nodes=num_stages, gpus_per_node=1, memory_bytes=1 << 50),
        )
        costs = StageCosts(
            fwd_flops=tuple(1e9 for _ in range(num_stages)),
            act_out_bytes=tuple(1e6 for _ in range(num_stages)),
            stash_bytes=tuple(6e6 for _ in range(num_stages)),
            param_bytes=tuple(int(4e6) for _ in range(num_stages)),
        )
        runner = PipelineSimRunner(
            cluster,
            AdvanceFPSchedule(advance=2),
            costs,
            num_micro=num_micro,
            mb_size=4.0,
            num_pipelines=num_pipelines,
        )
        result = runner.run(iterations=2)
        exporter = TraceExporter(result.trace, num_devices=num_stages)

        def export() -> int:
            return len(exporter.to_json())

        return export

    return Benchmark(
        name="trace.export",
        group="obs",
        setup=setup,
        params={"K": num_stages, "M": num_micro, "N": num_pipelines, "iterations": 2},
    )


def _tensor_op_bench(op: str) -> Benchmark:
    """Micro-benchmark of one fused autograd kernel: forward + backward,
    isolated from model plumbing (the CI regression gate for the fused
    ops runs this group non-report-only)."""

    def setup(seed: int) -> Callable[[], object]:
        from repro.tensor import Tensor
        from repro.tensor import functional as F

        rng = np.random.default_rng(seed)

        def randt(*shape: int) -> Tensor:
            return Tensor(
                rng.standard_normal(shape).astype(np.float32), requires_grad=True
            )

        if op == "lstm_cell":
            T_steps, B, D, H = 16, 32, 64, 64
            x = [randt(B, D) for _ in range(T_steps)]
            wih, whh, bias = randt(4 * H, D), randt(4 * H, H), randt(4 * H)
            h0 = Tensor(np.zeros((B, H), np.float32))
            c0 = Tensor(np.zeros((B, H), np.float32))

            def run() -> float:
                for p in (wih, whh, bias, *x):
                    p.grad = None
                h, c = h0, c0
                for t in range(T_steps):
                    h, c = F.lstm_cell(x[t], h, c, wih, whh, bias, H)
                loss = h.sum() + c.sum()
                loss.backward()
                return float(loss.item())

        elif op == "attention":
            B, Hh, T_seq, dh = 8, 4, 64, 32
            q, k, v = (randt(B, Hh, T_seq, dh) for _ in range(3))
            scale = 1.0 / float(np.sqrt(dh))

            def run() -> float:
                for p in (q, k, v):
                    p.grad = None
                out = F.scaled_dot_attention(q, k, v, scale=scale)
                loss = out.sum()
                loss.backward()
                return float(loss.item())

        elif op == "linear":
            B, D, O = 256, 512, 512
            x, w, b = randt(B, D), randt(O, D), randt(O)

            def run() -> float:
                for p in (x, w, b):
                    p.grad = None
                loss = F.linear(x, w, b).sum()
                loss.backward()
                return float(loss.item())

        else:  # pragma: no cover - catalog is static
            raise KeyError(f"unknown tensor op benchmark {op!r}")

        return run

    return Benchmark(
        name=f"tensor.{op}",
        group="tensor",
        setup=setup,
        params={"op": op},
    )


def bench_catalog() -> list[Benchmark]:
    """The curated hot-path suite, in run order."""
    from repro.verify import VERIFIED_SCHEDULES

    benches: list[Benchmark] = [
        # gnmt/bert steps are the two expensive ones — full-suite only.
        _model_step_bench("gnmt", batch_cap=32, smoke=False),
        _model_step_bench("bert", batch_cap=32, smoke=False),
        _model_step_bench("awd", batch_cap=40, smoke=True),
        _sim_events_bench(num_stages=8, num_micro=64, num_pipelines=4),
    ]
    benches.extend(_sched_gen_bench(name) for name in VERIFIED_SCHEDULES)
    benches.extend([
        _tensor_op_bench("lstm_cell"),
        _tensor_op_bench("attention"),
        _tensor_op_bench("linear"),
        _elastic_round_bench(),
        _checkpoint_bench(),
        _trace_export_bench(),
    ])
    return benches


def suite_names(catalog: Sequence[Benchmark] | None = None) -> list[str]:
    """Valid ``--suite`` values: full, smoke, and every group name."""
    catalog = bench_catalog() if catalog is None else catalog
    groups = sorted({b.group for b in catalog})
    return ["full", "smoke", *groups]


def select_suite(
    suite: str, catalog: Sequence[Benchmark] | None = None
) -> list[Benchmark]:
    """Subset of the catalog selected by a suite name."""
    catalog = bench_catalog() if catalog is None else catalog
    if suite == "full":
        return list(catalog)
    if suite == "smoke":
        return [b for b in catalog if b.smoke]
    chosen = [b for b in catalog if b.group == suite]
    if not chosen:
        raise KeyError(
            f"unknown suite {suite!r}; available: {', '.join(suite_names(catalog))}"
        )
    return chosen


# --------------------------------------------------------------------- #
# suite runner + payload


def run_suite(
    benches: Sequence[Benchmark],
    repeats: int = 5,
    warmup: int = 1,
    seed: int = 0,
    registry: MetricRegistry | None = None,
    record_trace: bool = False,
    progress: Callable[[BenchResult], None] | None = None,
):
    """Run ``benches`` in order; returns ``(results, registry, exporter)``.

    ``exporter`` is a :class:`TraceExporter` over one span per timed
    repeat (``None`` unless ``record_trace``), so a bench run can be
    opened in Perfetto next to any simulator trace.
    """
    registry = MetricRegistry() if registry is None else registry
    trace = None
    origin = time.perf_counter()
    if record_trace:
        from repro.sim.trace import TraceRecorder

        trace = TraceRecorder()
    results: list[BenchResult] = []
    for bench in benches:
        result = run_benchmark(
            bench,
            repeats=repeats,
            warmup=warmup,
            seed=seed,
            registry=registry,
            trace=trace,
            trace_origin=origin,
        )
        results.append(result)
        if progress is not None:
            progress(result)
    exporter = None
    if trace is not None:
        from repro.obs.trace_export import TraceExporter

        exporter = TraceExporter(trace, num_devices=1)
    return results, registry, exporter


def _git_sha() -> str | None:
    root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "-C", str(root), "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _package_version() -> str:
    try:
        import importlib.metadata

        return importlib.metadata.version("repro")
    except Exception:
        return "unknown"


def fingerprint(registry: MetricRegistry | None = None) -> dict:
    """Environment identity stamped into every BENCH_<n>.json.

    Includes the static simulator calibration constants, and — when a
    registry holding ``calibrate.*`` gauges is passed (``repro calibrate``
    publishes them) — the *measured* calibration numbers too, so a
    trajectory records what machine and what constants produced it.
    """
    from repro.core.simcfg import SIM_CALIBRATIONS

    MIB = 2**20
    fp = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "package_version": _package_version(),
        "git_sha": _git_sha(),
        "calibration": {
            name: {
                "batch_size": cal.batch_size,
                "activation_byte_scale": cal.activation_byte_scale,
                "param_byte_scale": cal.param_byte_scale,
                "memory_capacity_mib": cal.memory_capacity_bytes / MIB,
            }
            for name, cal in SIM_CALIBRATIONS.items()
        },
    }
    if registry is not None:
        gauges = {}
        for name, labels, inst in registry.series(prefix="calibrate."):
            key = name
            if labels:
                key += "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            # OOM settings measure as inf; keep the JSON strictly valid.
            gauges[key] = inst.value if math.isfinite(inst.value) else None
        if gauges:
            fp["calibration_gauges"] = gauges
    return fp


def to_payload(
    results: Sequence[BenchResult],
    suite: str,
    repeats: int,
    warmup: int,
    seed: int,
    registry: MetricRegistry | None = None,
) -> dict:
    """The BENCH_<n>.json document for one suite run."""
    return {
        "schema": SCHEMA,
        "suite": suite,
        "repeats": repeats,
        "warmup": warmup,
        "seed": seed,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "environment": fingerprint(registry),
        "benchmarks": [r.to_dict() for r in results],
    }


def next_bench_path(directory: str | Path = ".") -> Path:
    """``BENCH_<n>.json`` numbered one past the highest existing ``n``.

    Numbering after the max — not filling the first gap — keeps every new
    run sorting *after* all existing baselines even when an early file was
    deleted, so "highest n" always means "newest".  Both
    :func:`latest_bench_path` and the default ``--compare`` baseline rely
    on that ordering.
    """
    directory = Path(directory)
    taken = [
        int(m.group(1))
        for p in directory.glob("BENCH_*.json")
        if (m := _BENCH_FILE.match(p.name))
    ]
    return directory / f"BENCH_{max(taken, default=0) + 1}.json"


def latest_bench_path(directory: str | Path = ".") -> Path | None:
    """Highest-numbered ``BENCH_<n>.json`` under ``directory`` — the newest
    baseline under the numbering contract of :func:`next_bench_path` — or
    None when the directory holds no baselines at all."""
    directory = Path(directory)
    best: tuple[int, Path] | None = None
    for p in directory.glob("BENCH_*.json"):
        m = _BENCH_FILE.match(p.name)
        if m and (best is None or int(m.group(1)) > best[0]):
            best = (int(m.group(1)), p)
    return None if best is None else best[1]


def write_payload(payload: dict, out: str | Path | None = None) -> Path:
    """Write the payload; ``out`` may be a file, a directory, or None
    (auto-numbered in the current directory)."""
    if out is None:
        path = next_bench_path(".")
    else:
        out = Path(out)
        if out.suffix == ".json":
            path = out
            path.parent.mkdir(parents=True, exist_ok=True)
        else:
            out.mkdir(parents=True, exist_ok=True)
            path = next_bench_path(out)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


# --------------------------------------------------------------------- #
# comparison / regression verdicts


@dataclass
class CompareRow:
    """Delta verdict for one benchmark present in both runs."""

    name: str
    base_median: float
    new_median: float
    base_peak: int
    new_peak: int
    reasons: list[str] = field(default_factory=list)

    @property
    def time_ratio(self) -> float:
        return self.new_median / self.base_median if self.base_median > 0 else math.inf

    @property
    def alloc_ratio(self) -> float:
        if self.base_peak <= 0:
            return math.inf if self.new_peak > 0 else 1.0
        return self.new_peak / self.base_peak

    @property
    def regressed(self) -> bool:
        return bool(self.reasons)


@dataclass
class CompareReport:
    """Everything ``--compare`` decides and prints."""

    threshold: float
    rows: list[CompareRow]
    only_in_baseline: list[str]
    only_in_current: list[str]
    #: wall-time threshold when it differs from ``threshold`` (else None)
    time_threshold: float | None = None

    @property
    def regressions(self) -> list[CompareRow]:
        return [r for r in self.rows if r.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _index_benchmarks(payload: dict) -> dict[str, dict]:
    return {b["name"]: b for b in payload.get("benchmarks", [])}


def compare_payloads(
    baseline: dict,
    current: dict,
    threshold: float = DEFAULT_THRESHOLD,
    *,
    time_threshold: float | None = None,
) -> CompareReport:
    """Compare two BENCH payloads on the benchmarks they share.

    A benchmark regresses when its median wall time or its peak
    allocation exceeds the baseline's by more than ``threshold``
    (relative).  Benchmarks present in only one payload are reported but
    never count as regressions — a smoke run compared against a full
    baseline must not fail on coverage alone.

    ``time_threshold`` overrides ``threshold`` for the wall-time check
    only.  Peak allocation is deterministic (array sizes, not clocks),
    so a cross-machine gate can hold allocation tight while leaving
    wall time room for the hardware mismatch — e.g. CI's fused-op gate
    compares a runner's timings against a baseline recorded elsewhere.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    if time_threshold is None:
        time_threshold = threshold
    elif time_threshold < 0:
        raise ValueError(f"time_threshold must be >= 0, got {time_threshold}")
    base_idx = _index_benchmarks(baseline)
    cur_idx = _index_benchmarks(current)
    rows: list[CompareRow] = []
    for name, cur in cur_idx.items():
        base = base_idx.get(name)
        if base is None:
            continue
        row = CompareRow(
            name=name,
            base_median=base["timing"]["median_s"],
            new_median=cur["timing"]["median_s"],
            base_peak=base["alloc"]["peak_bytes"],
            new_peak=cur["alloc"]["peak_bytes"],
        )
        if row.new_median > row.base_median * (1.0 + time_threshold):
            row.reasons.append(
                f"median wall time {row.time_ratio:.2f}x baseline"
            )
        if row.new_peak > row.base_peak * (1.0 + threshold):
            row.reasons.append(
                f"peak allocation {row.alloc_ratio:.2f}x baseline"
            )
        rows.append(row)
    return CompareReport(
        threshold=threshold,
        rows=rows,
        only_in_baseline=sorted(set(base_idx) - set(cur_idx)),
        only_in_current=sorted(set(cur_idx) - set(base_idx)),
        time_threshold=None if time_threshold == threshold else time_threshold,
    )


def render_results(results: Sequence[BenchResult], title: str = "repro bench") -> str:
    """Plain-text table of one suite run."""
    rows = [
        [
            r.name,
            r.median * 1e3,
            r.iqr * 1e3,
            min(r.times) * 1e3,
            r.alloc_peak_bytes / 1024,
            r.alloc_net_bytes / 1024,
            r.alloc_net_blocks,
        ]
        for r in results
    ]
    return format_table(
        ["benchmark", "median ms", "iqr ms", "min ms", "peak KiB", "net KiB", "blocks"],
        rows,
        title=title,
    )


def render_compare(report: CompareReport) -> str:
    """Per-benchmark delta table plus coverage notes and the verdict."""
    rows = []
    for r in report.rows:
        rows.append([
            r.name,
            r.base_median * 1e3,
            r.new_median * 1e3,
            f"{(r.time_ratio - 1.0) * 100:+.1f}%",
            r.base_peak / 1024,
            r.new_peak / 1024,
            f"{(r.alloc_ratio - 1.0) * 100:+.1f}%" if math.isfinite(r.alloc_ratio) else "new",
            "REGRESSED" if r.regressed else "ok",
        ])
    lines = [
        format_table(
            ["benchmark", "base ms", "new ms", "Δ time", "base KiB", "new KiB", "Δ alloc", "verdict"],
            rows,
            title=(
                f"repro bench --compare (threshold {report.threshold:.0%}"
                + (
                    f", time {report.time_threshold:.0%}"
                    if report.time_threshold is not None
                    else ""
                )
                + ")"
            ),
        )
    ]
    if report.only_in_baseline:
        lines.append(
            f"not run here (baseline only): {', '.join(report.only_in_baseline)}"
        )
    if report.only_in_current:
        lines.append(f"new benchmarks (no baseline): {', '.join(report.only_in_current)}")
    n = len(report.regressions)
    lines.append(
        "compare: no regressions" if n == 0
        else f"compare: {n} benchmark(s) regressed beyond the {report.threshold:.0%} threshold"
    )
    return "\n".join(lines)
