"""Training and cluster telemetry publishers.

Two layers, matching the two clocks in the stack:

* :class:`TrainingTelemetry` — the numeric trainer's per-iteration
  telemetry: loss per pipeline, averaging divergence ‖x_i − x̃‖ and the
  elastic α-pull magnitude (published by
  :class:`~repro.core.elastic.ElasticAveragingFramework` itself), round
  counters and per-epoch evaluation metrics.  Every hook is read-only on
  trainer state, so instrumented and uninstrumented runs are bitwise
  identical — a negative-path test asserts this.

* :func:`publish_cluster` / :class:`ClusterTelemetrySampler` — simulator
  cluster state (device frozen/capacity/slowdown, memory high-water
  marks, link partitions) published into a registry as gauges.  The
  sampler is a simulator process polling on the sim clock, which gives
  :class:`~repro.resilience.detector.HeartbeatDetector` an optional path
  that reads telemetry from the registry instead of touching raw
  resources.
"""

from __future__ import annotations

from repro.obs.registry import MetricRegistry

__all__ = ["TrainingTelemetry", "publish_cluster", "ClusterTelemetrySampler"]

#: loss values live in a few nats; linear buckets resolve 0.05 steps.
LOSS_BUCKETS: tuple[float, ...] = tuple(0.05 * i for i in range(1, 241))


class TrainingTelemetry:
    """Registry-backed per-iteration trainer telemetry."""

    def __init__(self, registry: MetricRegistry) -> None:
        self.registry = registry

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    # ------------------------------------------------------------------ #
    # hooks the trainer calls (all read-only on trainer state)

    def record_loss(self, pipeline: int, loss: float | None) -> None:
        if loss is None:
            return
        self.registry.counter("train.batches", pipeline=pipeline).inc()
        self.registry.gauge("train.loss", pipeline=pipeline).set(loss)
        self.registry.histogram(
            "train.loss_hist", buckets=LOSS_BUCKETS, pipeline=pipeline
        ).observe(loss)

    def record_round(self, framework) -> None:
        """End-of-averaging-round telemetry: divergence, α, queue depth."""
        self.registry.counter("train.rounds").inc()
        self.registry.gauge("train.divergence").set(framework.divergence())
        self.registry.gauge("train.alpha").set(framework.alpha)
        self.registry.gauge("train.num_pipelines").set(framework.num_parallel)

    def record_eval(self, metric_name: str, value: float) -> None:
        self.registry.counter("train.evals").inc()
        self.registry.gauge("train.eval", metric=metric_name).set(value)

    def record_samples(self, n: int) -> None:
        self.registry.counter("train.samples").inc(n)


# --------------------------------------------------------------------- #
# simulator cluster telemetry


def publish_cluster(registry: MetricRegistry, cluster) -> None:
    """Publish one snapshot of device/link/memory state as gauges.

    Gauge catalog (all labeled; see docs/observability.md):

    * ``sim.device.frozen{device}`` — 1.0 while the compute resource is
      frozen (a crashed device), else 0.0;
    * ``sim.device.capacity{device}`` / ``sim.device.nominal_capacity`` —
      current vs nominal service rate (their ratio exposes stragglers);
    * ``sim.device.utilization{device}`` — instantaneous granted demand;
    * ``sim.mem.used_bytes{device}`` / ``sim.mem.peak_bytes{device}`` and
      per-tag ``sim.mem.tag_peak_bytes{device,tag}`` high-water marks;
    * ``sim.link.partitioned{src,dst}`` — 1.0 while severed.
    """
    if not registry.enabled:
        return
    for device in cluster.devices:
        device.publish_telemetry(registry)
    for (src, dst), link in sorted(cluster._links.items()):
        registry.gauge("sim.link.partitioned", src=src, dst=dst).set(
            1.0 if link.partitioned else 0.0
        )


class ClusterTelemetrySampler:
    """A sim process that republishes cluster telemetry every ``interval``.

    Mirrors the detector's polling discipline (same clock, bounded poll
    count) so a detector consuming the registry sees state at most one
    sampling interval stale — the realistic failure-detection setup,
    where the detector watches a metrics bus rather than the hardware.
    """

    def __init__(
        self,
        sim,
        cluster,
        registry: MetricRegistry,
        interval: float = 1.0,
        max_polls: int = 100_000,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.cluster = cluster
        self.registry = registry
        self.interval = interval
        self.max_polls = max_polls
        self._stopped = False
        self._process = None

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("sampler already started")
        publish_cluster(self.registry, self.cluster)  # t=0 baseline
        self._process = self.sim.process(self._run(), name="obs.sampler")

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        for _ in range(self.max_polls):
            yield self.sim.timeout(self.interval, name="obs.sample")
            if self._stopped:
                return
            publish_cluster(self.registry, self.cluster)
            self.registry.counter("obs.samples").inc()
