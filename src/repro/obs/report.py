"""Run reports: one short configured sim + numerics run, fully measured.

``repro report`` (and :func:`build_run_report` underneath) runs the
Figure-2 configuration — the workload's calibrated cluster under a
pipelined baseline schedule — with a :class:`MetricRegistry` attached,
plus a short real-numerics elastic-averaging run with training
telemetry, and emits:

* a Chrome-trace JSON of every recorded span (``trace.json``), loadable
  in ``chrome://tracing`` / Perfetto;
* a machine-readable run report (``run_report.json``) embedding the
  Equation-1 time decomposition **twice** — once from
  :meth:`TraceRecorder.time_decomposition`, once re-derived from the
  registry's ``trace.eq1_seconds`` counters — with a per-device exact
  (bitwise) match flag, the memory high-water marks, span quantiles and
  the full metric snapshot;
* a human-readable markdown rendering of the same (``run_report.md``).

The exact-match flag is the observability layer's own differential
oracle: if instrumentation ever drifts from the measurement path the
figures use, the report (and its test) fails loudly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.registry import MetricRegistry
from repro.obs.telemetry import TrainingTelemetry
from repro.obs.trace_export import TraceExporter

__all__ = [
    "RunReport",
    "build_run_report",
    "sched_telemetry",
    "tuner_telemetry",
    "EQ1_COMPONENTS",
]

MIB = 2**20
EQ1_COMPONENTS = ("gpu", "com", "bub", "sync")


@dataclass
class RunReport:
    """Everything ``repro report`` knows about one short run."""

    workload: str
    baseline: str
    iterations: int
    num_micro: int
    num_stages: int
    num_pipelines: int
    batch_time: float
    total_time: float
    samples_per_second: float
    avg_utilization: float
    #: per-device Eq.-1 totals from the TraceRecorder (seconds, raw).
    eq1_trace: list[dict] = field(default_factory=list)
    #: the same, re-derived from the registry counters.
    eq1_registry: list[dict] = field(default_factory=list)
    #: per-device bitwise agreement of the two derivations.
    eq1_exact_match: list[bool] = field(default_factory=list)
    peak_memory_bytes: list[int] = field(default_factory=list)
    weight_peak_bytes: list[float] = field(default_factory=list)
    activation_peak_bytes: list[float] = field(default_factory=list)
    span_summary: list[dict] = field(default_factory=list)
    numerics: dict = field(default_factory=dict)
    #: multi-job scheduler telemetry (``sched.*``), present when the
    #: attached registry saw a :mod:`repro.sched` run.
    sched: dict = field(default_factory=dict)
    #: learned-tuner telemetry (``tune.*``), present when the attached
    #: registry saw a :class:`repro.core.tuner.ProfilingTuner` run.
    tuner: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    trace_events: int = 0

    @property
    def eq1_match(self) -> bool:
        return all(self.eq1_exact_match)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "baseline": self.baseline,
            "iterations": self.iterations,
            "num_micro": self.num_micro,
            "num_stages": self.num_stages,
            "num_pipelines": self.num_pipelines,
            "batch_time_seconds": self.batch_time,
            "total_time_seconds": self.total_time,
            "samples_per_second": self.samples_per_second,
            "avg_utilization": self.avg_utilization,
            "eq1": {
                "trace": self.eq1_trace,
                "registry": self.eq1_registry,
                "exact_match": self.eq1_exact_match,
                "match": self.eq1_match,
            },
            "memory": {
                "peak_bytes": self.peak_memory_bytes,
                "weight_peak_bytes": self.weight_peak_bytes,
                "activation_peak_bytes": self.activation_peak_bytes,
            },
            "span_summary": self.span_summary,
            "numerics": self.numerics,
            "sched": self.sched,
            "tuner": self.tuner,
            "trace_events": self.trace_events,
            "metrics": self.metrics,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True, default=float)

    def to_markdown(self) -> str:
        lines = [
            f"# Run report — {self.workload} / {self.baseline}",
            "",
            f"- iterations: {self.iterations} (M={self.num_micro}, "
            f"K={self.num_stages}, N={self.num_pipelines})",
            f"- batch time: {self.batch_time * 1e3:.2f} ms; "
            f"throughput: {self.samples_per_second:.1f} samples/s (sim clock)",
            f"- average GPU utilization: {self.avg_utilization:.3f}",
            f"- trace events exported: {self.trace_events}",
            "",
            "## Equation-1 time decomposition (seconds, whole run)",
            "",
            "| device | T_gpu | T_com | T_bub | T_sync | registry match |",
            "|---|---|---|---|---|---|",
        ]
        for dev, d in enumerate(self.eq1_trace):
            ok = "exact" if self.eq1_exact_match[dev] else "MISMATCH"
            lines.append(
                f"| {dev} | {d['gpu']:.6f} | {d['com']:.6f} | {d['bub']:.6f} "
                f"| {d['sync']:.6f} | {ok} |"
            )
        lines += [
            "",
            "## Memory high-water marks (MiB)",
            "",
            "| device | peak | weights | activations |",
            "|---|---|---|---|",
        ]
        for dev, peak in enumerate(self.peak_memory_bytes):
            lines.append(
                f"| {dev} | {peak / MIB:.1f} | "
                f"{self.weight_peak_bytes[dev] / MIB:.1f} | "
                f"{self.activation_peak_bytes[dev] / MIB:.1f} |"
            )
        if self.span_summary:
            lines += [
                "",
                "## Span durations (ms)",
                "",
                "| device | kind | count | mean | p50 | p95 | p99 |",
                "|---|---|---|---|---|---|---|",
            ]
            for row in self.span_summary:
                # mean is the exact sum/count sidecar; the quantiles are
                # bucket estimates — showing both reveals skew at a glance.
                lines.append(
                    f"| {row['device']} | {row['kind']} | {row['count']} | "
                    f"{row['mean'] * 1e3:.3f} | "
                    f"{row['p50'] * 1e3:.3f} | {row['p95'] * 1e3:.3f} | "
                    f"{row['p99'] * 1e3:.3f} |"
                )
        if self.numerics:
            n = self.numerics
            lines += [
                "",
                "## Training telemetry (elastic averaging, real numerics)",
                "",
                f"- rounds: {n['rounds']:.0f}; final loss: {n['final_loss']:.4f}",
                f"- divergence ‖x_i − x̃‖ (RMS): {n['divergence']:.6f}",
                f"- α: {n['alpha']:.4f}; α-pull RMS mean/p50/p95: "
                f"{n.get('pull_rms_mean', float('nan')):.2e} / "
                f"{n['pull_rms_p50']:.2e} / {n['pull_rms_p95']:.2e}",
                f"- reference updates: {n['reference_updates']:.0f}; "
                f"update RMS mean/p50: "
                f"{n.get('update_rms_mean', float('nan')):.2e} / "
                f"{n['update_rms_p50']:.2e}",
            ]
        if self.sched:
            s = self.sched
            w = s["queue_wait"]
            lines += [
                "",
                "## Scheduler (multi-job elastic service)",
                "",
                f"- cluster utilization: {s['cluster_util']:.4f} over "
                f"{s['makespan']:.3f} s makespan "
                f"({s['busy_device_seconds']:.1f} busy device-seconds)",
                f"- jobs: {s['jobs_completed']:.0f} completed, "
                f"{s['jobs_rejected']:.0f} rejected, "
                f"{s['preemptions']:.0f} preemptions, "
                f"{s['grows']:.0f} grows, {s['shrinks']:.0f} shrinks",
                "",
                "| queue wait | p50 | p95 | p99 | jobs |",
                "|---|---|---|---|---|",
                f"| seconds | {w['p50']:.4f} | {w['p95']:.4f} "
                f"| {w['p99']:.4f} | {w['count']} |",
            ]
        if self.tuner:
            t = self.tuner
            applied = "yes" if t["residual_applied"] else "no"
            lines += [
                "",
                "## Tuner (learned run-history layer)",
                "",
                f"- records consulted: {t['records_consulted']:.0f}; "
                f"residual applied: {applied}",
                f"- predicted Eq.-1 batch time: "
                f"{t['predicted_batch_time'] * 1e3:.3f} ms; measured: "
                f"{t['measured_batch_time'] * 1e3:.3f} ms "
                f"(delta {t['delta_pct']:+.1f}%)",
            ]
        lines += [
            "",
            f"Verdict: Eq.-1 decomposition from the registry "
            f"{'matches the TraceRecorder exactly' if self.eq1_match else 'DIVERGES from the TraceRecorder'}.",
        ]
        return "\n".join(lines) + "\n"


def registry_decomposition(registry: MetricRegistry, device: int) -> dict[str, float]:
    """Eq.-1 totals for one device, re-derived from the registry."""
    return {
        component: registry.value("trace.eq1_seconds", device=device, component=component)
        for component in EQ1_COMPONENTS
    }


def build_run_report(
    workload: str = "bert",
    baseline: str = "gpipe",
    iterations: int = 2,
    num_micro: int | None = None,
    seed: int = 0,
    train_epochs: int = 1,
    registry: MetricRegistry | None = None,
) -> tuple[RunReport, TraceExporter]:
    """Run the Figure-2 configuration instrumented and build the report.

    ``train_epochs=0`` skips the numerics phase (sim only).  Returns the
    report and a :class:`TraceExporter` over the run's recorder.
    """
    from repro.baselines import (
        baseline_by_name,
        choose_baseline_micro,
        simulate_baseline,
    )
    from repro.core.simcfg import calibration_for

    registry = MetricRegistry() if registry is None else registry
    cal = calibration_for(workload)
    system = baseline_by_name(baseline)
    if system.schedule is None:
        raise ValueError("run reports need a pipelined baseline (no span stream in DP)")
    m = num_micro if num_micro is not None else choose_baseline_micro(system, cal)
    result = simulate_baseline(
        system, cal, num_micro=m, iterations=iterations,
        record_utilization=True, registry=registry,
    )
    if result.oom is not None:
        raise result.oom

    trace = result.trace
    eq1_trace, eq1_registry, exact = [], [], []
    for dev in range(result.num_stages):
        from_trace = trace.time_decomposition(dev)
        from_registry = registry_decomposition(registry, dev)
        eq1_trace.append(from_trace)
        eq1_registry.append(from_registry)
        exact.append(all(from_trace[c] == from_registry[c] for c in EQ1_COMPONENTS))

    span_summary = []
    for name, labels, hist in registry.series("trace.span_seconds"):
        s = hist.summary()
        span_summary.append({
            "device": int(labels["device"]),
            "kind": labels["kind"],
            "count": s["count"],
            "mean": s["mean"],
            "p50": s["p50"],
            "p95": s["p95"],
            "p99": s["p99"],
        })

    report = RunReport(
        workload=workload,
        baseline=baseline,
        iterations=iterations,
        num_micro=result.num_micro,
        num_stages=result.num_stages,
        num_pipelines=result.num_pipelines,
        batch_time=result.batch_time,
        total_time=result.total_time,
        samples_per_second=registry.value("sim.run.samples_per_second"),
        avg_utilization=result.avg_utilization,
        eq1_trace=eq1_trace,
        eq1_registry=eq1_registry,
        eq1_exact_match=exact,
        peak_memory_bytes=list(result.peak_memory),
        weight_peak_bytes=[
            registry.value("sim.mem.tag_peak_bytes", device=dev, tag="weights")
            for dev in range(result.num_stages)
        ],
        activation_peak_bytes=[
            registry.value("sim.mem.tag_peak_bytes", device=dev, tag="activations")
            for dev in range(result.num_stages)
        ],
        span_summary=span_summary,
        trace_events=len(trace.spans),
    )

    if train_epochs > 0:
        report.numerics = _numerics_telemetry(registry, seed, train_epochs)

    report.sched = sched_telemetry(registry)
    report.tuner = tuner_telemetry(registry)
    report.metrics = registry.snapshot()
    return report, TraceExporter(trace, num_devices=result.num_stages)


def sched_telemetry(registry: MetricRegistry) -> dict:
    """``sched.*`` telemetry for the report, or ``{}`` when the registry
    never saw a scheduler run (a caller shares one registry between
    :class:`repro.sched.ClusterScheduler` and :func:`build_run_report`,
    or stitches the section on afterwards)."""
    hist = registry.get("sched.queue_wait")
    if hist is None:
        return {}
    wait = hist.summary()
    return {
        "cluster_util": registry.value("sched.cluster_util"),
        "makespan": registry.value("sched.makespan"),
        "busy_device_seconds": registry.value("sched.busy_device_seconds"),
        "jobs_completed": registry.value("sched.jobs", event="completed"),
        "jobs_rejected": registry.value("sched.jobs", event="rejected"),
        "preemptions": registry.value("sched.jobs", event="preempted"),
        "grows": registry.value("sched.resize", direction="grow"),
        "shrinks": registry.value("sched.resize", direction="shrink"),
        "queue_wait": {
            "p50": wait["p50"],
            "p95": wait["p95"],
            "p99": wait["p99"],
            "count": wait["count"],
        },
    }


def tuner_telemetry(registry: MetricRegistry) -> dict:
    """``tune.*`` telemetry for the report, or ``{}`` when the registry
    never saw a :class:`~repro.core.tuner.ProfilingTuner` run (share one
    registry between ``tune(registry=...)`` and the report builder, or
    stitch the section on afterwards).  Surfaces the learned layer's
    audit trail: how many run-store records it consulted, whether the
    residual re-ranked the grid, and the predicted-vs-measured Eq.-1
    delta at the chosen setting."""
    if registry.get("tune.records_consulted") is None:
        return {}
    predicted = registry.value("tune.predicted_batch_time")
    measured = registry.value("tune.measured_batch_time")
    delta_pct = (
        (measured - predicted) / predicted * 100.0 if predicted else float("nan")
    )
    return {
        "records_consulted": registry.value("tune.records_consulted"),
        "residual_applied": bool(registry.value("tune.residual_applied")),
        "predicted_batch_time": predicted,
        "measured_batch_time": measured,
        "delta_pct": delta_pct,
    }


def _numerics_telemetry(registry: MetricRegistry, seed: int, epochs: int) -> dict:
    """Short real-numerics run with training telemetry attached."""
    from repro.core.trainer import AvgPipeTrainer
    from repro.resilience.chaos import tiny_chaos_spec

    spec = tiny_chaos_spec()
    trainer = AvgPipeTrainer(
        spec, seed=seed, num_pipelines=2, max_epochs=epochs,
        telemetry=TrainingTelemetry(registry),
    )
    result = trainer.train()
    pull = registry.get("elastic.pull_rms", model=0)
    update = registry.get("elastic.update_rms")
    return {
        "rounds": registry.value("train.rounds"),
        "final_loss": result.final_metric,
        "divergence": registry.value("train.divergence"),
        "alpha": registry.value("train.alpha"),
        "pull_rms_mean": pull.mean if pull is not None else float("nan"),
        "pull_rms_p50": pull.quantile(0.5) if pull is not None else float("nan"),
        "pull_rms_p95": pull.quantile(0.95) if pull is not None else float("nan"),
        "reference_updates": registry.value("elastic.reference_updates"),
        "update_rms_mean": update.mean if update is not None else float("nan"),
        "update_rms_p50": update.quantile(0.5) if update is not None else float("nan"),
        "samples": registry.value("train.samples"),
    }
