"""Adagrad [Duchi et al. 2011]."""

from __future__ import annotations

import numpy as np

from repro.optim.optimizer import Optimizer

__all__ = ["Adagrad"]


class Adagrad(Optimizer):
    """Adagrad: per-coordinate LR decayed by accumulated squared grads."""
    def __init__(self, params, lr: float = 1e-2, eps: float = 1e-10) -> None:
        super().__init__(params, lr)
        self.eps = eps

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            st = self._get_state(p)
            if "sum_sq" not in st:
                st["sum_sq"] = np.zeros_like(p.data, dtype=np.float32)
            acc: np.ndarray = st["sum_sq"]  # type: ignore[assignment]
            acc += grad * grad
            p.data = p.data - self.lr * grad / (np.sqrt(acc) + self.eps)
