"""Learning-rate schedulers."""

from __future__ import annotations

from repro.optim.optimizer import Optimizer

__all__ = ["ConstantLR", "StepLR", "WarmupLinearLR"]


class _Scheduler:
    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def step(self) -> None:
        self.step_count += 1
        self.optimizer.lr = self._lr_at(self.step_count)

    def _lr_at(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(_Scheduler):
    """No-op scheduler (keeps the base LR)."""
    def _lr_at(self, step: int) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class WarmupLinearLR(_Scheduler):
    """Linear warmup to base LR, then linear decay to zero (BERT recipe)."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int) -> None:
        super().__init__(optimizer)
        if not 0 <= warmup_steps < total_steps:
            raise ValueError(f"need 0 <= warmup ({warmup_steps}) < total ({total_steps})")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps

    def _lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * step / max(1, self.warmup_steps)
        remaining = max(0, self.total_steps - step)
        return self.base_lr * remaining / max(1, self.total_steps - self.warmup_steps)
