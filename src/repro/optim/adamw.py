"""AdamW [Loshchilov & Hutter] — decoupled weight decay.

Not used by the paper's recipes, but the framework's §3.1 claim is
optimizer independence; AdamW is the modern default for transformer
fine-tuning, so it is provided (and exercised against the elastic
framework in tests) as part of the optimizer surface a downstream user
expects.
"""

from __future__ import annotations

import numpy as np

from repro.optim.optimizer import Optimizer

__all__ = ["AdamW"]


class AdamW(Optimizer):
    """Adam with decoupled weight decay (applied to weights directly)."""
    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.betas = (b1, b2)
        self.eps = eps
        self.weight_decay = weight_decay

    def step(self) -> None:
        b1, b2 = self.betas
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad.astype(np.float32)
            st = self._get_state(p)
            if "m" not in st:
                st["m"] = np.zeros_like(p.data, dtype=np.float32)
                st["v"] = np.zeros_like(p.data, dtype=np.float32)
                st["t"] = 0
            st["t"] = int(st["t"]) + 1
            t = st["t"]
            m: np.ndarray = st["m"]  # type: ignore[assignment]
            v: np.ndarray = st["v"]  # type: ignore[assignment]
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / (1 - b1**t)
            v_hat = v / (1 - b2**t)
            # Decoupled decay: applied to the weights directly, not mixed
            # into the adaptive gradient statistics (the AdamW point).
            p.data = p.data * (1.0 - self.lr * self.weight_decay)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
