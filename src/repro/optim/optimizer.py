"""Optimizer base class.

Matches the slice of the ``torch.optim`` contract the runtimes need:
``step()`` applies in-place updates from accumulated ``.grad``s,
``zero_grad()`` clears them, and per-parameter state lives in
``self.state`` keyed by parameter identity.  ``state_dict`` deep-copies
state so pipeline runtimes can checkpoint optimizers alongside weights.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base optimizer: step()/zero_grad()/state_dict over Parameters."""
    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.state: dict[int, dict[str, np.ndarray | int | float]] = {}

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm."""
        sq = 0.0
        for p in self.params:
            if p.grad is not None:
                sq += float((p.grad.astype(np.float64) ** 2).sum())
        norm = float(np.sqrt(sq))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad = p.grad * scale
        return norm

    def state_dict(self) -> dict:
        out: dict = {"lr": self.lr, "state": {}}
        for i, p in enumerate(self.params):
            entry = self.state.get(id(p))
            if entry is not None:
                out["state"][i] = {
                    k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in entry.items()
                }
        return out

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self.state.clear()
        for i, entry in state["state"].items():
            p = self.params[int(i)]
            self.state[id(p)] = {
                k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in entry.items()
            }

    def _get_state(self, p: Parameter) -> dict:
        entry = self.state.get(id(p))
        if entry is None:
            entry = {}
            self.state[id(p)] = entry
        return entry
