"""Classic elastic-averaging SGD [Zhang, Choromanska & LeCun 2015].

This is the *coupled* optimizer the paper contrasts with its framework
(§3.1): the elastic term is baked into the SGD update, so it cannot be
combined with Adam/Adagrad/ASGD.  We keep it as a related-work baseline —
tests show AvgPipe's decoupled framework matches EASGD when the local
optimizer is plain SGD, while also working with Adam where EASGD cannot.

Update rule (synchronous EASGD, one worker step):
    x_i <- x_i - eta * g_i - eta * rho * (x_i - x_tilde)
    x_tilde <- x_tilde + eta * rho * sum_i (x_i - x_tilde)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Module
from repro.optim.optimizer import Optimizer

__all__ = ["EASGD"]


class EASGD:
    """Coordinates ``n`` worker models and a center model.

    Each worker performs local SGD; :meth:`sync` applies the elastic
    coupling.  ``rho`` is the elastic coefficient; the effective pull per
    sync is ``alpha = eta * rho``.
    """

    def __init__(
        self,
        workers: Sequence[Module],
        center: Module,
        lr: float,
        rho: float = 0.1,
    ) -> None:
        if not workers:
            raise ValueError("EASGD needs at least one worker model")
        if lr <= 0 or rho <= 0:
            raise ValueError("lr and rho must be positive")
        self.workers = list(workers)
        self.center = center
        self.lr = lr
        self.rho = rho
        self.alpha = lr * rho
        if self.alpha * len(self.workers) >= 1.0:
            raise ValueError(
                f"unstable elastic coefficient: n*eta*rho = {self.alpha * len(self.workers):.3g} >= 1"
            )
        self._names = [name for name, _ in center.named_parameters()]
        for w in self.workers:
            names = [name for name, _ in w.named_parameters()]
            if names != self._names:
                raise ValueError("worker/center parameter structure mismatch")

    def local_step(self, worker_index: int) -> None:
        """Plain SGD step on one worker from its accumulated grads."""
        worker = self.workers[worker_index]
        for p in worker.parameters():
            if p.grad is not None:
                p.data = p.data - self.lr * p.grad

    def sync(self) -> None:
        """Apply the elastic coupling between all workers and the center."""
        center_params = dict(self.center.named_parameters())
        diffs_sum = {name: np.zeros_like(p.data) for name, p in center_params.items()}
        for worker in self.workers:
            for name, p in worker.named_parameters():
                diff = p.data - center_params[name].data
                p.data = p.data - self.alpha * diff
                diffs_sum[name] += diff
        for name, p in center_params.items():
            p.data = p.data + self.alpha * diffs_sum[name]

    def zero_grad(self) -> None:
        for worker in self.workers:
            worker.zero_grad()
