"""Optimizers.

A key claim of the paper (§3.1) is that AvgPipe's elastic-averaging
*framework* decouples from the optimizer, unlike EASGD-style extended
optimizers.  We therefore provide the optimizers the workloads use (SGD,
Adam, Adagrad, ASGD) as independent classes behind one interface, plus the
classic coupled :class:`EASGD` optimizer as a related-work baseline that
the framework is compared against in tests.
"""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.adamw import AdamW
from repro.optim.adagrad import Adagrad
from repro.optim.asgd import ASGD
from repro.optim.easgd import EASGD
from repro.optim.lr_scheduler import ConstantLR, StepLR, WarmupLinearLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "Adagrad",
    "ASGD",
    "EASGD",
    "ConstantLR",
    "StepLR",
    "WarmupLinearLR",
]
