"""Adam [Kingma & Ba 2015] — the optimizer the paper trains GNMT/BERT with."""

from __future__ import annotations

import numpy as np

from repro.optim.optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias-corrected first/second moments."""
    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = (b1, b2)
        self.eps = eps
        self.weight_decay = weight_decay

    def step(self) -> None:
        b1, b2 = self.betas
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad.astype(np.float32)
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            st = self._get_state(p)
            if "m" not in st:
                st["m"] = np.zeros_like(p.data, dtype=np.float32)
                st["v"] = np.zeros_like(p.data, dtype=np.float32)
                st["t"] = 0
            st["t"] = int(st["t"]) + 1
            t = st["t"]
            m: np.ndarray = st["m"]  # type: ignore[assignment]
            v: np.ndarray = st["v"]  # type: ignore[assignment]
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / (1 - b1**t)
            v_hat = v / (1 - b2**t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
