"""SGD with optional momentum and weight decay."""

from __future__ import annotations

import numpy as np

from repro.optim.optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and decay."""
    def __init__(self, params, lr: float, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                st = self._get_state(p)
                buf = st.get("momentum")
                if buf is None:
                    buf = grad.astype(p.dtype).copy()
                else:
                    buf *= self.momentum
                    buf += grad
                st["momentum"] = buf
                grad = buf
            p.data = p.data - self.lr * grad
