"""Averaged SGD [Polyak & Juditsky 1992] — used by the AWD-LSTM workload.

Maintains a running tail average of the iterates from step ``t0`` onward;
``swap_averaged()`` / ``swap_back()`` exchange live weights with the
Polyak average for evaluation, mirroring how the AWD-LSTM recipe validates
on the averaged weights.
"""

from __future__ import annotations

import numpy as np

from repro.optim.optimizer import Optimizer

__all__ = ["ASGD"]


class ASGD(Optimizer):
    """SGD with a Polyak tail average, swappable in for evaluation."""
    def __init__(self, params, lr: float, t0: int = 0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        if t0 < 0:
            raise ValueError(f"t0 must be non-negative, got {t0}")
        self.t0 = t0
        self.weight_decay = weight_decay
        self._step_count = 0
        self._swapped = False

    def step(self) -> None:
        if self._swapped:
            raise RuntimeError("step() while averaged weights are swapped in")
        self._step_count += 1
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            p.data = p.data - self.lr * grad
            st = self._get_state(p)
            if self._step_count >= self.t0:
                if "ax" not in st:
                    st["ax"] = p.data.copy()
                    st["ax_count"] = 1
                else:
                    st["ax_count"] = int(st["ax_count"]) + 1
                    ax: np.ndarray = st["ax"]  # type: ignore[assignment]
                    ax += (p.data - ax) / st["ax_count"]

    def swap_averaged(self) -> None:
        """Swap the Polyak averages into the live parameters (for eval)."""
        if self._swapped:
            raise RuntimeError("averaged weights already swapped in")
        for p in self.params:
            st = self._get_state(p)
            if "ax" in st:
                live = p.data.copy()
                p.data = st["ax"].copy()  # type: ignore[union-attr]
                st["_live"] = live
        self._swapped = True

    def swap_back(self) -> None:
        """Restore live weights after :meth:`swap_averaged`."""
        if not self._swapped:
            raise RuntimeError("swap_back() without a prior swap_averaged()")
        for p in self.params:
            st = self._get_state(p)
            if "_live" in st:
                p.data = st.pop("_live")  # type: ignore[assignment]
        self._swapped = False
