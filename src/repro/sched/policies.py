"""Pluggable scheduling policies.

A policy reacts to scheduler events (arrival, completion) through
:meth:`SchedPolicy.on_event`, mutating cluster state only via the
scheduler's primitives (``admit`` / ``preempt`` / ``grow`` / ``shrink``)
so the occupancy and audit bookkeeping stays in one place.

* :class:`FifoPolicy` — the static baseline: strict head-of-line order,
  every job runs at its requested N from admission to completion, no
  preemption and no resizing.  Idle devices behind a blocked head are
  the cost this policy pays — the comparison the verdict table runs.
* :class:`PriorityPolicy` — priority order with preemption: when the
  highest-priority queued job cannot fit, lower-priority running jobs
  are checkpointed (format v2) and re-queued until it can; lower
  priorities backfill without preemption.
* :class:`FairSharePolicy` — weighted fair-share with elastic inter-job
  resizing: arrivals are admitted at whatever chain count currently
  fits (shrinking over-share tenants one chain at a time if nothing
  does), and departures are backfilled by growing the running job with
  the smallest device-per-weight allocation — the paper's
  ``resize``/``add_model`` levers driven as a capacity tool.
"""

from __future__ import annotations

from repro.sched.job import Job, JobState

__all__ = [
    "SchedPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "FairSharePolicy",
    "POLICIES",
    "make_policy",
]


class SchedPolicy:
    """Base policy: decides who runs at what N after every event."""

    name = "base"
    elastic = False
    preemptive = False

    def on_event(self, sched) -> None:
        raise NotImplementedError


class FifoPolicy(SchedPolicy):
    """Static FIFO: head-of-line admission at the requested N."""

    name = "fifo"

    def static_chains(self, sched, job: Job) -> int:
        """Requested N capped at what the whole cluster can ever hold —
        without the cap a wide request would deadlock the queue."""
        whole = sched.spec.num_devices // job.spec.num_stages
        return max(1, min(job.spec.pipelines, whole))

    @staticmethod
    def admit_static(sched, job: Job, n_target: int) -> bool:
        """Admit at ``n_target``, degrading toward 1 chain only when
        memory (not device count) blocks the full request — otherwise a
        job whose later chains land on small-capacity devices could
        stall the queue forever.  The grant stays fixed afterwards."""
        for n in range(n_target, 0, -1):
            if n * job.spec.num_stages > sched.free_count():
                return False  # wait for devices, don't narrow the request
            if sched.admit(job, n):
                return True
        return False

    def on_event(self, sched) -> None:
        while True:
            queue = sched.queued_jobs()
            if not queue:
                return
            head = queue[0]
            if not self.admit_static(sched, head, self.static_chains(sched, head)):
                return


class PriorityPolicy(SchedPolicy):
    """Priority-preemptive: high priority evicts low via checkpoints."""

    name = "priority"
    preemptive = True

    def _order(self, sched) -> list[Job]:
        return sorted(
            sched.queued_jobs(),
            key=lambda j: (-j.spec.priority, j.spec.submit_time, j.job_id),
        )

    def on_event(self, sched) -> None:
        progress = True
        while progress:
            progress = False
            queue = self._order(sched)
            for rank, job in enumerate(queue):
                n = FifoPolicy().static_chains(sched, job)
                if FifoPolicy.admit_static(sched, job, n):
                    progress = True
                    break
                if rank == 0 and self._preempt_for(sched, job, n):
                    if FifoPolicy.admit_static(sched, job, n):
                        progress = True
                        break
            # backfill: any queued job that fits without preemption was
            # already tried above; nothing more to do this round

    def _preempt_for(self, sched, job: Job, n_chains: int) -> bool:
        """Checkpoint lower-priority running jobs until ``job`` fits."""
        need = n_chains * job.spec.num_stages
        victims = sorted(
            (
                r
                for r in sched.running_jobs()
                if r.spec.priority < job.spec.priority
            ),
            # lowest priority first; among equals, latest-admitted first
            key=lambda r: (r.spec.priority, -(r.admitted_at or 0.0), r.job_id),
        )
        freed = sched.free_count()
        chosen = []
        for victim in victims:
            if freed >= need:
                break
            freed += len(victim.devices)
            chosen.append(victim)
        if freed < need or not chosen:
            return False
        for victim in chosen:
            sched.preempt(victim)
        return True


class FairSharePolicy(SchedPolicy):
    """Weighted fair-share with elastic grow/shrink."""

    name = "fair"
    elastic = True

    def on_event(self, sched) -> None:
        self._admit_pass(sched)
        self._grow_pass(sched)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _load(job: Job) -> float:
        """Devices held per unit weight — the fair-share comparison key."""
        return len(job.devices) / job.spec.weight

    def _admit_pass(self, sched) -> None:
        progress = True
        while progress:
            progress = False
            for job in sched.queued_jobs():
                stages = job.spec.num_stages
                fit = min(job.spec.pipelines, sched.free_count() // stages)
                if fit >= 1 and sched.admit(job, fit):
                    progress = True
                    break
                floor = max(1, job.spec.min_pipelines)
                if self._shrink_for(sched, job, need=floor * stages):
                    if sched.admit(job, floor):
                        progress = True
                        break

    def _shrink_for(self, sched, job: Job, need: int) -> bool:
        """Shrink over-share tenants one chain at a time to free ``need``
        devices for ``job``; True once the devices are free."""
        entry_load = need / job.spec.weight
        while sched.free_count() < need:
            victims = [
                r
                for r in sched.running_jobs()
                if r.num_pipelines > max(1, r.spec.min_pipelines)
                # only tenants holding more per weight than the entrant
                # would — fair-share never starves a small job to admit
                # a heavy one
                and self._load(r) > entry_load
            ]
            if not victims:
                return False
            victim = max(victims, key=lambda r: (self._load(r), r.job_id))
            if not sched.shrink(victim):
                return False
        return True

    def _grow_pass(self, sched) -> None:
        """Backfill free devices into running jobs, least-loaded first."""
        progress = True
        while progress:
            progress = False
            candidates = sorted(
                (
                    r
                    for r in sched.running_jobs()
                    if r.state == JobState.RUNNING
                    and r.num_pipelines < r.spec.max_pipelines
                    and r.spec.num_stages <= sched.free_count()
                ),
                key=lambda r: (self._load(r), r.job_id),
            )
            for job in candidates:
                if sched.grow(job):
                    progress = True
                    break


POLICIES: dict[str, type[SchedPolicy]] = {
    FifoPolicy.name: FifoPolicy,
    PriorityPolicy.name: PriorityPolicy,
    FairSharePolicy.name: FairSharePolicy,
}


def make_policy(policy) -> SchedPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, SchedPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise KeyError(
            f"unknown policy {policy!r}; available: {sorted(POLICIES)}"
        ) from None
