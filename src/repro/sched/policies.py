"""Pluggable scheduling policies.

A policy reacts to scheduler events (arrival, completion) through
:meth:`SchedPolicy.on_event`, mutating cluster state only via the
scheduler's primitives (``admit`` / ``preempt`` / ``grow`` / ``shrink``)
so the occupancy and audit bookkeeping stays in one place.

* :class:`FifoPolicy` — the static baseline: strict head-of-line order,
  every job runs at its requested N from admission to completion, no
  preemption and no resizing.  Idle devices behind a blocked head are
  the cost this policy pays — the comparison the verdict table runs.
* :class:`PriorityPolicy` — priority order with preemption: when the
  highest-priority queued job cannot fit, lower-priority running jobs
  are checkpointed (format v2) and re-queued until it can; lower
  priorities backfill without preemption.
* :class:`FairSharePolicy` — weighted fair-share with elastic inter-job
  resizing: arrivals are admitted at whatever chain count currently
  fits (shrinking over-share tenants one chain at a time if nothing
  does), and departures are backfilled by growing the running job with
  the smallest device-per-weight allocation — the paper's
  ``resize``/``add_model`` levers driven as a capacity tool.
"""

from __future__ import annotations

from repro.sched.job import Job, JobState

__all__ = [
    "SchedPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "FairSharePolicy",
    "POLICIES",
    "make_policy",
]


class SchedPolicy:
    """Base policy: decides who runs at what N after every event."""

    name = "base"
    elastic = False
    preemptive = False

    def on_event(self, sched) -> None:
        raise NotImplementedError


class FifoPolicy(SchedPolicy):
    """Static FIFO: head-of-line admission at the requested N."""

    name = "fifo"

    def static_chains(self, sched, job: Job) -> int:
        """Requested N capped at what the whole cluster can ever hold —
        without the cap a wide request would deadlock the queue."""
        whole = sched.spec.num_devices // job.spec.num_stages
        return max(1, min(job.spec.pipelines, whole))

    @staticmethod
    def floor_chains(sched, job: Job) -> int:
        """The job's elastic floor, capped at whole-cluster capacity (a
        floor no grant can ever satisfy would deadlock the queue)."""
        whole = sched.spec.num_devices // job.spec.num_stages
        return max(1, min(job.spec.min_pipelines, whole))

    @staticmethod
    def admit_static(sched, job: Job, n_target: int) -> bool:
        """Admit at ``n_target``, degrading toward the job's elastic
        floor only when memory (not device count) blocks the full
        request — otherwise a job whose later chains land on
        small-capacity devices could stall the queue forever.  The
        grant never goes below ``min_pipelines`` (the JobSpec contract)
        and stays fixed afterwards."""
        floor = FifoPolicy.floor_chains(sched, job)
        for n in range(n_target, floor - 1, -1):
            if n * job.spec.num_stages > sched.free_count():
                return False  # wait for devices, don't narrow the request
            if sched.admit(job, n):
                return True
        return False

    def on_event(self, sched) -> None:
        while True:
            queue = sched.queued_jobs()
            if not queue:
                return
            head = queue[0]
            if not self.admit_static(sched, head, self.static_chains(sched, head)):
                return


class PriorityPolicy(SchedPolicy):
    """Priority-preemptive: high priority evicts low via checkpoints."""

    name = "priority"
    preemptive = True

    def _order(self, sched) -> list[Job]:
        return sorted(
            sched.queued_jobs(),
            key=lambda j: (-j.spec.priority, j.spec.submit_time, j.job_id),
        )

    def on_event(self, sched) -> None:
        # Every productive round admits a job, and a preemption only
        # happens once a dry-run proves its head will admit, so the loop
        # terminates; the bound turns any future regression into a loud
        # SchedulerError instead of a silent livelock.
        max_rounds = 4 * len(sched.jobs) * len(sched.jobs) + 16
        for _ in range(max_rounds):
            progress = False
            queue = self._order(sched)
            for rank, job in enumerate(queue):
                n = FifoPolicy().static_chains(sched, job)
                if FifoPolicy.admit_static(sched, job, n):
                    progress = True
                    break
                if rank == 0 and self._preempt_for(sched, job, n):
                    if FifoPolicy.admit_static(sched, job, n):
                        progress = True
                        break
            # backfill: any queued job that fits without preemption was
            # already tried above; nothing more to do this round
            if not progress:
                return
        from repro.sched.scheduler import SchedulerError

        raise SchedulerError(
            f"priority policy made no admission progress after "
            f"{max_rounds} rounds (preempt/re-admit cycle?)"
        )

    def _preempt_for(self, sched, job: Job, n_chains: int) -> bool:
        """Checkpoint lower-priority running jobs until ``job`` fits.

        A victim set is committed only once :meth:`ClusterScheduler.would_fit`
        proves the job plans cleanly on the free devices plus the
        victims' — counting freed devices alone would evict jobs whose
        (small) devices still cannot memory-host the entrant, endlessly
        re-queueing and re-admitting the victims."""
        floor = FifoPolicy.floor_chains(sched, job)
        need = n_chains * job.spec.num_stages
        victims = sorted(
            (
                r
                for r in sched.running_jobs()
                if r.spec.priority < job.spec.priority
            ),
            # lowest priority first; among equals, latest-admitted first
            key=lambda r: (r.spec.priority, -(r.admitted_at or 0.0), r.job_id),
        )
        chosen: list[Job] = []
        pool = sched.free_count()
        for victim in victims:
            chosen.append(victim)
            pool += len(victim.devices)
            if pool < need:
                continue  # admit_static would wait for devices, not narrow
            # admit_static degrades from n_chains to the floor, so the
            # eviction is guaranteed to pay off as soon as any count in
            # that range plans cleanly on the would-be free devices
            if any(
                sched.would_fit(job, n, chosen)
                for n in range(n_chains, floor - 1, -1)
            ):
                for v in chosen:
                    sched.preempt(v)
                return True
        return False


class FairSharePolicy(SchedPolicy):
    """Weighted fair-share with elastic grow/shrink."""

    name = "fair"
    elastic = True

    def on_event(self, sched) -> None:
        self._admit_pass(sched)
        self._grow_pass(sched)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _load(job: Job) -> float:
        """Devices held per unit weight — the fair-share comparison key."""
        return len(job.devices) / job.spec.weight

    def _admit_pass(self, sched) -> None:
        progress = True
        while progress:
            progress = False
            for job in sched.queued_jobs():
                stages = job.spec.num_stages
                floor = FifoPolicy.floor_chains(sched, job)
                fit = min(job.spec.pipelines, sched.free_count() // stages)
                # never below the job's elastic floor (JobSpec contract)
                if fit >= floor and sched.admit(job, fit):
                    progress = True
                    break
                if self._shrink_for(sched, job, need=floor * stages):
                    if sched.admit(job, floor):
                        progress = True
                        break

    def _shrink_for(self, sched, job: Job, need: int) -> bool:
        """Shrink over-share tenants one chain at a time to free ``need``
        devices for ``job``; True once the devices are free."""
        entry_load = need / job.spec.weight
        while sched.free_count() < need:
            victims = [
                r
                for r in sched.running_jobs()
                if r.num_pipelines > max(1, r.spec.min_pipelines)
                # only tenants holding more per weight than the entrant
                # would — fair-share never starves a small job to admit
                # a heavy one
                and self._load(r) > entry_load
            ]
            if not victims:
                return False
            victim = max(victims, key=lambda r: (self._load(r), r.job_id))
            if not sched.shrink(victim):
                return False
        return True

    def _grow_pass(self, sched) -> None:
        """Backfill free devices into running jobs, least-loaded first."""
        progress = True
        while progress:
            progress = False
            candidates = sorted(
                (
                    r
                    for r in sched.running_jobs()
                    if r.state == JobState.RUNNING
                    and r.num_pipelines < r.spec.max_pipelines
                    and r.spec.num_stages <= sched.free_count()
                ),
                key=lambda r: (self._load(r), r.job_id),
            )
            for job in candidates:
                if sched.grow(job):
                    progress = True
                    break


POLICIES: dict[str, type[SchedPolicy]] = {
    FifoPolicy.name: FifoPolicy,
    PriorityPolicy.name: PriorityPolicy,
    FairSharePolicy.name: FairSharePolicy,
}


def make_policy(policy) -> SchedPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, SchedPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise KeyError(
            f"unknown policy {policy!r}; available: {sorted(POLICIES)}"
        ) from None
