"""Job model for the multi-tenant scheduler.

A :class:`Job` is one tenant's training request against the shared
cluster: a workload family (which fixes the cost model and simulator
calibration), a pipeline depth K (devices per parallel pipeline), a
micro-batch count M, a total amount of work in batches, and an elastic
range [min_pipelines, max_pipelines] for N — the paper's runtime knob
that the scheduler turns into a *capacity* tool.

The state machine is the issue's: queued → admitted → running →
resizing/preempted → done, with two extra terminals the control plane
needs in practice: ``rejected`` (the job cannot fit the cluster even
when it is empty — admission control proves this with the memory
predictor before ever queueing work behind it).  ``resizing`` is a
transient state: grows and shrinks happen at event boundaries, so a job
passes through it and back to ``running`` at the same timestamp, leaving
a record in :attr:`Job.trajectory`.

Every transition is validated; an illegal edge raises
:class:`JobStateError` rather than silently corrupting the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["JobState", "JobStateError", "JobSpec", "Job"]


class JobState:
    """String constants for the job lifecycle (str, not Enum, so logs and
    JSON serialize without adapters)."""

    QUEUED = "queued"
    ADMITTED = "admitted"
    RUNNING = "running"
    RESIZING = "resizing"
    PREEMPTED = "preempted"
    DONE = "done"
    REJECTED = "rejected"

    ALL = (QUEUED, ADMITTED, RUNNING, RESIZING, PREEMPTED, DONE, REJECTED)


#: legal edges of the lifecycle graph
_TRANSITIONS: dict[str, tuple[str, ...]] = {
    JobState.QUEUED: (JobState.ADMITTED, JobState.REJECTED),
    JobState.ADMITTED: (JobState.RUNNING,),
    JobState.RUNNING: (JobState.RESIZING, JobState.PREEMPTED, JobState.DONE),
    JobState.RESIZING: (JobState.RUNNING,),
    JobState.PREEMPTED: (JobState.ADMITTED,),
    JobState.DONE: (),
    JobState.REJECTED: (),
}


class JobStateError(RuntimeError):
    """An illegal lifecycle transition was attempted."""


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one training request."""

    job_id: str
    family: str  # workload name: "gnmt" | "bert" | "awd"
    num_stages: int  # K: devices per pipeline chain
    num_micro: int  # M: micro-batches per batch
    total_batches: int  # work, in batches per pipeline-iteration
    priority: int = 0  # higher preempts lower under the priority policy
    weight: float = 1.0  # share under weighted fair-share
    pipelines: int = 1  # requested N
    min_pipelines: int = 1  # elastic floor
    max_pipelines: int = 1  # elastic ceiling
    submit_time: float = 0.0

    def __post_init__(self) -> None:
        if self.num_stages < 1:
            raise ValueError(f"{self.job_id}: num_stages must be >= 1")
        if self.num_micro < 1:
            raise ValueError(f"{self.job_id}: num_micro must be >= 1")
        if self.total_batches < 1:
            raise ValueError(f"{self.job_id}: total_batches must be >= 1")
        if not (1 <= self.min_pipelines <= self.pipelines <= self.max_pipelines):
            raise ValueError(
                f"{self.job_id}: need 1 <= min <= requested <= max pipelines, got "
                f"{self.min_pipelines}/{self.pipelines}/{self.max_pipelines}"
            )
        if self.weight <= 0:
            raise ValueError(f"{self.job_id}: weight must be positive")
        if self.submit_time < 0:
            raise ValueError(f"{self.job_id}: negative submit_time")


@dataclass
class Job:
    """Mutable runtime state of one job inside the scheduler."""

    spec: JobSpec
    state: str = JobState.QUEUED
    #: pipeline chains currently granted (list of ChainPlan; empty unless
    #: admitted).  Chain 0 hosts the reference model.
    chains: list = field(default_factory=list)
    batches_done: float = 0.0
    rate: float = 0.0  # batches per simulated second at the current grant
    device_seconds: float = 0.0  # integral of granted devices over time
    running_seconds: float = 0.0
    admitted_at: float | None = None  # first admission
    finished_at: float | None = None
    preempted_at: float | None = None
    waits: list[float] = field(default_factory=list)  # queue-wait segments
    #: (time, kind, n_after) rows; kind in {"admit", "grow", "shrink",
    #: "preempt", "resume"} — the N-trajectory the numerics cross-check
    #: replays on a real trainer.
    trajectory: list[tuple[float, str, int]] = field(default_factory=list)
    #: (footprints, caps) rows for every chain ever granted — the audit
    #: trail the fuzzer checks against per-device capacities.
    admission_audit: list[tuple[tuple[float, ...], tuple[int, ...]]] = field(
        default_factory=list
    )
    preemptions: int = 0
    checkpoints: list[str] = field(default_factory=list)

    def transition(self, new_state: str) -> None:
        if new_state not in _TRANSITIONS.get(self.state, ()):
            raise JobStateError(
                f"job {self.spec.job_id}: illegal transition "
                f"{self.state} -> {new_state}"
            )
        self.state = new_state

    # ------------------------------------------------------------------ #

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def num_pipelines(self) -> int:
        return len(self.chains)

    @property
    def devices(self) -> list[int]:
        """All devices currently granted, in chain order."""
        return [d for chain in self.chains for d in chain.devices]

    @property
    def remaining_batches(self) -> float:
        return max(0.0, self.spec.total_batches - self.batches_done)

    @property
    def is_active(self) -> bool:
        return self.state in (JobState.RUNNING, JobState.RESIZING)

    @property
    def is_terminal(self) -> bool:
        return self.state in (JobState.DONE, JobState.REJECTED)

    @property
    def queue_wait(self) -> float:
        """First-admission wait (the queue-wait histogram's quantity)."""
        return self.waits[0] if self.waits else float("nan")

    @property
    def was_resized(self) -> bool:
        return any(kind in ("grow", "shrink") for _, kind, _ in self.trajectory)

    @property
    def was_preempted(self) -> bool:
        return self.preemptions > 0

    def finish_time(self, now: float) -> float:
        """Projected completion at the current rate."""
        if self.rate <= 0:
            return float("inf")
        return now + self.remaining_batches / self.rate

    def n_label(self) -> str:
        """Human-readable N trajectory, e.g. ``2→3→1``."""
        ns = [n for _, kind, n in self.trajectory if kind != "preempt"]
        if not ns:
            return "-"
        out = [ns[0]]
        for n in ns[1:]:
            if n != out[-1]:
                out.append(n)
        return "→".join(str(n) for n in out)
