"""Per-job planning and admission control for the scheduler.

Each of a job's N parallel pipelines occupies its own disjoint chain of
K devices (inter-round coupling is only the α-pull through the update
queues, so chains are placeable independently — the "embarrassingly
parallel between rounds" structure of §3.2).  For one chain the planner:

* cuts the job's model into K stages with :func:`repro.core.plan_for_spec`
  against a sub-spec of the granted devices (uniform grants take the
  legacy partition DP bit-for-bit; speed-heterogeneous grants take the
  balanced partition + placement search);
* builds an *analytic* :class:`~repro.core.profiler.Profile` at the
  job's own (M, 1) setting — per-stage compute from the cost model
  against each granted device's effective flops, per-stage transfer
  against the real link parameters between the granted devices, and
  per-stage footprints from the schedule's weight-version and stash
  bounds (the same quantities the invariants memory model charges);
* evaluates it through the tuner's :class:`~repro.core.Predictor`
  (Equations 1-8) — ``batch_time`` is the Eq.-1 bound used as the
  chain's service time, and ``f_total`` is the Eq.-8 footprint that
  admission control checks against the granted devices' capacities with
  :func:`~repro.core.predictor.fits_memory`.

Admission therefore *cannot* grant a chain that violates a per-device
memory cap: :meth:`JobPlanner.plan_chain` returns the footprints next to
the caps and :class:`ChainPlan.fits` is the predicate the scheduler
enforces (and the fuzzer audits).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.predictor import Predictor, fits_memory
from repro.core.profiler import Profile
from repro.core.simcfg import calibration_for
from repro.core.tuner import plan_for_spec
from repro.schedules.base import AdvanceFPSchedule
from repro.schedules.executor import StageCosts
from repro.sim.cluster import ClusterSpec

__all__ = ["ChainPlan", "JobPlanner"]

#: AvgPipe's own schedule shape: 1F1B with one advanced forward, one
#: resident weight version (§4.2) — what each admitted chain runs.
_SCHEDULE = AdvanceFPSchedule(1)
_COMM_WEIGHT = 0.2  # same partitioning trade-off simcfg uses


@lru_cache(maxsize=None)
def _family_costs(family: str):
    """Layer costs per workload family (model build is the expensive
    part; the cost list is immutable in practice)."""
    cal = calibration_for(family)
    return tuple(cal.layer_costs())


@dataclass(frozen=True)
class ChainPlan:
    """One granted pipeline chain: devices, partition, service model."""

    family: str
    num_micro: int
    #: granted devices; ``devices[d]`` is local planner index d
    devices: tuple[int, ...]
    #: stage k runs on global device ``stage_devices[k]``
    stage_devices: tuple[int, ...]
    boundaries: tuple[int, ...]
    #: Eq.-1 per-batch service time of this chain
    batch_time: float
    #: Eq.-8 footprint of stage k (bytes)
    footprints: tuple[float, ...]
    #: capacity of stage k's hosting device (bytes)
    caps: tuple[int, ...]
    with_reference: bool

    @property
    def fits(self) -> bool:
        return fits_memory(self.footprints, self.caps)

    @property
    def num_stages(self) -> int:
        return len(self.stage_devices)


class JobPlanner:
    """Plans chains for jobs on one shared cluster spec.

    ``history`` (None, a :class:`~repro.tune.store.RunStore`, or a path)
    lets admission consult the learned tuner: recorded runs of the same
    workload family at the same stage count correct the Eq.-1 service
    time of each planned chain.  Footprints and the :attr:`ChainPlan.fits`
    predicate stay purely analytic — the fuzzer audits them against the
    granted caps — and with no history or no matching records the plan
    is bit-for-bit the analytic one.
    """

    def __init__(self, spec: ClusterSpec, history=None) -> None:
        self.spec = spec
        self._cache: dict[tuple, ChainPlan] = {}
        if history is not None:
            from repro.tune.store import as_store

            history = as_store(history)
        self.history = history

    # ------------------------------------------------------------------ #

    def plan_chain(
        self,
        family: str,
        num_stages: int,
        num_micro: int,
        devices: tuple[int, ...],
        with_reference: bool,
    ) -> ChainPlan:
        """Plan one pipeline chain of ``family`` on ``devices``.

        The result depends only on the granted devices' speeds, memory
        capacities and node-adjacency pattern, so plans are memoized on
        that signature — but the returned plan always carries the actual
        device ids of this grant.
        """
        if len(devices) != num_stages:
            raise ValueError(
                f"grant of {len(devices)} devices for {num_stages} stages"
            )
        spec = self.spec
        key = (
            family,
            num_micro,
            with_reference,
            tuple(spec.speed_of(d) for d in devices),
            tuple(spec.memory_bytes_of(d) for d in devices),
            tuple(spec.node_of(d) for d in devices),
        )
        cached = self._cache.get(key)
        if cached is not None:
            if cached.devices == devices:
                return cached
            # same signature, different device ids: remap
            remap = dict(zip(cached.devices, devices))
            plan = dataclasses.replace(
                cached,
                devices=devices,
                stage_devices=tuple(remap[d] for d in cached.stage_devices),
            )
            return plan
        plan = self._plan_chain_uncached(
            family, num_stages, num_micro, devices, with_reference
        )
        self._cache[key] = plan
        return plan

    def best_case_fits(self, family: str, num_stages: int, num_micro: int) -> bool:
        """Whether one chain fits *anywhere* on an empty cluster.

        Admission control's static feasibility check: a job that fails
        this can never be admitted and is rejected at submit instead of
        blocking the queue forever.
        """
        if num_stages > self.spec.num_devices:
            return False
        devices = self.rank_devices(range(self.spec.num_devices))[:num_stages]
        plan = self.plan_chain(
            family, num_stages, num_micro, tuple(devices), with_reference=True
        )
        return plan.fits

    def rank_devices(self, candidates) -> list[int]:
        """Grant order: fastest first, then largest memory, then id."""
        spec = self.spec
        return sorted(
            candidates,
            key=lambda d: (-spec.speed_of(d), -spec.memory_bytes_of(d), d),
        )

    # ------------------------------------------------------------------ #

    def _plan_chain_uncached(
        self,
        family: str,
        num_stages: int,
        num_micro: int,
        devices: tuple[int, ...],
        with_reference: bool,
    ) -> ChainPlan:
        spec = self.spec
        cal = calibration_for(family)
        costs = list(_family_costs(family))
        if cal.batch_size % num_micro != 0:
            raise ValueError(
                f"{family}: batch {cal.batch_size} not divisible by M={num_micro}"
            )

        # --- partition + placement on the grant ------------------------
        speeds = tuple(spec.speed_of(d) for d in devices)
        mems = tuple(spec.memory_bytes_of(d) for d in devices)
        uniform = len(set(speeds)) == 1 and len(set(mems)) == 1
        sub = ClusterSpec(
            nodes=num_stages,
            gpus_per_node=1,
            peak_flops=spec.peak_flops * (speeds[0] if uniform else 1.0),
            memory_bytes=mems[0],
            intra_node_bandwidth=spec.intra_node_bandwidth,
            inter_node_bandwidth=spec.inter_node_bandwidth,
            intra_node_latency=spec.intra_node_latency,
            inter_node_latency=spec.inter_node_latency,
            device_speed=None if uniform else speeds,
            device_memory_bytes=None if uniform else mems,
        )
        partition, placement = plan_for_spec(
            costs,
            sub,
            num_stages=num_stages,
            activation_byte_scale=cal.activation_byte_scale,
            param_byte_scale=cal.param_byte_scale,
            comm_weight=_COMM_WEIGHT,
            memory_caps=None if uniform else sub.memory_vector(),
        )
        stage_devices = tuple(devices[placement[k]] for k in range(num_stages))

        # --- analytic profile at the job's own (M, 1) -------------------
        stage_costs = StageCosts.from_partition(
            costs,
            partition,
            mb_size=cal.batch_size / num_micro,
            activation_byte_scale=cal.activation_byte_scale,
            param_byte_scale=cal.param_byte_scale,
            stash_multiplier=cal.stash_multiplier,
        )
        K, M = num_stages, num_micro
        t_gpu, t_comm_total, f_mod, f_ref, f_dat = [], [], [], [], []
        for k in range(K):
            dev = stage_devices[k]
            # fwd + 2x bwd flops per micro-batch on the hosting device
            t_comp = 3.0 * stage_costs.fwd_flops[k] / spec.peak_flops_of(dev)
            t_gpu.append(M * t_comp)
            if k + 1 < K:
                bandwidth, latency = spec.link_params(dev, stage_devices[k + 1])
                t_comm = stage_costs.act_out_bytes[k] / bandwidth + latency
            else:
                t_comm = 0.0
            t_comm_total.append(M * t_comm)
            params = stage_costs.param_bytes[k]
            versions = _SCHEDULE.weight_versions(k, K)
            ref = params if with_reference else 0
            f_mod.append(params * (versions + cal.optimizer_state_factor) + ref)
            f_ref.append(ref)
            f_dat.append(_SCHEDULE.stash_bound(k, K, M) * stage_costs.stash_bytes[k])
        profile = Profile(
            m=M,
            n=1,
            batch_size=cal.batch_size,
            num_stages=K,
            t_gpu=t_gpu,
            t_comm_total=t_comm_total,
            # single-knot step function: Eq. 2's overflow integral is 0 at
            # the profile's own setting, which is the only one we evaluate
            phi_times=[np.array([0.0]) for _ in range(K)],
            phi_values=[np.array([1.0]) for _ in range(K)],
            f_mod=f_mod,
            f_ref=f_ref,
            f_dat=f_dat,
            batch_time=0.0,  # filled from the prediction below
            profiling_cost=0.0,
            curve=None,
        )
        prediction = Predictor(profile).predict(M, 1)
        batch_time = prediction.batch_time
        if self.history is not None and len(self.history) > 0:
            from repro.tune.residual import ResidualModel

            records = self.history.matching_workload(family, K)
            if records:
                model = ResidualModel.fit(records)
                batch_time = model.correction(M, 1) * batch_time
        return ChainPlan(
            family=family,
            num_micro=M,
            devices=devices,
            stage_devices=stage_devices,
            boundaries=partition.boundaries,
            batch_time=batch_time,
            footprints=prediction.f_total,
            caps=tuple(spec.memory_bytes_of(d) for d in stage_devices),
            with_reference=with_reference,
        )
