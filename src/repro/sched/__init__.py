"""Multi-tenant elastic training service on the simulated cluster.

The paper makes a job's parallel-pipeline count N a runtime knob
(§3.2's ``resize``/``add_model``); this package turns that knob into a
*capacity* tool: many jobs share one cluster, each pipeline chain is
planned with the tuner (:func:`repro.core.plan_for_spec` + the Eq. 1-8
predictor), admission control proves Eq.-8 footprints fit per-device
capacities, and the elastic policies grow/shrink running jobs to absorb
arrivals and backfill departures.  See ``docs/scheduling.md``.

* :mod:`job` — job spec + validated lifecycle state machine;
* :mod:`workload` — seeded arrival-process scenario generator;
* :mod:`service` — per-chain planning, service times, admission checks;
* :mod:`policies` — FIFO / priority-preemptive / weighted fair-share;
* :mod:`scheduler` — the deterministic event loop and occupancy ledger;
* :mod:`report` — per-job tables and the FIFO-vs-elastic verdict;
* :mod:`crosscheck` — N-trajectory replay on a real trainer, checked
  against the elastic oracle.
"""

from repro.sched.job import Job, JobSpec, JobState, JobStateError
from repro.sched.workload import (
    SCHED_SCENARIOS,
    SchedScenario,
    build_scenario,
    generate_jobs,
)
from repro.sched.service import ChainPlan, JobPlanner
from repro.sched.policies import (
    POLICIES,
    FairSharePolicy,
    FifoPolicy,
    PriorityPolicy,
    SchedPolicy,
    make_policy,
)
from repro.sched.scheduler import ClusterScheduler, SchedResult, SchedulerError
from repro.sched.report import (
    SchedVerdict,
    render_compare,
    render_jobs,
    render_report,
    render_summary,
)
from repro.sched.crosscheck import CrosscheckResult, crosscheck_job, crosscheck_result

__all__ = [
    "Job",
    "JobSpec",
    "JobState",
    "JobStateError",
    "SchedScenario",
    "SCHED_SCENARIOS",
    "build_scenario",
    "generate_jobs",
    "ChainPlan",
    "JobPlanner",
    "SchedPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "FairSharePolicy",
    "POLICIES",
    "make_policy",
    "ClusterScheduler",
    "SchedResult",
    "SchedulerError",
    "SchedVerdict",
    "render_jobs",
    "render_summary",
    "render_compare",
    "render_report",
    "CrosscheckResult",
    "crosscheck_job",
    "crosscheck_result",
]


def run_scenario(
    scenario: str, policy: str, seed: int = 0, history=None
) -> SchedResult:
    """Convenience: build the canned scenario and run one policy.

    ``history`` forwards a tuner run store to admission planning; with
    None (the default) or an empty store the run is bit-identical to the
    analytic path.
    """
    from repro.obs.registry import MetricRegistry

    spec, jobs = build_scenario(scenario, seed)
    scheduler = ClusterScheduler(
        spec,
        jobs,
        policy,
        registry=MetricRegistry(),
        scenario=scenario,
        seed=seed,
        history=history,
    )
    return scheduler.run()


__all__.append("run_scenario")
