"""Numerics cross-check: replay scheduler N-trajectories on a real trainer.

The scheduler operates at the simulation level — it decides *when* a
job's N changes, not the numerics of the change.  This module closes the
loop: for every job the scheduler preempted or resized, it replays the
recorded trajectory on a real :class:`~repro.core.trainer.AvgPipeTrainer`
(the fast tiny-AWD workload the chaos suite uses) with the actual
production levers:

* ``shrink``  → :meth:`AvgPipeTrainer.evict_pipeline` (framework
  ``resize`` underneath, α renormalized);
* ``grow``    → :meth:`AvgPipeTrainer.rejoin_pipeline` (framework
  ``add_model`` seeded from the reference);
* ``preempt`` → :func:`repro.core.checkpoint.save_trainer` (format v2);
* ``resume``  → a *fresh* trainer restored with
  :func:`~repro.core.checkpoint.load_trainer` at the checkpoint's N,
  then resized to the scheduler's resumed N — ``rejoin_pipeline`` when
  the job came back wider, ``evict_pipeline`` when the scheduler could
  only re-admit it at fewer chains.

Between consecutive events the trainer runs one real training round, so
every lever fires against moved state.  Afterwards
:func:`repro.verify.elastic_equivalence_check` drives the surviving
framework and an independently-derived §3.2 oracle through identical
update rounds; the max divergence must stay below ``tolerance`` for the
job to count as clean.  This is the acceptance criterion's "post-recovery
numerics cross-check clean against the elastic oracle".
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.core.trainer import GRAD_CLIP, AvgPipeTrainer, _batches

from repro.sched.job import Job
from repro.sched.scheduler import SchedResult

__all__ = ["CrosscheckResult", "crosscheck_job", "crosscheck_result"]

#: replayed pipeline counts are capped so the tiny trainer stays fast;
#: the levers exercised (evict/rejoin/save/load) are N-independent
_MAX_REPLAY_N = 4
_TOLERANCE = 1e-4


@dataclass(frozen=True)
class CrosscheckResult:
    job_id: str
    events: int  # resize/preempt/resume events replayed
    divergence: float
    tolerance: float = _TOLERANCE

    @property
    def ok(self) -> bool:
        return self.divergence <= self.tolerance


def _train_round(trainer: AvgPipeTrainer, batch_iter) -> None:
    """One synchronous round: each pipeline trains one batch, commits its
    delta, then the reference applies the round (trainer.train()'s inner
    loop, without the epoch machinery)."""
    for pos in range(trainer.num_pipelines):
        batch = next(batch_iter)
        before = trainer.framework.capture(pos)
        trainer._compute_gradients(pos, batch)
        opt = trainer.optimizers[pos]
        opt.clip_grad_norm(GRAD_CLIP)
        opt.step()
        trainer.framework.commit(pos, before)
    trainer.framework.end_iteration()


def _batch_stream(trainer: AvgPipeTrainer):
    """Endless deterministic batch iterator over the tiny corpus."""
    while True:
        yield from _batches(trainer.loader)


def _clamp(n: int) -> int:
    return max(1, min(_MAX_REPLAY_N, n))


def crosscheck_job(job: Job, seed: int = 0, tolerance: float = _TOLERANCE) -> CrosscheckResult:
    """Replay one job's recorded N-trajectory; see the module docstring."""
    from repro.core.checkpoint import load_trainer, save_trainer
    from repro.resilience.chaos import tiny_chaos_spec
    from repro.verify import elastic_equivalence_check

    spec = tiny_chaos_spec()
    trajectory = job.trajectory
    if not trajectory:
        raise ValueError(f"job {job.job_id} has no trajectory to replay")
    first_kind, first_n = trajectory[0][1], _clamp(trajectory[0][2])
    if first_kind != "admit":
        raise ValueError(f"job {job.job_id} trajectory starts with {first_kind!r}")
    trainer = AvgPipeTrainer(spec, seed=seed, num_pipelines=first_n, max_epochs=1)
    batches = _batch_stream(trainer)
    events = 0
    with tempfile.TemporaryDirectory(prefix="sched-crosscheck-") as tmp:
        checkpoint = Path(tmp) / "preempt.npz"
        pending_resume_from: int | None = None
        for _, kind, n_after in trajectory[1:]:
            n_after = _clamp(n_after)
            if pending_resume_from is not None:
                if kind != "resume":
                    raise ValueError(
                        f"job {job.job_id}: {kind!r} while preempted"
                    )
                # restart into a fresh trainer at the checkpoint's N, then
                # resize to the scheduler's resumed N — grow (add_model
                # path) when resumed wider, evict when the scheduler
                # could only re-admit the job at fewer chains
                trainer = AvgPipeTrainer(
                    spec, seed=seed, num_pipelines=pending_resume_from, max_epochs=1
                )
                load_trainer(trainer, checkpoint, allow_resize=True)
                while trainer.num_pipelines < n_after:
                    trainer.rejoin_pipeline()
                while trainer.num_pipelines > n_after:
                    trainer.evict_pipeline(trainer.num_pipelines - 1)
                pending_resume_from = None
            elif kind == "shrink":
                while trainer.num_pipelines > max(1, n_after):
                    trainer.evict_pipeline(trainer.num_pipelines - 1)
            elif kind == "grow":
                while trainer.num_pipelines < n_after:
                    trainer.rejoin_pipeline()
            elif kind == "preempt":
                save_trainer(trainer, checkpoint)
                pending_resume_from = trainer.num_pipelines
            else:
                raise ValueError(f"job {job.job_id}: unknown event {kind!r}")
            events += 1
            if pending_resume_from is None:
                batches = _batch_stream(trainer)
                _train_round(trainer, batches)
        if pending_resume_from is not None:
            raise ValueError(f"job {job.job_id}: trajectory ends preempted")
        divergence = elastic_equivalence_check(
            trainer.framework, spec.build_model, rounds=2, seed=seed
        )
    return CrosscheckResult(
        job_id=job.job_id,
        events=events,
        divergence=divergence,
        tolerance=tolerance,
    )


def crosscheck_result(
    result: SchedResult, seed: int = 0, tolerance: float = _TOLERANCE
) -> list[CrosscheckResult]:
    """Cross-check every preempted-then-resumed or resized job in a run."""
    out = []
    for job in result.jobs:
        if job.was_resized or job.was_preempted:
            out.append(crosscheck_job(job, seed=seed, tolerance=tolerance))
    return out
