"""Deterministic event-driven multi-job scheduler on the simulated cluster.

The scheduler owns the cluster occupancy (which job holds which
devices), a queue of submitted jobs and the simulated clock.  Only two
kinds of external events exist — job arrivals (precomputed by the seeded
workload generator) and job completions (projected from each running
job's Eq.-1 service rate) — so the loop advances the clock to the next
event, integrates progress and device-time, then lets the policy react
by admitting / preempting / resizing through the primitives below.

Determinism: events at equal timestamps process completions before
arrivals; every iteration over jobs or devices is explicitly ordered;
all clock arithmetic is plain float with no wall-clock or RNG input
beyond the generator's seed.  Two runs with the same (scenario, policy,
seed) produce byte-identical event logs — pinned by tests and the
committed ``sched_smoke.txt`` golden.

Bookkeeping invariants (audited by the ``repro.verify`` job-arrival
fuzzer):

* a device is owned by at most one job at any instant;
* every admitted chain's Eq.-8 footprints fit its devices' capacities;
* busy-device-seconds integrated over the run equals the sum of the
  per-job device-seconds (device-time conservation);
* every non-rejected job reaches ``done`` (no starvation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.registry import MetricRegistry
from repro.sim.cluster import ClusterSpec

from repro.sched.job import Job, JobState
from repro.sched.service import ChainPlan, JobPlanner

__all__ = ["SchedulerError", "ClusterScheduler", "SchedResult"]

#: buckets for the per-job throughput histogram (batches per simulated
#: second; jobs at this scale land between ~1 and ~1000)
THROUGHPUT_BUCKETS: tuple[float, ...] = tuple(0.25 * 2.0**i for i in range(16))

#: buckets for the queue-wait histogram: sub-millisecond admissions up
#: to ~500 s head-of-line stalls, ratio-2 so FIFO-vs-elastic tails land
#: in different buckets at this scale
WAIT_BUCKETS: tuple[float, ...] = tuple(5e-4 * 2.0**i for i in range(21))


class SchedulerError(RuntimeError):
    """Internal bookkeeping violation (a bug, not a user error)."""


@dataclass
class SchedResult:
    """Everything one scheduler run produced."""

    scenario: str
    policy: str
    seed: int
    spec: ClusterSpec
    jobs: list[Job]
    log: list[str]
    makespan: float
    utilization: float
    busy_device_seconds: float
    registry: MetricRegistry

    def log_text(self) -> str:
        return "\n".join(self.log) + "\n"

    def queue_wait_summary(self) -> dict:
        """Exact queue-wait quantiles from the per-job wait segments.

        The ``sched.queue_wait`` *histogram* carries the same data into
        the metric registry (and ``repro report``); the verdict tables
        use the exact values so a FIFO-vs-elastic improvement can't be
        hidden by two tails landing in the same bucket.
        """
        waits = sorted(w for j in self.jobs for w in j.waits)
        if not waits:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

        def q(p: float) -> float:
            # nearest-rank: smallest wait covering fraction p of samples
            import math

            return waits[min(len(waits) - 1, max(0, math.ceil(p * len(waits)) - 1))]

        return {
            "count": len(waits),
            "mean": sum(waits) / len(waits),
            "p50": q(0.50),
            "p95": q(0.95),
            "p99": q(0.99),
        }

    @property
    def completed(self) -> list[Job]:
        return [j for j in self.jobs if j.state == JobState.DONE]

    @property
    def rejected(self) -> list[Job]:
        return [j for j in self.jobs if j.state == JobState.REJECTED]

    def to_dict(self) -> dict:
        wait = self.queue_wait_summary()
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "seed": self.seed,
            "num_devices": self.spec.num_devices,
            "jobs": len(self.jobs),
            "completed": len(self.completed),
            "rejected": len(self.rejected),
            "makespan_seconds": self.makespan,
            "cluster_utilization": self.utilization,
            "busy_device_seconds": self.busy_device_seconds,
            "queue_wait": wait,
            "metrics": self.registry.snapshot(),
        }


@dataclass
class _Occupancy:
    """Device ownership bookkeeping (the repro.sim occupancy view)."""

    num_devices: int
    owner: dict[int, str] = field(default_factory=dict)

    @property
    def free(self) -> list[int]:
        return [d for d in range(self.num_devices) if d not in self.owner]

    def claim(self, devices, job_id: str) -> None:
        for d in devices:
            if d in self.owner:
                raise SchedulerError(
                    f"device {d} already owned by {self.owner[d]}, "
                    f"claimed for {job_id}"
                )
            self.owner[d] = job_id

    def release(self, devices, job_id: str) -> None:
        for d in devices:
            if self.owner.get(d) != job_id:
                raise SchedulerError(
                    f"device {d} not owned by {job_id} at release"
                )
            del self.owner[d]


class ClusterScheduler:
    """One deterministic scheduling run over a fixed job list."""

    def __init__(
        self,
        spec: ClusterSpec,
        jobs: list[Job],
        policy,
        registry: MetricRegistry | None = None,
        scenario: str = "custom",
        seed: int = 0,
        history=None,
    ) -> None:
        from repro.sched.policies import make_policy

        self.spec = spec
        self.jobs = sorted(jobs, key=lambda j: (j.spec.submit_time, j.job_id))
        self.policy = make_policy(policy)
        self.registry = registry if registry is not None else MetricRegistry()
        self.scenario = scenario
        self.seed = seed
        self.planner = JobPlanner(spec, history=history)
        self.occupancy = _Occupancy(spec.num_devices)
        self.queue: list[Job] = []  # QUEUED + PREEMPTED, awaiting (re-)admission
        self.running: list[Job] = []
        self.now = 0.0
        self.busy_device_seconds = 0.0
        self.log: list[str] = []
        self._finished = 0

    # ------------------------------------------------------------------ #
    # event loop

    def run(self) -> SchedResult:
        pending = list(self.jobs)  # already submit-time sorted
        while pending or self.running:
            next_arrival = pending[0].spec.submit_time if pending else float("inf")
            completing = self._next_completion()
            finish = completing.finish_time(self.now) if completing else float("inf")
            if completing is not None and finish <= next_arrival:
                self._advance(finish)
                self._complete(completing)
            else:
                job = pending.pop(0)
                self._advance(next_arrival)
                self._submit(job)
            self.policy.on_event(self)
        if self.queue:
            stuck = ", ".join(j.job_id for j in self.queue)
            raise SchedulerError(f"run ended with jobs still queued: {stuck}")
        return self._finalize()

    def _next_completion(self) -> Job | None:
        if not self.running:
            return None
        return min(
            self.running, key=lambda j: (j.finish_time(self.now), j.job_id)
        )

    def _advance(self, t: float) -> None:
        dt = t - self.now
        if dt < -1e-12:
            raise SchedulerError(f"clock moved backwards: {self.now} -> {t}")
        if dt > 0:
            busy = 0
            for job in sorted(self.running, key=lambda j: j.job_id):
                n_dev = len(job.devices)
                busy += n_dev
                job.device_seconds += n_dev * dt
                job.running_seconds += dt
                job.batches_done = min(
                    job.spec.total_batches, job.batches_done + job.rate * dt
                )
            self.busy_device_seconds += busy * dt
        self.now = t

    # ------------------------------------------------------------------ #
    # job lifecycle

    def _submit(self, job: Job) -> None:
        s = job.spec
        self._log(
            "submit",
            job,
            f"family={s.family} stages={s.num_stages} micro={s.num_micro} "
            f"batches={s.total_batches} prio={s.priority} "
            f"n={s.pipelines} (min={s.min_pipelines} max={s.max_pipelines})",
        )
        self._count("submitted")
        if not self.planner.best_case_fits(s.family, s.num_stages, s.num_micro):
            job.transition(JobState.REJECTED)
            self._log("reject", job, "does not fit the empty cluster")
            self._count("rejected")
            return
        self.queue.append(job)

    def _complete(self, job: Job) -> None:
        job.batches_done = float(job.spec.total_batches)
        job.transition(JobState.DONE)
        job.finished_at = self.now
        self._release_chains(job)
        job.rate = 0.0
        self.running.remove(job)
        self._finished += 1
        throughput = (
            job.spec.total_batches / job.running_seconds
            if job.running_seconds > 0
            else 0.0
        )
        self.registry.histogram(
            "sched.job_throughput", buckets=THROUGHPUT_BUCKETS
        ).observe(throughput)
        self.registry.gauge("sched.job.throughput", job=job.job_id).set(throughput)
        self._log("finish", job, f"throughput={throughput:.3f} batches/s")
        self._count("completed")

    # ------------------------------------------------------------------ #
    # policy primitives

    def free_count(self) -> int:
        return len(self.occupancy.free)

    def running_jobs(self) -> list[Job]:
        return sorted(self.running, key=lambda j: j.job_id)

    def queued_jobs(self) -> list[Job]:
        return sorted(self.queue, key=lambda j: (j.spec.submit_time, j.job_id))

    def plan_chains(
        self, job: Job, n_chains: int, extra=()
    ) -> list[ChainPlan] | None:
        """Plan ``n_chains`` chains for ``job`` on the fastest free
        devices (plus the hypothetical ``extra`` ones), or None if they
        don't fit (devices or memory)."""
        s = job.spec
        need = n_chains * s.num_stages
        pool = self.occupancy.free
        if extra:
            pool = sorted(set(pool).union(extra))
        ranked = self.planner.rank_devices(pool)
        if n_chains < 1 or len(ranked) < need:
            return None
        plans = []
        for c in range(n_chains):
            # grants keep the planner's rank order (fastest and biggest
            # memory first) — stage footprints decrease with depth, so
            # this pairs heavy stages with big devices exactly the way
            # best_case_fits probed at submit; sorting by id here made
            # chains infeasible that the feasibility check had accepted,
            # starving the job forever
            grant = tuple(ranked[c * s.num_stages : (c + 1) * s.num_stages])
            plan = self.planner.plan_chain(
                s.family, s.num_stages, s.num_micro, grant, with_reference=(c == 0)
            )
            if not plan.fits:
                return None
            plans.append(plan)
        return plans

    def would_fit(self, job: Job, n_chains: int, victims=()) -> bool:
        """Dry-run admission: would ``n_chains`` chains of ``job`` plan
        cleanly — device count *and* per-device memory — on the free
        devices plus those held by ``victims``?  Preemptive policies
        must prove this before evicting anyone: freeing devices by count
        alone can evict jobs whose capacities still cannot host the
        entrant, which re-queues the victims and livelocks."""
        extra = [d for v in victims for d in v.devices]
        return self.plan_chains(job, n_chains, extra=extra) is not None

    def admit(self, job: Job, n_chains: int) -> bool:
        """Admit (or resume) ``job`` at ``n_chains`` pipeline chains."""
        plans = self.plan_chains(job, n_chains)
        if plans is None:
            return False
        resumed = job.state == JobState.PREEMPTED
        wait_since = job.preempted_at if resumed else job.spec.submit_time
        job.transition(JobState.ADMITTED)
        if job.admitted_at is None:
            job.admitted_at = self.now
        for plan in plans:
            self.occupancy.claim(plan.devices, job.job_id)
            job.admission_audit.append((plan.footprints, plan.caps))
        job.chains = plans
        job.transition(JobState.RUNNING)
        self.queue.remove(job)
        self.running.append(job)
        self._update_rate(job)
        job.trajectory.append(
            (self.now, "resume" if resumed else "admit", n_chains)
        )
        wait = self.now - wait_since
        job.waits.append(wait)
        self.registry.histogram("sched.queue_wait", buckets=WAIT_BUCKETS).observe(wait)
        kind = "resume" if resumed else "admit"
        self._log(
            kind,
            job,
            f"n={n_chains} devices={self._grant_label(plans)} wait={wait:.6f}s",
        )
        self._count("resumed" if resumed else "admitted")
        return True

    def grow(self, job: Job) -> bool:
        """Add one pipeline chain to a running job (elastic backfill,
        the scheduler-level ``add_model`` lever)."""
        s = job.spec
        if job.state != JobState.RUNNING or job.num_pipelines >= s.max_pipelines:
            return False
        ranked = self.planner.rank_devices(self.occupancy.free)
        if len(ranked) < s.num_stages:
            return False
        grant = tuple(ranked[: s.num_stages])  # rank order, as plan_chains
        plan = self.planner.plan_chain(
            s.family, s.num_stages, s.num_micro, grant, with_reference=False
        )
        if not plan.fits:
            return False
        job.transition(JobState.RESIZING)
        self.occupancy.claim(plan.devices, job.job_id)
        job.chains.append(plan)
        job.admission_audit.append((plan.footprints, plan.caps))
        job.transition(JobState.RUNNING)
        self._update_rate(job)
        job.trajectory.append((self.now, "grow", job.num_pipelines))
        self.registry.counter("sched.resize", direction="grow").inc()
        self._log("grow", job, f"n={job.num_pipelines} devices={plan.devices}")
        return True

    def shrink(self, job: Job) -> bool:
        """Drop a running job's last chain (elastic shrink-to-admit,
        the scheduler-level ``resize`` lever)."""
        if job.state != JobState.RUNNING:
            return False
        if job.num_pipelines <= max(1, job.spec.min_pipelines):
            return False
        job.transition(JobState.RESIZING)
        plan = job.chains.pop()
        self.occupancy.release(plan.devices, job.job_id)
        job.transition(JobState.RUNNING)
        self._update_rate(job)
        job.trajectory.append((self.now, "shrink", job.num_pipelines))
        self.registry.counter("sched.resize", direction="shrink").inc()
        self._log("shrink", job, f"n={job.num_pipelines} freed={plan.devices}")
        return True

    def preempt(self, job: Job) -> bool:
        """Checkpoint and evict a running job (format-v2 checkpoint; the
        numerics cross-check replays it through save/load_trainer)."""
        if job.state != JobState.RUNNING:
            return False
        n_before = job.num_pipelines
        job.transition(JobState.PREEMPTED)
        checkpoint = f"ckpt-v2-{job.job_id}-{job.preemptions}"
        job.checkpoints.append(checkpoint)
        job.preemptions += 1
        job.preempted_at = self.now
        self._release_chains(job)
        job.rate = 0.0
        self.running.remove(job)
        self.queue.append(job)
        job.trajectory.append((self.now, "preempt", n_before))
        self._log("preempt", job, f"n_was={n_before} checkpoint={checkpoint}")
        self._count("preempted")
        return True

    # ------------------------------------------------------------------ #

    def _release_chains(self, job: Job) -> None:
        for plan in job.chains:
            self.occupancy.release(plan.devices, job.job_id)
        job.chains = []

    def _update_rate(self, job: Job) -> None:
        # rounds synchronize across chains: one iteration trains one
        # batch per chain and lasts as long as the slowest chain
        if not job.chains:
            job.rate = 0.0
            return
        slowest = max(plan.batch_time for plan in job.chains)
        job.rate = len(job.chains) / slowest

    def _grant_label(self, plans: list[ChainPlan]) -> str:
        return "[" + "|".join(
            ",".join(str(d) for d in plan.devices) for plan in plans
        ) + "]"

    def _log(self, kind: str, job: Job, detail: str) -> None:
        self.log.append(
            f"[t={self.now:12.6f}] {kind:7s} job={job.job_id} {detail}"
        )

    def _count(self, event: str) -> None:
        self.registry.counter("sched.jobs", event=event).inc()

    def _finalize(self) -> SchedResult:
        if self.occupancy.owner:
            raise SchedulerError(
                f"devices still owned at end of run: {self.occupancy.owner}"
            )
        makespan = self.now
        utilization = (
            self.busy_device_seconds / (self.spec.num_devices * makespan)
            if makespan > 0
            else 0.0
        )
        self.registry.gauge("sched.cluster_util").set(utilization)
        self.registry.gauge("sched.makespan").set(makespan)
        self.registry.counter("sched.busy_device_seconds").inc(
            self.busy_device_seconds
        )
        self._log_summary(makespan, utilization)
        return SchedResult(
            scenario=self.scenario,
            policy=self.policy.name,
            seed=self.seed,
            spec=self.spec,
            jobs=self.jobs,
            log=self.log,
            makespan=makespan,
            utilization=utilization,
            busy_device_seconds=self.busy_device_seconds,
            registry=self.registry,
        )

    def _log_summary(self, makespan: float, utilization: float) -> None:
        done = sum(1 for j in self.jobs if j.state == JobState.DONE)
        rejected = sum(1 for j in self.jobs if j.state == JobState.REJECTED)
        self.log.append(
            f"[t={self.now:12.6f}] end     policy={self.policy.name} "
            f"done={done} rejected={rejected} makespan={makespan:.6f}s "
            f"util={utilization:.4f}"
        )
