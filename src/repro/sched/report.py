"""Run reports and the FIFO-vs-elastic verdict table.

``repro sched`` runs the chosen policy *and* the static FIFO baseline on
the same seeded scenario, then renders:

* a per-job table for each run (family, K, M, N-trajectory, wait,
  runtime, throughput, preemptions, final state);
* a summary per run (makespan, cluster utilization, queue-wait
  quantiles from the ``sched.queue_wait`` histogram);
* the verdict table — utilization, queue-wait p50/p95/p99, mean job
  throughput and makespan side by side, with a PASS/FAIL verdict on the
  acceptance criterion: elastic inter-job resizing must beat static
  FIFO on *both* cluster utilization and queue-wait p95.

All numbers derive from the deterministic simulator clock and the
registry's histogram quantiles, so renderings are byte-stable — the
committed ``sched_smoke.txt`` golden pins them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.tables import format_table

from repro.sched.job import Job, JobState
from repro.sched.scheduler import SchedResult

__all__ = ["SchedVerdict", "render_jobs", "render_summary", "render_compare", "render_report"]


@dataclass
class SchedVerdict:
    """The acceptance comparison between a policy run and the baseline."""

    baseline: SchedResult
    candidate: SchedResult
    crosschecks: list = field(default_factory=list)  # CrosscheckResult rows

    @property
    def util_improved(self) -> bool:
        return self.candidate.utilization > self.baseline.utilization

    @property
    def wait_p95_improved(self) -> bool:
        return (
            self.candidate.queue_wait_summary()["p95"]
            < self.baseline.queue_wait_summary()["p95"]
        )

    @property
    def numerics_clean(self) -> bool:
        return all(c.ok for c in self.crosschecks)

    @property
    def passed(self) -> bool:
        return self.util_improved and self.wait_p95_improved and self.numerics_clean

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "util_improved": self.util_improved,
            "wait_p95_improved": self.wait_p95_improved,
            "numerics_clean": self.numerics_clean,
            "baseline": self.baseline.to_dict(),
            "candidate": self.candidate.to_dict(),
            "crosschecks": [
                {
                    "job_id": c.job_id,
                    "events": c.events,
                    "divergence": c.divergence,
                    "tolerance": c.tolerance,
                    "ok": c.ok,
                }
                for c in self.crosschecks
            ],
        }


def _job_rows(result: SchedResult) -> list[list]:
    rows = []
    for job in result.jobs:
        s = job.spec
        throughput = (
            s.total_batches / job.running_seconds if job.running_seconds > 0 else 0.0
        )
        rows.append(
            [
                job.job_id,
                s.family,
                s.num_stages,
                s.num_micro,
                s.total_batches,
                s.priority,
                job.n_label(),
                "-" if not job.waits else f"{job.queue_wait:.4f}",
                f"{job.running_seconds:.4f}",
                f"{throughput:.2f}",
                job.preemptions,
                job.state,
            ]
        )
    return rows


def render_jobs(result: SchedResult) -> str:
    return format_table(
        ["job", "family", "K", "M", "batches", "prio", "N", "wait (s)",
         "run (s)", "batches/s", "preempts", "state"],
        _job_rows(result),
        title=f"Jobs — scenario={result.scenario} policy={result.policy} "
        f"seed={result.seed}",
    )


def render_summary(result: SchedResult) -> str:
    wait = result.queue_wait_summary()
    lines = [
        f"policy={result.policy}: makespan={result.makespan:.6f}s "
        f"util={result.utilization:.4f} "
        f"busy={result.busy_device_seconds:.4f} device-s",
        f"  queue wait: p50={wait['p50']:.4f}s p95={wait['p95']:.4f}s "
        f"p99={wait['p99']:.4f}s (n={wait['count']})",
        f"  jobs: {len(result.completed)} done, {len(result.rejected)} rejected, "
        f"{int(result.registry.value('sched.jobs', event='preempted'))} preemptions, "
        f"{int(result.registry.value('sched.resize', direction='grow'))} grows, "
        f"{int(result.registry.value('sched.resize', direction='shrink'))} shrinks",
    ]
    return "\n".join(lines) + "\n"


def _mean_throughput(result: SchedResult) -> float:
    hist = result.registry.get("sched.job_throughput")
    return hist.summary()["mean"] if hist is not None else 0.0


def render_compare(verdict: SchedVerdict) -> str:
    base, cand = verdict.baseline, verdict.candidate
    bw, cw = base.queue_wait_summary(), cand.queue_wait_summary()

    def better(flag: bool) -> str:
        return "yes" if flag else "NO"

    rows = [
        ["cluster utilization", f"{base.utilization:.4f}", f"{cand.utilization:.4f}",
         better(verdict.util_improved)],
        ["queue wait p50 (s)", f"{bw['p50']:.4f}", f"{cw['p50']:.4f}",
         better(cw["p50"] <= bw["p50"])],
        ["queue wait p95 (s)", f"{bw['p95']:.4f}", f"{cw['p95']:.4f}",
         better(verdict.wait_p95_improved)],
        ["queue wait p99 (s)", f"{bw['p99']:.4f}", f"{cw['p99']:.4f}",
         better(cw["p99"] <= bw["p99"])],
        ["mean job throughput (batches/s)", f"{_mean_throughput(base):.3f}",
         f"{_mean_throughput(cand):.3f}",
         better(_mean_throughput(cand) >= _mean_throughput(base))],
        ["makespan (s)", f"{base.makespan:.4f}", f"{cand.makespan:.4f}",
         better(cand.makespan <= base.makespan)],
    ]
    return format_table(
        ["metric", base.policy, cand.policy, "improved"],
        rows,
        title=f"Verdict — {cand.policy} vs static {base.policy} "
        f"(scenario={cand.scenario}, seed={cand.seed})",
    )


def render_report(verdict: SchedVerdict) -> str:
    """The full human-readable run report ``repro sched`` prints.

    When the baseline *is* the candidate (``--no-baseline`` or a plain
    FIFO run) there is nothing to compare, so the comparison table and
    the PASS/FAIL verdict — which could only ever read FAIL against
    itself — are skipped in favor of the single run's tables.
    """
    single = verdict.baseline is verdict.candidate
    parts = []
    if not single:
        parts += [render_jobs(verdict.baseline), "", render_summary(verdict.baseline)]
    parts += [render_jobs(verdict.candidate), "", render_summary(verdict.candidate)]
    if not single:
        parts += [render_compare(verdict), ""]
    if verdict.crosschecks:
        rows = [
            [c.job_id, c.events, f"{c.divergence:.2e}", "clean" if c.ok else "DIRTY"]
            for c in verdict.crosschecks
        ]
        parts += [
            format_table(
                ["job", "resize/preempt events", "oracle divergence", "verdict"],
                rows,
                title="Elastic-oracle numerics cross-check "
                "(checkpoint v2 + resize/add_model replay)",
            ),
            "",
        ]
    if single:
        parts.append(
            f"Run complete — policy={verdict.candidate.policy}, no baseline "
            f"comparison requested; numerics "
            f"{'clean' if verdict.numerics_clean else 'DIRTY'}.\n"
        )
        return "\n".join(parts)
    status = "PASS" if verdict.passed else "FAIL"
    detail = (
        f"util {verdict.baseline.utilization:.4f} -> "
        f"{verdict.candidate.utilization:.4f}, "
        f"wait p95 {verdict.baseline.queue_wait_summary()['p95']:.4f}s -> "
        f"{verdict.candidate.queue_wait_summary()['p95']:.4f}s, "
        f"numerics {'clean' if verdict.numerics_clean else 'DIRTY'}"
    )
    parts.append(
        f"Verdict: {status} — elastic {verdict.candidate.policy} vs static "
        f"{verdict.baseline.policy}: {detail}.\n"
    )
    return "\n".join(parts)


def terminal_states(jobs: list[Job]) -> bool:
    """True when every job reached a terminal state (no starvation)."""
    return all(j.state in (JobState.DONE, JobState.REJECTED) for j in jobs)
