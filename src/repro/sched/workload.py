"""Seeded arrival-process workload generation for the scheduler.

A :class:`SchedScenario` describes a cluster and a statistical job mix;
:func:`generate_jobs` draws a concrete, fully deterministic job list
from it via :func:`repro.utils.derive_rng` (one named stream per
scenario × seed, so different scenarios at the same seed are
independent).  Arrivals are a Poisson-ish process (exponential
interarrivals), jobs are heterogeneous across workload family, pipeline
depth K, micro-batch count M, work size, priority and elastic N-range —
the mix the issue's multi-tenant service has to absorb.

Canned scenarios (``SCHED_SCENARIOS``):

* ``smoke``   — the CI scenario: 8 devices, 7 jobs arriving faster than
  static FIFO can drain them; the seeded FIFO-vs-fair-share comparison
  and the committed golden run here.
* ``rush``    — a 12-device cluster hit by a priority burst: exercises
  preemption (priority policy) and shrink-to-admit (fair policy).
* ``hetero``  — the smoke mix on a cluster with one slow node, so
  grants see per-device speeds and the balanced partition DP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.simcfg import calibration_for
from repro.sim.cluster import ClusterSpec
from repro.utils.seeding import derive_rng

from repro.sched.job import Job, JobSpec

__all__ = ["SchedScenario", "SCHED_SCENARIOS", "generate_jobs", "build_scenario"]

GIB = 2**30


@dataclass(frozen=True)
class SchedScenario:
    """A cluster shape plus the statistical description of its tenants."""

    name: str
    description: str
    nodes: int
    gpus_per_node: int
    num_jobs: int
    mean_interarrival: float  # seconds between submissions (exponential)
    families: tuple[str, ...] = ("gnmt", "bert", "awd")
    family_weights: tuple[float, ...] = (1.0, 1.0, 1.0)
    stage_options: tuple[int, ...] = (2, 3)
    micro_options: tuple[int, ...] = (4, 8)
    batch_range: tuple[int, int] = (30, 90)  # total batches, inclusive lo, exclusive hi
    pipeline_range: tuple[int, int] = (1, 3)  # requested N, inclusive
    max_extra_pipelines: int = 2  # elastic headroom above the request
    priorities: tuple[int, ...] = (0, 1, 2)
    priority_weights: tuple[float, ...] = (0.5, 0.3, 0.2)
    memory_bytes: int = 2 * GIB
    device_speed: tuple[float, ...] | None = None

    def cluster_spec(self) -> ClusterSpec:
        return ClusterSpec(
            nodes=self.nodes,
            gpus_per_node=self.gpus_per_node,
            memory_bytes=self.memory_bytes,
            device_speed=self.device_speed,
        )


SCHED_SCENARIOS: dict[str, SchedScenario] = {
    "smoke": SchedScenario(
        name="smoke",
        description="8 devices, 7 mixed jobs arriving near capacity",
        nodes=4,
        gpus_per_node=2,
        num_jobs=7,
        mean_interarrival=1.5,
    ),
    "rush": SchedScenario(
        name="rush",
        description="12 devices, 10 jobs with a high-priority burst",
        nodes=6,
        gpus_per_node=2,
        num_jobs=10,
        mean_interarrival=0.8,
        priority_weights=(0.3, 0.3, 0.4),
        pipeline_range=(1, 4),
    ),
    "hetero": SchedScenario(
        name="hetero",
        description="smoke mix on a cluster with one half-speed node",
        nodes=4,
        gpus_per_node=2,
        num_jobs=7,
        mean_interarrival=1.5,
        device_speed=(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.5, 0.5),
    ),
}


def _weighted_choice(rng, options, weights):
    total = sum(weights)
    probabilities = [w / total for w in weights]
    return options[rng.choice(len(options), p=probabilities)]


def generate_jobs(scenario: SchedScenario, seed: int) -> list[Job]:
    """Draw the scenario's deterministic job list at ``seed``."""
    rng = derive_rng("sched-arrivals", scenario.name, seed=seed)
    jobs: list[Job] = []
    now = 0.0
    for i in range(scenario.num_jobs):
        now += float(rng.exponential(scenario.mean_interarrival))
        family = _weighted_choice(rng, scenario.families, scenario.family_weights)
        cal = calibration_for(family)
        num_stages = int(rng.choice(scenario.stage_options))
        micro = [m for m in scenario.micro_options if cal.batch_size % m == 0]
        num_micro = int(rng.choice(micro)) if micro else 1
        lo, hi = scenario.batch_range
        total_batches = int(rng.integers(lo, hi))
        n_lo, n_hi = scenario.pipeline_range
        requested = int(rng.integers(n_lo, n_hi + 1))
        extra = int(rng.integers(0, scenario.max_extra_pipelines + 1))
        priority = _weighted_choice(rng, scenario.priorities, scenario.priority_weights)
        spec = JobSpec(
            job_id=f"j{i:02d}",
            family=family,
            num_stages=num_stages,
            num_micro=num_micro,
            total_batches=total_batches,
            priority=priority,
            weight=float(priority + 1),
            pipelines=requested,
            min_pipelines=1,
            max_pipelines=requested + extra,
            submit_time=round(now, 6),
        )
        jobs.append(Job(spec=spec))
    return jobs


def build_scenario(name: str, seed: int) -> tuple[ClusterSpec, list[Job]]:
    """Resolve a canned scenario name into (cluster spec, job list)."""
    try:
        scenario = SCHED_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCHED_SCENARIOS)}"
        ) from None
    return scenario.cluster_spec(), generate_jobs(scenario, seed)
