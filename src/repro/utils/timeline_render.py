"""ASCII Gantt rendering of simulator timelines.

Reproduces the visual layout of the paper's Figures 1, 2 and 7: one row
per device, forward cells as the micro-batch id, backward cells as the id
with a backtick, communication as ``~`` and idle as ``.``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, NamedTuple

__all__ = ["render_gantt", "TimelineSpan"]


class TimelineSpan(NamedTuple):
    """One occupied interval on a device row."""

    device: int
    start: float
    end: float
    kind: str  # "fwd" | "bwd" | "comm" | other
    label: str


_KIND_FILL = {"fwd": None, "bwd": None, "comm": "~"}


def render_gantt(
    spans: Iterable[TimelineSpan],
    n_devices: int,
    width: int = 100,
    end_time: float | None = None,
    device_names: Mapping[int, str] | None = None,
) -> str:
    """Render ``spans`` into a ``width``-column ASCII chart.

    Spans may overlap (processor sharing); later spans overwrite earlier
    ones in the render, which is fine for eyeballing schedule structure.
    """
    spans = list(spans)
    if not spans:
        return "(empty timeline)"
    horizon = end_time if end_time is not None else max(s.end for s in spans)
    if horizon <= 0:
        raise ValueError("timeline horizon must be positive")
    rows = [["."] * width for _ in range(n_devices)]
    scale = width / horizon
    for span in sorted(spans, key=lambda s: s.start):
        if span.device < 0 or span.device >= n_devices:
            raise ValueError(f"span device {span.device} outside 0..{n_devices - 1}")
        lo = int(span.start * scale)
        hi = max(lo + 1, int(span.end * scale))
        fill = _KIND_FILL.get(span.kind, "#")
        if fill is None:
            text = span.label if span.kind == "fwd" else span.label + "`"
            for i, col in enumerate(range(lo, min(hi, width))):
                rows[span.device][col] = text[i % len(text)] if text else "#"
        else:
            for col in range(lo, min(hi, width)):
                rows[span.device][col] = fill
    names = device_names or {}
    out = []
    for dev in range(n_devices):
        name = names.get(dev, f"GPU {dev + 1}")
        out.append(f"{name:>8} |" + "".join(rows[dev]) + "|")
    out.append(f"{'':>8}  0" + " " * (width - 8) + f"t={horizon:.3g}")
    return "\n".join(out)
