"""Plain-text table formatting for benchmark output.

Every benchmark prints the rows the corresponding paper figure reports;
this module renders them in aligned monospace so the shape comparisons
(who wins, by what factor) are readable in CI logs.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def _cell(value: Any, ndigits: int) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        magnitude = abs(value)
        if magnitude != 0 and (magnitude >= 1e5 or magnitude < 10 ** (-ndigits)):
            return f"{value:.{ndigits}g}"
        return f"{value:.{ndigits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    ndigits: int = 3,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(v, ndigits) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
