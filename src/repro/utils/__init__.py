"""Shared utilities: deterministic seeding, run statistics, table/Gantt rendering."""

from repro.utils.seeding import SeedSequence, derive_rng, set_global_seed
from repro.utils.stats import RunningMean, RunningStat, geometric_mean, speedup
from repro.utils.tables import format_table
from repro.utils.timeline_render import render_gantt

__all__ = [
    "SeedSequence",
    "derive_rng",
    "set_global_seed",
    "RunningMean",
    "RunningStat",
    "geometric_mean",
    "speedup",
    "format_table",
    "render_gantt",
]
