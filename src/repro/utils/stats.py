"""Small numerically-careful statistics helpers used across benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["RunningMean", "RunningStat", "geometric_mean", "speedup"]


@dataclass
class RunningMean:
    """Streaming arithmetic mean (Welford-style, no stored samples)."""

    count: int = 0
    mean: float = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        self.mean += (value - self.mean) / self.count

    def merge(self, other: "RunningMean") -> None:
        if other.count == 0:
            return
        total = self.count + other.count
        self.mean += (other.mean - self.mean) * (other.count / total)
        self.count = total


class RunningStat:
    """Streaming mean/variance/min/max via Welford's algorithm."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunningStat(count={self.count}, mean={self.mean:.4g}, "
            f"std={self.std:.4g}, min={self.min:.4g}, max={self.max:.4g})"
        )


def geometric_mean(values: list[float] | tuple[float, ...]) -> float:
    """Geometric mean; the right average for speedup ratios."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(baseline: float, ours: float) -> float:
    """``baseline / ours`` with a guard against nonsensical inputs."""
    if baseline <= 0 or ours <= 0:
        raise ValueError(f"speedup needs positive times, got {baseline}, {ours}")
    return baseline / ours
