"""Deterministic seeding helpers.

Every stochastic component in the library (weight init, dropout, data
generation, simulator jitter) draws from a :class:`numpy.random.Generator`
derived from an explicit seed.  Nothing reads global NumPy state, so two
runs with the same top-level seed are bit-identical regardless of import
order or interleaving — a prerequisite for the statistical-efficiency
experiments where systems are compared at fixed seeds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SeedSequence", "derive_rng", "set_global_seed"]

_GLOBAL_SEED: int = 0


def set_global_seed(seed: int) -> None:
    """Set the process-wide default seed used by :func:`derive_rng` callers
    that do not pass one explicitly."""
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)


def _mix(seed: int, *tags: str | int) -> int:
    """Hash ``seed`` with a sequence of string/int tags into a 64-bit seed.

    Uses BLAKE2 so that distinct tag paths give statistically independent
    streams; plain arithmetic mixing (seed + hash(tag)) correlates streams.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(int(seed).to_bytes(8, "little", signed=False))
    for tag in tags:
        h.update(str(tag).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little")


def derive_rng(*tags: str | int, seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the stream named by ``tags``.

    >>> rng = derive_rng("model-init", 3, seed=42)
    """
    base = _GLOBAL_SEED if seed is None else int(seed)
    return np.random.default_rng(_mix(base, *tags))


@dataclass
class SeedSequence:
    """A spawnable seed tree.

    ``SeedSequence(7).child("pipeline", 0).rng()`` gives the pipeline-0
    stream; children are independent of each other and of the parent.
    """

    seed: int
    path: tuple[str | int, ...] = field(default_factory=tuple)

    def child(self, *tags: str | int) -> "SeedSequence":
        return SeedSequence(self.seed, self.path + tags)

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(_mix(self.seed, *self.path))

    def integer(self) -> int:
        """A deterministic 63-bit integer for APIs that want an int seed."""
        return _mix(self.seed, *self.path) & ((1 << 63) - 1)
