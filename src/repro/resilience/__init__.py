"""Fault injection, failure detection, recovery and elastic scaling.

The paper's elastic-averaging architecture couples N pipelines only
through α-pulls toward a shared reference, which makes pipelines
individually expendable — this subsystem turns that observation into a
tested fault-tolerance story (see ``docs/resilience.md``):

* :mod:`repro.resilience.faults` — seeded, deterministic
  :class:`FaultPlan` schedules (crashes, stragglers, link faults)
  injected into the discrete-event simulator;
* :mod:`repro.resilience.detector` — heartbeat/timeout failure detection
  over the simulated progress clock and the trainer's iteration clock;
* :mod:`repro.resilience.recovery` — pluggable policies: evict (α = 1/N′
  renormalization), rejoin-from-reference, restart-from-checkpoint,
  straggler re-tuning;
* :mod:`repro.resilience.chaos` — the ``repro chaos`` harness: seeded
  end-to-end scenarios with recovery-timeline reports and an oracle
  cross-check of post-recovery numerics.
"""

from repro.resilience.chaos import (
    SCENARIOS,
    ChaosReport,
    ChaosScenario,
    run_scenario,
    tiny_chaos_spec,
)
from repro.resilience.detector import FailureReport, HeartbeatDetector, IterationHeartbeat
from repro.resilience.faults import FAULT_KINDS, FaultEvent, FaultInjector, FaultPlan
from repro.resilience.recovery import (
    EvictPipeline,
    RecoveryManager,
    RecoveryPolicy,
    RecoveryRecord,
    RejoinPipeline,
    RestartFromCheckpoint,
    RetunePlan,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FailureReport",
    "HeartbeatDetector",
    "IterationHeartbeat",
    "RecoveryPolicy",
    "RecoveryRecord",
    "RecoveryManager",
    "EvictPipeline",
    "RejoinPipeline",
    "RestartFromCheckpoint",
    "RetunePlan",
    "ChaosScenario",
    "ChaosReport",
    "SCENARIOS",
    "run_scenario",
    "tiny_chaos_spec",
]
