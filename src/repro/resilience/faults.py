"""Seeded, deterministic fault injection for the discrete-event simulator.

The paper's architecture — N loosely-coupled pipelines joined only
through the elastically-averaged reference — is what makes graceful
degradation *possible*; this module supplies the adversary.  A
:class:`FaultPlan` is a declarative, serializable schedule of
:class:`FaultEvent`\\ s (usable from configs and tests); a
:class:`FaultInjector` turns the plan into simulator processes that wrap
the ``sim.device`` / ``sim.link`` service rates at the scheduled times:

* ``pipeline_crash`` — one pipeline's processes die (the runner aborts
  and drains that pipeline; other pipelines only shared device time);
* ``device_crash`` — a device freezes: in-flight and future kernels make
  no progress until the optional restart;
* ``device_slowdown`` — a transient straggler: the device serves at
  ``peak/factor`` over a time window;
* ``link_degrade`` / ``link_partition`` — bandwidth divided by a factor,
  or the link severed entirely, over a window.

Every plan is reproducible: :meth:`FaultPlan.random` derives all draws
from a seed via the library's tagged RNG streams, and the injector's
processes ride the deterministic event heap, so a chaos run is exactly
replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.cluster import Cluster
from repro.sim.events import Simulator
from repro.sim.trace import SpanKind, TraceRecorder
from repro.utils.seeding import derive_rng

__all__ = ["FaultEvent", "FaultPlan", "FaultInjector", "FAULT_KINDS"]

FAULT_KINDS = (
    "pipeline_crash",
    "device_crash",
    "device_slowdown",
    "link_degrade",
    "link_partition",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` is a pipeline index (``pipeline_crash``), a device index
    (``device_*``) or a ``(src, dst)`` device pair (``link_*``).
    ``duration=None`` means permanent (no restart / no heal).
    ``factor`` is the slowdown/degradation multiple for transient kinds.
    """

    kind: str
    at: float
    target: int | tuple[int, int]
    duration: float | None = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if self.at < 0:
            raise ValueError(f"fault time must be non-negative, got {self.at}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"fault duration must be positive, got {self.duration}")
        if self.kind in ("device_slowdown", "link_degrade") and self.factor <= 1.0:
            raise ValueError(f"{self.kind} needs factor > 1, got {self.factor}")
        if self.kind.startswith("link"):
            if not (isinstance(self.target, tuple) and len(self.target) == 2):
                raise ValueError(f"{self.kind} target must be a (src, dst) pair")
        elif not isinstance(self.target, int):
            raise ValueError(f"{self.kind} target must be an index, got {self.target!r}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "at": self.at,
            "target": list(self.target) if isinstance(self.target, tuple) else self.target,
            "duration": self.duration,
            "factor": self.factor,
        }

    @staticmethod
    def from_dict(d: dict) -> "FaultEvent":
        target = d["target"]
        if isinstance(target, (list, tuple)):
            target = (int(target[0]), int(target[1]))
        return FaultEvent(
            kind=d["kind"],
            at=float(d["at"]),
            target=target,
            duration=None if d.get("duration") is None else float(d["duration"]),
            factor=float(d.get("factor", 1.0)),
        )


@dataclass
class FaultPlan:
    """A seeded schedule of faults, sorted by injection time."""

    events: list[FaultEvent] = field(default_factory=list)
    seed: int | None = None

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.at)

    def __len__(self) -> int:
        return len(self.events)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "events": [e.to_dict() for e in self.events]}

    @staticmethod
    def from_dict(d: dict) -> "FaultPlan":
        return FaultPlan(
            events=[FaultEvent.from_dict(e) for e in d.get("events", [])],
            seed=d.get("seed"),
        )

    @staticmethod
    def random(
        seed: int,
        horizon: float,
        num_pipelines: int,
        num_devices: int,
        num_events: int = 3,
        kinds: tuple[str, ...] = FAULT_KINDS,
        mean_duration_frac: float = 0.2,
    ) -> "FaultPlan":
        """A seeded random plan over ``[0, horizon)`` simulated seconds."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = derive_rng("fault-plan", num_pipelines, num_devices, seed=seed)
        events = []
        for _ in range(num_events):
            kind = kinds[int(rng.integers(len(kinds)))]
            at = float(rng.uniform(0.05, 0.9) * horizon)
            duration = float(
                max(rng.exponential(mean_duration_frac * horizon), 0.01 * horizon)
            )
            factor = float(rng.uniform(2.0, 10.0))
            if kind == "pipeline_crash":
                events.append(FaultEvent(kind, at, int(rng.integers(num_pipelines))))
            elif kind == "device_crash":
                events.append(
                    FaultEvent(kind, at, int(rng.integers(num_devices)), duration=duration)
                )
            elif kind == "device_slowdown":
                events.append(
                    FaultEvent(
                        kind, at, int(rng.integers(num_devices)),
                        duration=duration, factor=factor,
                    )
                )
            else:  # link_degrade / link_partition
                src = int(rng.integers(num_devices))
                dst = int((src + 1 + rng.integers(num_devices - 1)) % num_devices)
                events.append(
                    FaultEvent(
                        kind, at, (src, dst), duration=duration,
                        factor=factor if kind == "link_degrade" else 1.0,
                    )
                )
        return FaultPlan(events=events, seed=seed)


@dataclass
class InjectedFault:
    """Bookkeeping for one applied fault (used by the chaos report)."""

    event: FaultEvent
    applied_at: float | None = None
    reverted_at: float | None = None


class FaultInjector:
    """Installs a :class:`FaultPlan` as processes on a simulator.

    ``runner`` (a :class:`~repro.schedules.executor.PipelineSimRunner`)
    is only needed for ``pipeline_crash`` events; pure device/link plans
    work on a bare cluster.  Applied faults are logged and, when a trace
    recorder is given, recorded as ``FAULT`` spans so timelines show the
    outage windows.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        runner=None,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.runner = runner
        self.trace = trace
        self.log: list[InjectedFault] = []

    def install(self, plan: FaultPlan) -> None:
        """Spawn one injection process per event in the plan."""
        for event in plan.events:
            if event.kind == "pipeline_crash" and self.runner is None:
                raise ValueError("pipeline_crash events need a runner")
            entry = InjectedFault(event)
            self.log.append(entry)
            self.sim.process(self._inject(entry), name=f"fault.{event.kind}")

    # ------------------------------------------------------------------ #

    def _inject(self, entry: InjectedFault):
        event = entry.event
        delay = event.at - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay, name="fault.arm")
        entry.applied_at = self.sim.now
        self._apply(event)
        if event.duration is None:
            return  # permanent
        yield self.sim.timeout(event.duration, name="fault.window")
        self._revert(event)
        entry.reverted_at = self.sim.now
        self._record(event, entry.applied_at, entry.reverted_at)

    def _apply(self, event: FaultEvent) -> None:
        if event.kind == "pipeline_crash":
            self.runner.crash_pipeline(event.target)
        elif event.kind == "device_crash":
            self.cluster.devices[event.target].fail()
        elif event.kind == "device_slowdown":
            self.cluster.devices[event.target].set_slowdown(event.factor)
        elif event.kind == "link_degrade":
            self.cluster.link(*event.target).degrade(event.factor)
        elif event.kind == "link_partition":
            self.cluster.link(*event.target).sever()

    def _revert(self, event: FaultEvent) -> None:
        if event.kind == "pipeline_crash":
            return  # a dead process does not come back by itself
        if event.kind == "device_crash":
            self.cluster.devices[event.target].restore()
        elif event.kind == "device_slowdown":
            self.cluster.devices[event.target].set_slowdown(1.0)
        else:
            self.cluster.link(*event.target).heal()

    def _record(self, event: FaultEvent, start: float, end: float) -> None:
        if self.trace is None or end <= start:
            return
        device = event.target[0] if isinstance(event.target, tuple) else event.target
        if event.kind == "pipeline_crash":
            device = 0
        self.trace.record(device, start, end, SpanKind.FAULT, event.kind)

    def finalize(self, end_time: float | None = None) -> None:
        """Close out permanent faults so their windows appear in traces."""
        end = self.sim.now if end_time is None else end_time
        for entry in self.log:
            if entry.applied_at is not None and entry.reverted_at is None:
                self._record(entry.event, entry.applied_at, end)
