"""Failure detection over the simulated clock.

Two detectors, one per layer of the stack:

* :class:`HeartbeatDetector` — a simulator process that polls the
  executor's *progress clock* (``PipelineSimRunner.last_progress``,
  advanced on every completed FWD/BWD span) plus device capacity
  telemetry.  A pipeline silent for more than
  ``interval * miss_threshold`` simulated seconds is reported crashed; a
  frozen device is reported as a device crash; a device whose observed
  capacity has dropped below ``peak / straggler_factor`` is reported as
  a straggler.  Detection is *inference from silence* — the detector
  never reads the runner's crash bookkeeping, so tests can assert it
  fires iff a fault was actually injected.

* :class:`IterationHeartbeat` — the trainer-side analogue over the
  *iteration clock*: each live pipeline beats once per completed batch,
  and a pipeline more than ``miss_threshold`` batches behind the front
  is reported.  The numeric trainer has no wall clock, so batches are
  the only meaningful heartbeat unit there.

The heartbeat interval must exceed the longest *natural* silence (one
batch at the slowest tolerated speed), exactly as in a real deployment;
the chaos harness derives it from a fault-free profile run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.cluster import Cluster
from repro.sim.events import Simulator

__all__ = ["FailureReport", "HeartbeatDetector", "IterationHeartbeat"]


@dataclass(frozen=True)
class FailureReport:
    """One detection: what failed, when the detector noticed, and why."""

    kind: str  # "pipeline_crash" | "device_crash" | "link_partition" | "straggler"
    target: int
    detected_at: float
    evidence: str = ""
    #: observed slowdown multiple (stragglers only; 1.0 otherwise) — the
    #: retune policy degrades its cluster model by this factor.
    severity: float = 1.0


class HeartbeatDetector:
    """Polls runner progress and device telemetry on the sim clock."""

    def __init__(
        self,
        sim: Simulator,
        runner,
        cluster: Cluster | None = None,
        interval: float = 1.0,
        miss_threshold: float = 3.0,
        straggler_factor: float | None = None,
        max_polls: int = 100_000,
        telemetry=None,
    ) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.sim = sim
        self.runner = runner
        self.cluster = cluster
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.straggler_factor = straggler_factor
        self.max_polls = max_polls
        #: optional repro.obs MetricRegistry.  When set, device and link
        #: state is read from the ``sim.device.*`` / ``sim.link.*``
        #: gauges a ClusterTelemetrySampler keeps fresh, instead of
        #: polling the cluster's raw resources — the realistic setup
        #: where a detector watches a metrics bus, at the price of one
        #: sampling interval of staleness.  ``cluster`` may then be None.
        self.telemetry = telemetry
        self.reports: list[FailureReport] = []
        self._reported: set[tuple[str, int]] = set()
        self._stopped = False
        self._process = None

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("detector already started")
        self._process = self.sim.process(self._monitor(), name="resilience.detector")

    def stop(self) -> None:
        """Stop polling; the monitor process exits on its next wake-up."""
        self._stopped = True

    @property
    def crashed_pipelines(self) -> list[int]:
        return [r.target for r in self.reports if r.kind == "pipeline_crash"]

    # ------------------------------------------------------------------ #

    def _monitor(self):
        for _ in range(self.max_polls):
            yield self.sim.timeout(self.interval, name="detector.poll")
            if self._stopped:
                return
            self._poll()

    def _observe(self) -> list[tuple[int, bool, float, float]] :
        """Per-device (index, frozen, capacity, nominal) observations,
        from the registry gauges when telemetry is attached, else from
        the cluster's raw resources."""
        if self.telemetry is not None:
            out = []
            for _, labels, gauge in self.telemetry.series("sim.device.frozen"):
                device = int(labels["device"])
                out.append((
                    device,
                    gauge.value > 0.0,
                    self.telemetry.value("sim.device.capacity", device=device),
                    self.telemetry.value("sim.device.nominal_capacity", device=device),
                ))
            return sorted(out)
        if self.cluster is None:
            return []
        return [
            (d.index, d.compute.frozen, d.compute.capacity, d.compute.nominal_capacity)
            for d in self.cluster.devices
        ]

    def _observe_links(self) -> list[tuple[int, int]]:
        """Severed (src, dst) link pairs, from either telemetry source."""
        if self.telemetry is not None:
            return sorted(
                (int(labels["src"]), int(labels["dst"]))
                for _, labels, gauge in self.telemetry.series("sim.link.partitioned")
                if gauge.value > 0.0
            )
        if self.cluster is None:
            return []
        return [
            (src, dst)
            for (src, dst), link in self.cluster._links.items()
            if link.partitioned
        ]

    def _poll(self) -> None:
        now = self.sim.now
        frozen_devices = []
        severed_links = []
        for src, dst in self._observe_links():
            severed_links.append((src, dst))
            self._report(
                "link_partition",
                src,
                f"link {src}->{dst} unreachable (telemetry)",
            )
        for device, frozen, capacity, nominal in self._observe():
            if frozen:
                frozen_devices.append(device)
                self._report(
                    "device_crash",
                    device,
                    f"device {device} compute frozen (telemetry)",
                )
            elif (
                self.straggler_factor is not None
                and capacity > 0
                and nominal >= self.straggler_factor * capacity
            ):
                self._report(
                    "straggler",
                    device,
                    f"device {device} at {capacity / nominal:.2%} of peak",
                    severity=nominal / capacity,
                )
        if frozen_devices or severed_links:
            # Every pipeline has a stage on a dead device (straight-chain
            # placement) and a severed link starves them all, so pipeline
            # silence is explained — don't also raise per-pipeline crash
            # reports for the same outage.
            return
        deadline = self.interval * self.miss_threshold
        for pipeline, last in self.runner.last_progress.items():
            if now - last > deadline:
                self._report(
                    "pipeline_crash",
                    pipeline,
                    f"no progress for {now - last:.3f}s "
                    f"(> {self.miss_threshold:g} x {self.interval:g}s heartbeat)",
                )

    def _report(self, kind: str, target: int, evidence: str, severity: float = 1.0) -> None:
        key = (kind, target)
        if key in self._reported:
            return
        self._reported.add(key)
        self.reports.append(FailureReport(kind, target, self.sim.now, evidence, severity))


@dataclass
class IterationHeartbeat:
    """Trainer-level liveness over the iteration clock.

    Call :meth:`beat` whenever a pipeline finishes a batch; :meth:`check`
    reports pipelines more than ``miss_threshold`` batches behind the
    most advanced one.  Pipelines evicted from the trainer should be
    retired with :meth:`retire` so they stop being monitored.
    """

    miss_threshold: int = 2
    last_beat: dict[int, int] = field(default_factory=dict)
    _reported: set[int] = field(default_factory=set)

    def beat(self, pipeline: int, iteration: int) -> None:
        self.last_beat[pipeline] = iteration

    def retire(self, pipeline: int) -> None:
        self.last_beat.pop(pipeline, None)
        self._reported.discard(pipeline)

    def check(self) -> list[FailureReport]:
        if not self.last_beat:
            return []
        front = max(self.last_beat.values())
        out = []
        for pipeline, beat in sorted(self.last_beat.items()):
            if front - beat > self.miss_threshold and pipeline not in self._reported:
                self._reported.add(pipeline)
                out.append(
                    FailureReport(
                        "pipeline_crash",
                        pipeline,
                        float(front),
                        f"{front - beat} batches behind the front",
                    )
                )
        return out
