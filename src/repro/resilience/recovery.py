"""Recovery policies: what to do once a failure is detected.

The paper's elastic-averaging design makes pipelines *individually
expendable*: they couple only through α-pulls toward the shared
reference, so the natural recovery ladder is

* :class:`EvictPipeline` — drop the dead pipeline and renormalize
  α = 1/N′ (via :meth:`ElasticAveragingFramework.resize`); training
  continues at N−1 with the reference trajectory intact.  Cheapest, and
  the policy of record for single-pipeline crashes.
* :class:`RejoinPipeline` — a recovered (or replacement) pipeline
  re-enters seeded from the reference model, and α renormalizes back up.
  Because the newcomer starts *at* the reference, its first diluted
  deltas are ordinary descent steps — no transient shock to the
  consensus trajectory (property-tested).
* :class:`RestartFromCheckpoint` — for correlated failures (a device
  crash takes a stage of *every* pipeline): reload the last full
  checkpoint, including the averaging clock and per-module RNG streams,
  optionally shrinking to the checkpoint's N (``allow_resize``).
* :class:`RetunePlan` — stragglers don't kill anyone; they change the
  performance model.  Re-invoke the profiling tuner against a cluster
  spec degraded by the observed slowdown to re-pick (M, N).

:class:`RecoveryManager` routes :class:`FailureReport`\\ s to the first
policy that claims them and keeps a timeline of
:class:`RecoveryRecord`\\ s for the chaos report.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field

from repro.core.tuner import ProfilingTuner, TuningOutcome
from repro.resilience.detector import FailureReport

__all__ = [
    "RecoveryRecord",
    "RecoveryPolicy",
    "EvictPipeline",
    "RejoinPipeline",
    "RestartFromCheckpoint",
    "RetunePlan",
    "RecoveryManager",
]


@dataclass
class RecoveryRecord:
    """One applied recovery action, for the chaos timeline."""

    policy: str
    report: FailureReport
    recovered_at: float
    details: dict = field(default_factory=dict)


class RecoveryPolicy:
    """Base class: claims report kinds and mutates the trainer."""

    name = "base"
    handles_kinds: tuple[str, ...] = ()

    def handles(self, report: FailureReport) -> bool:
        return report.kind in self.handles_kinds

    def apply(self, trainer, report: FailureReport) -> dict:
        raise NotImplementedError


class EvictPipeline(RecoveryPolicy):
    """Drop the crashed pipeline; renormalize α = 1/N′; keep going."""

    name = "evict"
    handles_kinds = ("pipeline_crash",)

    def apply(self, trainer, report: FailureReport) -> dict:
        trainer.evict_pipeline(report.target)
        return {
            "evicted": report.target,
            "num_pipelines": trainer.num_pipelines,
            "alpha": trainer.framework.alpha,
        }


class RejoinPipeline(RecoveryPolicy):
    """Re-admit a pipeline seeded from the reference model.

    Not report-driven: re-admission happens when capacity returns, so
    call :meth:`apply` directly (``report=None``) or route a synthetic
    ``pipeline_rejoin`` report through a manager.
    """

    name = "rejoin"
    handles_kinds = ("pipeline_rejoin",)

    def __init__(self, seed: int | None = None) -> None:
        self.seed = seed

    def apply(self, trainer, report: FailureReport | None = None) -> dict:
        index = trainer.rejoin_pipeline(seed=self.seed)
        return {
            "joined_as": index,
            "num_pipelines": trainer.num_pipelines,
            "alpha": trainer.framework.alpha,
        }


class RestartFromCheckpoint(RecoveryPolicy):
    """Reload full training state after a correlated (device) failure."""

    name = "restart"
    handles_kinds = ("device_crash",)

    def __init__(self, path, allow_resize: bool = True) -> None:
        self.path = path
        self.allow_resize = allow_resize

    def apply(self, trainer, report: FailureReport) -> dict:
        from repro.core.checkpoint import load_trainer

        load_trainer(trainer, self.path, allow_resize=self.allow_resize)
        return {
            "checkpoint": str(self.path),
            "num_pipelines": trainer.num_pipelines,
            "alpha": trainer.framework.alpha,
        }


class RetunePlan(RecoveryPolicy):
    """Re-plan for a cluster degraded by an observed straggler.

    Holds everything needed to rebuild the profiling tuner; on a
    straggler report it marks the *straggling device* as slow in a
    heterogeneous :class:`~repro.sim.cluster.ClusterSpec`
    (``device_speed[target] = 1/severity``), re-runs the balanced
    partition + placement search (:func:`~repro.core.tuner.plan_for_spec`)
    so work shifts off the slow device, and re-picks (M, N) with the
    paper's tuning procedure against the re-partitioned pipeline.  The
    outcome is returned, not applied — re-partitioning a live run is the
    orchestrator's call.

    When the report names no valid device (target out of range), the
    whole cluster degrades uniformly — the pre-heterogeneity behavior.

    ``history`` (None, a :class:`~repro.tune.store.RunStore`, or a path)
    forwards the tuner run store so the re-pick consults recorded runs
    of this workload — the degraded cluster is exactly the held-out-spec
    case the transfer tier covers.  With None the re-tune is bit-for-bit
    the analytic one, including the returned details dict.
    """

    name = "retune"
    handles_kinds = ("straggler",)

    def __init__(
        self,
        profiler,
        memory_limit_bytes: float,
        m_candidates: list[int] | None = None,
        n_candidates: list[int] | None = None,
        history=None,
        workload: str = "",
    ) -> None:
        self.profiler = profiler
        self.memory_limit_bytes = memory_limit_bytes
        self.m_candidates = m_candidates
        self.n_candidates = n_candidates
        self.history = history
        self.workload = workload
        self.last_outcome: TuningOutcome | None = None

    def apply(self, trainer, report: FailureReport) -> dict:
        from repro.core.tuner import plan_for_spec

        spec = self.profiler.cluster_spec
        slowdown = max(report.severity, 1.0)
        if 0 <= report.target < spec.num_devices:
            speeds = list(spec.speed_vector())
            speeds[report.target] = speeds[report.target] / slowdown
            degraded_spec = dataclasses.replace(spec, device_speed=tuple(speeds))
        else:
            # no device to blame: degrade everything (legacy behavior)
            degraded_spec = dataclasses.replace(
                spec, peak_flops=spec.peak_flops / slowdown
            )
        partition, placement = plan_for_spec(
            self.profiler.layer_costs,
            degraded_spec,
            num_stages=self.profiler.partition.num_stages,
            activation_byte_scale=self.profiler.activation_byte_scale,
            param_byte_scale=self.profiler.param_byte_scale,
            history=self.history,
        )
        repartitioned = (
            partition.boundaries != self.profiler.partition.boundaries
            or placement != tuple(range(partition.num_stages))
        )
        degraded_profiler = copy.copy(self.profiler)
        degraded_profiler.cluster_spec = degraded_spec
        degraded_profiler.partition = partition
        degraded_profiler.placement = (
            placement if placement != tuple(range(partition.num_stages)) else None
        )
        tuner = ProfilingTuner(
            degraded_profiler,
            self.memory_limit_bytes,
            history=self.history,
            workload=self.workload,
        )
        outcome = tuner.tune(self.m_candidates, self.n_candidates)
        self.last_outcome = outcome
        details = {
            "slowdown": report.severity,
            "m": outcome.m,
            "n": outcome.n,
            "measured_batch_time": outcome.measured_batch_time,
            "boundaries": partition.boundaries,
            "placement": placement,
            "repartitioned": repartitioned,
        }
        if self.history is not None:
            details["records_consulted"] = outcome.records_consulted
            details["residual_applied"] = outcome.residual_applied
        return details


class RecoveryManager:
    """Routes failure reports to policies and keeps the timeline."""

    def __init__(self, policies: list[RecoveryPolicy]) -> None:
        self.policies = policies
        self.records: list[RecoveryRecord] = []
        self.unhandled: list[FailureReport] = []

    def handle(self, report: FailureReport, trainer, now: float) -> RecoveryRecord | None:
        for policy in self.policies:
            if policy.handles(report):
                details = policy.apply(trainer, report)
                record = RecoveryRecord(policy.name, report, now, details)
                self.records.append(record)
                return record
        self.unhandled.append(report)
        return None
