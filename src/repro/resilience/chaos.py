"""Chaos harness: seeded end-to-end fault scenarios with recovery reports.

``repro chaos --scenario smoke --seed 0`` runs one named scenario through
two coordinated phases and emits a recovery-timeline report:

* **Simulation phase** — a 3-pipeline, 4-stage run on the discrete-event
  simulator, first fault-free (to calibrate the heartbeat interval and
  the throughput baseline), then with the scenario's
  :class:`~repro.resilience.faults.FaultPlan` installed and a
  :class:`~repro.resilience.detector.HeartbeatDetector` watching.  This
  phase yields wall-clock metrics: time-to-detect (seconds of simulated
  time between injection and the detector's report), time-to-recover
  (until every surviving pipeline has demonstrably made progress again,
  or the faulted component was restored) and throughput lost.

* **Numerics phase** — the same failure replayed against a real-numerics
  :class:`~repro.core.trainer.AvgPipeTrainer` on a tiny AWD workload,
  with an :class:`~repro.resilience.detector.IterationHeartbeat` and a
  :class:`~repro.resilience.recovery.RecoveryManager` in the loop.  This
  phase yields the statistical cost: final reference loss vs the
  fault-free baseline (must stay within the scenario's documented
  tolerance) and a post-recovery differential cross-check against the
  verify subsystem's elastic oracle
  (:func:`repro.verify.elastic_equivalence_check`).

A scenario *recovers* iff every detected failure was handled by a policy
and the final loss lands within tolerance; ``--no-recovery`` disables the
policies so the same seed demonstrably fails (the CI job asserts the
non-zero exit).  Everything is seeded — same seed, same report.
"""

from __future__ import annotations

import dataclasses
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.trainer import GRAD_CLIP, AvgPipeTrainer, _batches
from repro.resilience.detector import (
    FailureReport,
    HeartbeatDetector,
    IterationHeartbeat,
)
from repro.resilience.faults import FaultEvent, FaultInjector, FaultPlan
from repro.resilience.recovery import (
    EvictPipeline,
    RecoveryManager,
    RestartFromCheckpoint,
    RetunePlan,
)
from repro.schedules import OneFOneBSchedule, PipelineSimRunner, StageCosts
from repro.sim import ClusterSpec, Simulator, make_cluster

__all__ = ["ChaosScenario", "ChaosReport", "SCENARIOS", "run_scenario", "tiny_chaos_spec"]

GIB = 2**30


# --------------------------------------------------------------------- #
# scenarios


@dataclass(frozen=True)
class ChaosScenario:
    """One named, seeded fault scenario."""

    name: str
    description: str
    kind: str  # a FAULT_KINDS entry
    #: |final loss − fault-free loss| bound for the numerics phase;
    #: calibrated in docs/resilience.md.
    loss_tolerance: float
    #: slowdown / degradation multiple for transient kinds
    factor: float = 4.0
    num_pipelines: int = 3
    epochs: int = 3


SCENARIOS: dict[str, ChaosScenario] = {
    s.name: s
    for s in [
        ChaosScenario(
            name="smoke",
            description="crash 1 of N=3 pipelines mid-run; recover by eviction",
            kind="pipeline_crash",
            loss_tolerance=0.25,
        ),
        ChaosScenario(
            name="blackout",
            description="one device freezes for a window; restart from checkpoint",
            kind="device_crash",
            loss_tolerance=0.25,
        ),
        ChaosScenario(
            name="straggler",
            description="one device at 1/4 speed for a window; re-tune (M, N)",
            kind="device_slowdown",
            loss_tolerance=0.0,  # performance fault: numerics unaffected
        ),
        ChaosScenario(
            name="partition",
            description="an inter-stage link severed for a window, then healed",
            kind="link_partition",
            loss_tolerance=0.0,  # performance fault: numerics unaffected
        ),
    ]
}


@dataclass
class ChaosReport:
    """Recovery-timeline report for one scenario run."""

    scenario: str
    seed: int
    recovery_enabled: bool
    sim: dict = field(default_factory=dict)
    numerics: dict = field(default_factory=dict)
    timeline: list[str] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "recovery_enabled": self.recovery_enabled,
            "recovered": self.recovered,
            "sim": self.sim,
            "numerics": self.numerics,
            "timeline": self.timeline,
            "failures": self.failures,
        }

    def render(self) -> str:
        lines = [
            f"chaos scenario {self.scenario!r} (seed {self.seed}, "
            f"recovery {'on' if self.recovery_enabled else 'off'})",
            "",
            "timeline:",
        ]
        lines += [f"  {entry}" for entry in self.timeline]
        if self.sim:
            lines += [
                "",
                "simulation phase:",
                f"  time to detect:    {self.sim['time_to_detect']:.4f} s",
                f"  time to recover:   {self.sim['time_to_recover']:.4f} s",
                f"  throughput lost:   {self.sim['throughput_lost']:.1%}",
            ]
        if self.numerics:
            lines += ["", "numerics phase:"]
            if "time_to_detect_rounds" in self.numerics:
                lines += [
                    f"  detect / recover:  {self.numerics['time_to_detect_rounds']} / "
                    f"{self.numerics.get('time_to_recover_rounds')} rounds after fault",
                ]
            lines += [
                f"  fault-free loss:   {self.numerics['baseline_loss']:.4f}",
                f"  final loss:        {self.numerics['final_loss']:.4f}  "
                f"(delta {self.numerics['loss_delta']:+.4f}, "
                f"tolerance {self.numerics['loss_tolerance']:.2f})",
            ]
            if self.numerics.get("oracle_divergence") is not None:
                lines.append(
                    f"  oracle divergence: {self.numerics['oracle_divergence']:.3e}"
                )
        lines += ["", f"verdict: {'RECOVERED' if self.recovered else 'UNRECOVERED'}"]
        lines += [f"  FAIL: {f}" for f in self.failures]
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# numerics workload


def tiny_chaos_spec(batch_size: int = 8):
    """A fast AWD-style workload (low-entropy Markov corpus) for the
    numerics phase — small enough that a full chaos run is a CI job."""
    from repro.data import LMConfig, batchify_lm, make_lm_corpus
    from repro.models import AWDConfig, build_awd_lstm
    from repro.models.registry import WorkloadSpec
    from repro.optim import SGD
    from repro.tensor import no_grad

    cfg = AWDConfig(vocab_size=10, embed_dim=8, hidden_dim=10, num_layers=1, bptt=6,
                    dropout=0.0, weight_drop=0.0)
    tokens, _, _ = make_lm_corpus(LMConfig(corpus_len=700, vocab_size=10, branching=2, seed=2))

    def loader(bs, seed):
        return batchify_lm(tokens, batch_size=bs, bptt=cfg.bptt)

    def evaluate(model):
        batches = batchify_lm(tokens[:200], batch_size=4, bptt=cfg.bptt)
        model.eval()
        with no_grad():
            loss = float(np.mean([model.loss(b).item() for b in batches]))
        model.train()
        return loss

    return WorkloadSpec(
        name="tiny-awd-chaos",
        build_model=lambda: build_awd_lstm(cfg),
        make_train_loader=loader,
        evaluate=evaluate,
        make_optimizer=lambda m: SGD(m.parameters(), lr=0.5),
        target=0.0,
        metric_mode="min",
        metric_name="loss",
        batch_size=batch_size,
        paper_devices=4,
    )


# --------------------------------------------------------------------- #
# simulation phase


def _make_runner():
    sim = Simulator()
    cluster = make_cluster(sim, 4, spec=ClusterSpec(nodes=2, gpus_per_node=2))
    costs = StageCosts(
        fwd_flops=(4.0e6,) * 4,
        act_out_bytes=(2.0e6,) * 4,
        stash_bytes=(6.0e6,) * 4,
        param_bytes=(1_000_000,) * 4,
    )
    runner = PipelineSimRunner(
        cluster,
        OneFOneBSchedule(versions=1),
        costs,
        num_micro=8,
        mb_size=8.0,
        num_pipelines=3,
        with_reference_model=True,
    )
    return sim, cluster, runner


def _sim_phase(scenario: ChaosScenario, seed: int, report: ChaosReport) -> None:
    iterations = 10

    # Fault-free calibration run: heartbeat interval and throughput base.
    _, _, base_runner = _make_runner()
    base = base_runner.run(iterations=iterations)
    batch_time = base.batch_time
    base_throughput = scenario.num_pipelines * iterations / base.total_time

    sim, cluster, runner = _make_runner()
    # Off the detector's poll grid (k * batch_time), so detection is
    # strictly after injection even for telemetry-visible faults.
    fault_at = 0.37 * base.total_time
    window = 0.3 * base.total_time
    if scenario.kind == "pipeline_crash":
        event = FaultEvent("pipeline_crash", fault_at, target=1)
    elif scenario.kind == "device_crash":
        event = FaultEvent("device_crash", fault_at, target=1, duration=window)
    elif scenario.kind == "device_slowdown":
        event = FaultEvent(
            "device_slowdown", fault_at, target=1, duration=window, factor=scenario.factor
        )
    else:  # link_partition
        event = FaultEvent("link_partition", fault_at, target=(0, 1), duration=window)
    plan = FaultPlan(events=[event], seed=seed)

    injector = FaultInjector(sim, cluster, runner=runner, trace=runner.trace)
    injector.install(plan)
    detector = HeartbeatDetector(
        sim,
        runner,
        cluster=cluster,
        interval=batch_time,
        miss_threshold=2.0,
        straggler_factor=2.0,
    )
    detector.start()
    result = runner.run(iterations=iterations)
    injector.finalize()

    report.timeline.append(
        f"t={fault_at:.4f}s  inject {event.kind} on "
        f"{'pipeline' if event.kind == 'pipeline_crash' else 'device/link'} {event.target}"
    )

    expected = {
        "pipeline_crash": "pipeline_crash",
        "device_crash": "device_crash",
        "device_slowdown": "straggler",
        "link_partition": "link_partition",
    }[scenario.kind]
    matching = [r for r in detector.reports if r.kind == expected]
    spurious = [r for r in detector.reports if r.detected_at < fault_at]
    if spurious:
        report.failures.append(
            f"detector fired before any fault was injected: {spurious[0]}"
        )
    if not matching:
        report.failures.append(
            f"injected {scenario.kind} at t={fault_at:.4f}s was never detected"
        )
        time_to_detect = float("nan")
        detected_at = None
    else:
        first = matching[0]
        detected_at = first.detected_at
        time_to_detect = detected_at - fault_at
        report.timeline.append(
            f"t={detected_at:.4f}s  detector: {first.kind} on {first.target} "
            f"({first.evidence})"
        )

    time_to_recover = _sim_recovery_time(
        scenario, injector, detector, runner, detected_at, fault_at
    )
    if time_to_recover is not None:
        report.timeline.append(
            f"t={fault_at + time_to_recover:.4f}s  recovered "
            f"(survivors progressing / fault healed)"
        )

    faulted_iterations = sum(runner.iterations_completed)
    faulted_throughput = (
        faulted_iterations / result.total_time if result.total_time > 0 else 0.0
    )
    report.sim = {
        "fault_plan": plan.to_dict(),
        "batch_time_fault_free": batch_time,
        "time_to_detect": time_to_detect,
        "time_to_recover": float("nan") if time_to_recover is None else time_to_recover,
        "iterations_completed": list(runner.iterations_completed),
        "throughput_fault_free": base_throughput,
        "throughput_faulted": faulted_throughput,
        "throughput_lost": 1.0 - faulted_throughput / base_throughput,
        "detected": [dataclasses.asdict(r) for r in detector.reports],
    }
    if time_to_detect == time_to_detect and time_to_detect <= 0:  # not NaN
        report.failures.append("time-to-detect is not positive")
    if time_to_recover is None:
        report.failures.append("time-to-recover could not be established")
    elif time_to_recover <= 0:
        report.failures.append("time-to-recover is not positive")


def _sim_recovery_time(
    scenario: ChaosScenario,
    injector: FaultInjector,
    detector: HeartbeatDetector,
    runner: PipelineSimRunner,
    detected_at: float | None,
    fault_at: float,
) -> float | None:
    """Seconds from injection until the system was demonstrably healthy.

    For transient faults that's the heal/restore instant; for a pipeline
    crash it's the first moment *every* survivor has completed new work
    after the detection (the survivors' pipelines are confirmed live at
    the reduced degree N−1).
    """
    if scenario.kind != "pipeline_crash":
        entry = injector.log[0]
        if entry.reverted_at is None:
            return None
        return entry.reverted_at - fault_at
    if detected_at is None:
        return None
    crashed = {r.target for r in detector.reports if r.kind == "pipeline_crash"}
    survivors = [p for p in range(runner.num_pipelines) if p not in crashed]
    confirm = []
    for p in survivors:
        after = [
            s.end
            for s in runner.trace.compute_spans()
            if s.pipeline == p and s.end > detected_at
        ]
        if not after:
            return None
        confirm.append(min(after))
    return max(confirm) - fault_at


# --------------------------------------------------------------------- #
# numerics phase


@dataclass
class _NumericsRun:
    trainer: AvgPipeTrainer
    final_loss: float
    history: list[float]
    rounds: int
    crash_round: int | None = None
    detect_round: int | None = None
    recover_round: int | None = None
    manager: RecoveryManager | None = None
    timeline: list[str] = field(default_factory=list)


def _train_rounds(
    spec,
    seed: int,
    epochs: int,
    num_pipelines: int,
    crash_round: int | None = None,
    crash_id: int = 1,
    recovery: bool = True,
    miss_threshold: int = 2,
    checkpoint_round: int | None = None,
    checkpoint_path: Path | None = None,
    blackout: bool = False,
) -> _NumericsRun:
    """The trainer's epoch loop, instrumented for chaos.

    Identical to :meth:`AvgPipeTrainer.train` when no fault fires (the
    baseline runs through this same loop).  A ``pipeline_crash`` makes
    pipeline ``crash_id`` stop consuming batches and posting deltas from
    round ``crash_round``; a ``blackout`` reseeds *every* model at
    ``crash_round`` (a device crash kills a stage of each pipeline) and
    recovery means reloading the checkpoint taken at ``checkpoint_round``.
    """
    trainer = AvgPipeTrainer(spec, seed=seed, num_pipelines=num_pipelines,
                             max_epochs=epochs)
    heartbeat = IterationHeartbeat(miss_threshold=miss_threshold)
    policies = []
    if recovery:
        policies = [EvictPipeline()]
        if checkpoint_path is not None:
            policies.append(RestartFromCheckpoint(checkpoint_path))
    manager = RecoveryManager(policies)
    run = _NumericsRun(trainer, float("nan"), [], 0, crash_round=crash_round,
                       manager=manager)

    live = list(range(num_pipelines))  # stable ids; position = live.index(id)
    crashed: set[int] = set()
    rnd = 0
    blackout_hit = False
    blackout_pending = False

    def maybe_fault() -> None:
        nonlocal blackout_hit, blackout_pending
        if crash_round is None:
            return
        if blackout:
            if rnd == crash_round and not blackout_hit:
                blackout_hit = True
                blackout_pending = True
                _apply_blackout(trainer, seed)
                run.timeline.append(f"round {rnd}: device crash wipes all pipelines")
            elif blackout_pending and rnd > crash_round:
                # Detection (sim-phase telemetry) and restart land a round
                # after the outage — the work in between is lost.
                blackout_pending = False
                run.detect_round = rnd
                report = FailureReport("device_crash", 1, float(rnd),
                                       "correlated stage failure")
                record = manager.handle(report, trainer, float(rnd))
                if record is not None:
                    run.recover_round = rnd
                    run.timeline.append(
                        f"round {rnd}: restart from checkpoint ({record.details})"
                    )
        elif rnd == crash_round and crash_id not in crashed and crash_id in live:
            crashed.add(crash_id)
            run.timeline.append(f"round {rnd}: pipeline {crash_id} crashes")

    def end_round() -> None:
        nonlocal rnd
        trainer.framework.end_iteration()
        rnd += 1
        for report in heartbeat.check():
            dead = report.target
            if run.detect_round is None:
                run.detect_round = rnd
            run.timeline.append(
                f"round {rnd}: heartbeat detects pipeline {dead} dead "
                f"({report.evidence})"
            )
            positional = dataclasses.replace(report, target=live.index(dead))
            record = manager.handle(positional, trainer, float(rnd))
            if record is not None:
                live.remove(dead)
                crashed.discard(dead)
                heartbeat.retire(dead)
                if run.recover_round is None:
                    run.recover_round = rnd
                run.timeline.append(
                    f"round {rnd}: evicted pipeline {dead}; "
                    f"N={trainer.num_pipelines}, alpha={trainer.framework.alpha:.4f}"
                )

    for epoch in range(epochs):
        pending = 0
        for batch in _batches(trainer.loader):
            maybe_fault()
            alive = [i for i in live if i not in crashed]
            ident = alive[pending % len(alive)]
            pos = live.index(ident)
            before = trainer.framework.capture(pos)
            trainer._compute_gradients(pos, batch)
            opt = trainer.optimizers[pos]
            opt.clip_grad_norm(GRAD_CLIP)
            opt.step()
            trainer.framework.commit(pos, before)
            heartbeat.beat(ident, rnd)
            pending += 1
            if pending >= len(alive):
                pending = 0
                end_round()
            if (
                checkpoint_round is not None
                and rnd == checkpoint_round
                and checkpoint_path is not None
                and not checkpoint_path.exists()
            ):
                from repro.core.checkpoint import save_trainer

                save_trainer(trainer, checkpoint_path)
                run.timeline.append(f"round {rnd}: checkpoint saved")
        if pending:
            pending = 0
            end_round()
        trainer.framework.reference_model(trainer.eval_template)
        run.history.append(spec.evaluate(trainer.eval_template))
    run.final_loss = run.history[-1]
    run.rounds = rnd
    return run


def _apply_blackout(trainer: AvgPipeTrainer, seed: int) -> None:
    """A device crash takes one stage of *every* pipeline: all processes
    die and restart with fresh (untrained) weights — the state a restart
    without a checkpoint would be left with."""
    for i, model in enumerate(trainer.models):
        fresh = trainer.spec.build_model().seed(seed * 31 + 17 * i + 5)
        model.load_state_dict(fresh.state_dict())
    trainer.framework.reference = trainer.framework._average_state()
    trainer.framework._discard_round()


def _numerics_phase(scenario: ChaosScenario, seed: int, recovery: bool,
                    report: ChaosReport) -> None:
    if scenario.kind in ("device_slowdown", "link_partition"):
        _retune_phase(scenario, seed, recovery, report)
        return

    spec = tiny_chaos_spec()
    crash_round = 4
    baseline = _train_rounds(spec, seed, scenario.epochs, scenario.num_pipelines)

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "chaos.npz"
        if scenario.kind == "pipeline_crash":
            faulted = _train_rounds(
                spec, seed, scenario.epochs, scenario.num_pipelines,
                crash_round=crash_round, crash_id=1, recovery=recovery,
            )
        else:  # device_crash
            faulted = _train_rounds(
                spec, seed, scenario.epochs, scenario.num_pipelines,
                crash_round=crash_round, recovery=recovery,
                checkpoint_round=2, checkpoint_path=ckpt, blackout=True,
            )
        oracle_divergence = None
        if recovery:
            from repro.verify import elastic_equivalence_check

            oracle_divergence = elastic_equivalence_check(
                faulted.trainer.framework, spec.build_model, rounds=2, seed=seed
            )

    report.timeline.extend(faulted.timeline)
    delta = faulted.final_loss - baseline.final_loss
    report.numerics = {
        "baseline_loss": baseline.final_loss,
        "final_loss": faulted.final_loss,
        "loss_delta": delta,
        "loss_tolerance": scenario.loss_tolerance,
        "loss_history": faulted.history,
        "baseline_history": baseline.history,
        "crash_round": faulted.crash_round,
        "detect_round": faulted.detect_round,
        "recover_round": faulted.recover_round,
        "pipelines_after": faulted.trainer.num_pipelines,
        "alpha_after": faulted.trainer.framework.alpha,
        "oracle_divergence": oracle_divergence,
        "recovery_records": [
            {"policy": r.policy, "at_round": r.recovered_at, **r.details}
            for r in (faulted.manager.records if faulted.manager else [])
        ],
    }
    if faulted.detect_round is not None and faulted.crash_round is not None:
        report.numerics["time_to_detect_rounds"] = (
            faulted.detect_round - faulted.crash_round
        )
        if report.numerics["time_to_detect_rounds"] <= 0:
            report.failures.append("numerics time-to-detect is not positive")
    if faulted.recover_round is not None and faulted.crash_round is not None:
        report.numerics["time_to_recover_rounds"] = (
            faulted.recover_round - faulted.crash_round
        )

    if faulted.detect_round is None:
        report.failures.append("numerics phase: failure was never detected")
    if faulted.manager is not None and faulted.manager.unhandled:
        report.failures.append(
            f"{len(faulted.manager.unhandled)} detected failure(s) had no "
            "recovery policy (recovery disabled?)"
        )
    if abs(delta) > scenario.loss_tolerance:
        report.failures.append(
            f"final loss delta {delta:+.4f} exceeds tolerance "
            f"{scenario.loss_tolerance:.2f}"
        )
    if oracle_divergence is not None and oracle_divergence > 1e-4:
        report.failures.append(
            f"post-recovery framework diverges from the elastic oracle by "
            f"{oracle_divergence:.3e}"
        )


def _retune_phase(scenario: ChaosScenario, seed: int, recovery: bool,
                  report: ChaosReport) -> None:
    """Performance faults leave the numerics untouched; the numerics-side
    response to a straggler is re-picking (M, N) for the degraded cluster."""
    report.numerics = {
        "baseline_loss": 0.0,
        "final_loss": 0.0,
        "loss_delta": 0.0,
        "loss_tolerance": scenario.loss_tolerance,
        "oracle_divergence": None,
    }
    if scenario.kind != "device_slowdown":
        return
    stragglers = [
        FailureReport(**{k: v for k, v in r.items()})
        for r in report.sim.get("detected", [])
        if r["kind"] == "straggler"
    ]
    if not stragglers:
        return
    if not recovery:
        report.failures.append("straggler detected but retuning disabled")
        return
    from repro.core.profiler import Profiler
    from repro.graph import LayerCost, partition_model

    spec = ClusterSpec(nodes=2, gpus_per_node=2)
    layer_costs = [
        LayerCost(f"l{i}", flops_per_sample=2.0e5,
                  activation_bytes_per_sample=2.0e4, param_bytes=500_000)
        for i in range(8)
    ]
    partition = partition_model(
        layer_costs, 4, bandwidth_bytes_per_sec=spec.inter_node_bandwidth,
        flops_per_sec=spec.peak_flops,
    )
    profiler = Profiler(
        layer_costs=layer_costs, partition=partition,
        schedule=OneFOneBSchedule(versions=1), cluster_spec=spec,
        batch_size=64, with_reference_model=True,
    )
    retune = RetunePlan(profiler, memory_limit_bytes=2 * GIB,
                        n_candidates=[1, 2, 3])
    details = retune.apply(None, stragglers[0])
    report.numerics["retune"] = details
    action = "re-partitioned" if details.get("repartitioned") else "plan kept"
    report.timeline.append(
        f"retune for {details['slowdown']:.1f}x straggler: "
        f"M={details['m']}, N={details['n']}, {action} "
        f"(cut={details['boundaries']}, placement={details['placement']})"
    )


# --------------------------------------------------------------------- #
# entry point


def run_scenario(name: str, seed: int = 0, recovery: bool = True) -> ChaosReport:
    """Run one named scenario end to end; see the module docstring."""
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; one of {sorted(SCENARIOS)}")
    scenario = SCENARIOS[name]
    report = ChaosReport(scenario=name, seed=seed, recovery_enabled=recovery)
    _sim_phase(scenario, seed, report)
    _numerics_phase(scenario, seed, recovery, report)
    return report
