"""Deterministic residual correction on top of the Eqs. 1-8 predictor.

The analytic predictor is a *model*; recorded runs are *measurements*.
The residual layer learns the multiplicative gap between them —
``measured / predicted`` per setting — and re-ranks candidate (M, N)
settings by corrected time.  Everything is deterministic at fit and at
predict time: no RNG, no wall clock, stable tie-breaks (the ARBO
predict→execute→feedback loop, grounded in our checkable simulator).

Three estimators, strongest first:

* **exact** — records at this (M, N): the geometric mean of their
  measured/predicted ratios.  Records from the *same context* (same
  cluster/schedule/partition fingerprint) shadow transfer-tier records
  for the same setting, so a seen configuration is ranked by its own
  measurement — the learned ranking can never do worse than analytic on
  seen configs.
* **least squares** — with >= :data:`MIN_FIT_POINTS` distinct settings,
  ridge-regularized least squares of the log-ratio over engineered
  features of (M, N) (:func:`features`), clipped to
  :data:`CORRECTION_CLIP` so sparse fits cannot extrapolate wildly.
* **k-NN** — below that, inverse-distance interpolation of log-ratios
  in (log2 M, log2 N) space with deterministic tie-breaks.

OOM-flagged records additionally veto their setting outright —
a measured out-of-memory beats any analytic feasibility claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.predictor import Prediction, Predictor, fits_memory
from repro.tune.store import RunStore, TuneRecord

__all__ = [
    "MIN_FIT_POINTS",
    "CORRECTION_CLIP",
    "features",
    "FEATURE_NAMES",
    "ResidualModel",
    "TuneDecision",
    "LearnedPredictor",
    "select_records",
    "learned_memory_headroom",
]

#: distinct (M, N) points needed before the least-squares surface is
#: trusted over plain k-NN interpolation.
MIN_FIT_POINTS = 3

#: correction multipliers are clipped here — a residual model should
#: nudge the ranking, not replace the analytic model.
CORRECTION_CLIP = (0.25, 4.0)

#: ridge regularizer: keeps the normal equations solvable (and the fit
#: deterministic) on degenerate feature sets, e.g. all records at N=1.
RIDGE = 1e-6

FEATURE_NAMES = ("1", "log2M", "log2N", "log2M^2", "log2N^2", "log2M*log2N")


def features(m: int, n: int) -> np.ndarray:
    """Engineered features of one setting (quadratic in log-degrees)."""
    lm = math.log2(m)
    ln = math.log2(n)
    return np.array([1.0, lm, ln, lm * lm, ln * ln, lm * ln])


def _usable(records: Sequence[TuneRecord]) -> list[TuneRecord]:
    return [
        r
        for r in records
        if not r.oom
        and r.measured_batch_time is not None
        and r.measured_batch_time > 0
        and r.predicted_batch_time > 0
    ]


@dataclass
class ResidualModel:
    """Fitted measured/predicted correction over (M, N) settings."""

    #: per-setting geometric-mean multiplier (the exact tier)
    exact: dict[tuple[int, int], float] = field(default_factory=dict)
    #: settings a record measured as out-of-memory
    oom: frozenset = frozenset()
    #: ridge least-squares coefficients over :func:`features`, or None
    coef: np.ndarray | None = None
    #: (m, n, mean log-ratio) points for the k-NN fallback
    points: tuple[tuple[int, int, float], ...] = ()
    #: how many records informed the fit
    records_used: int = 0

    @classmethod
    def fit(
        cls,
        records: Sequence[TuneRecord],
        context: str | None = None,
        ridge: float = RIDGE,
    ) -> "ResidualModel":
        """Fit from records; ``context`` marks the exact-match tier whose
        same-setting records shadow transfer-tier ones."""
        usable = _usable(records)
        oom = frozenset((r.m, r.n) for r in records if r.oom)
        by_setting: dict[tuple[int, int], list[TuneRecord]] = {}
        for r in usable:
            by_setting.setdefault((r.m, r.n), []).append(r)
        exact: dict[tuple[int, int], float] = {}
        points: list[tuple[int, int, float]] = []
        for setting in sorted(by_setting):
            group = by_setting[setting]
            if context is not None:
                same = [r for r in group if r.context == context]
                if same:
                    group = same
            # canonical order: float summation is not associative, so an
            # unsorted group would make the fit depend on record order
            log_ratios = [
                math.log(r.measured_batch_time / r.predicted_batch_time)
                for r in sorted(group, key=TuneRecord.sort_key)
            ]
            mean = sum(log_ratios) / len(log_ratios)
            exact[setting] = math.exp(mean)
            points.append((setting[0], setting[1], mean))
        coef = None
        if len(points) >= MIN_FIT_POINTS:
            x = np.stack([features(m, n) for m, n, _ in points])
            y = np.array([lr for _, _, lr in points])
            a = x.T @ x + ridge * np.eye(x.shape[1])
            coef = np.linalg.solve(a, x.T @ y)
        return cls(
            exact=exact,
            oom=oom,
            coef=coef,
            points=tuple(points),
            records_used=len(records),
        )

    @property
    def trained(self) -> bool:
        return bool(self.exact) or bool(self.oom)

    def known_oom(self, m: int, n: int) -> bool:
        """A record measured this exact setting out-of-memory."""
        return (m, n) in self.oom

    def correction(self, m: int, n: int) -> float:
        """Multiplier on the analytic batch time for setting (m, n)."""
        hit = self.exact.get((m, n))
        if hit is not None:
            return hit
        lo, hi = CORRECTION_CLIP
        if self.coef is not None:
            return float(min(max(math.exp(features(m, n) @ self.coef), lo), hi))
        if self.points:
            lm, ln = math.log2(m), math.log2(n)
            ranked = sorted(
                self.points,
                key=lambda p: ((math.log2(p[0]) - lm) ** 2
                               + (math.log2(p[1]) - ln) ** 2, p[0], p[1]),
            )[:2]
            weights, total = [], 0.0
            for pm, pn, _ in ranked:
                d2 = (math.log2(pm) - lm) ** 2 + (math.log2(pn) - ln) ** 2
                w = 1.0 / (d2 + 1e-9)
                weights.append(w)
                total += w
            mean = sum(
                w * lr for w, (_, _, lr) in zip(weights, ranked)
            ) / total
            return float(min(max(math.exp(mean), lo), hi))
        return 1.0


# --------------------------------------------------------------------- #
# record selection tiers


def select_records(
    store: RunStore, context, workload: str = ""
) -> tuple[tuple[TuneRecord, ...], str]:
    """Records informing a prediction at ``context``, coarse fallback.

    Returns ``(records, tier)`` where tier is ``"exact"`` (same full
    context present — possibly alongside transfer records for settings
    the context never measured), ``"transfer"`` (same workload family
    and stage count on a different cluster/schedule — the
    re-predict-under-changed-load case), or ``"none"``.
    """
    exact = store.matching(context.context)
    transfer = store.matching_workload(workload or context.workload, context.num_stages)
    if exact:
        # keep transfer records too: they cover settings the exact tier
        # hasn't measured yet; ResidualModel.fit shadows per-setting.
        seen = {id(r) for r in exact}
        combined = tuple(exact) + tuple(
            r for r in transfer if id(r) not in seen
        )
        return combined, "exact"
    if transfer:
        return transfer, "transfer"
    return (), "none"


def learned_memory_headroom(store: RunStore | None, cluster: str) -> float:
    """Median measured/predicted *peak-memory* ratio on this cluster.

    Used by :func:`repro.core.tuner.plan_for_spec` to inflate the
    per-layer memory charge when history shows the analytic Eq.-8 model
    under-predicts real peaks on this cluster.  Clipped to [1, 2]: the
    learned layer may only get *more* conservative about memory — a
    deflating correction could admit a plan that history proved to OOM.
    Returns exactly 1.0 with no matching records.
    """
    if store is None:
        return 1.0
    ratios = sorted(
        r.measured_peak_bytes / r.predicted_peak_bytes
        for r in store.matching_cluster(cluster)
        if not r.oom
        and r.measured_peak_bytes is not None
        and r.measured_peak_bytes > 0
        and r.predicted_peak_bytes > 0
    )
    if not ratios:
        return 1.0
    mid = len(ratios) // 2
    median = (
        ratios[mid]
        if len(ratios) % 2
        else (ratios[mid - 1] + ratios[mid]) / 2.0
    )
    return float(min(max(median, 1.0), 2.0))


# --------------------------------------------------------------------- #
# the learned predictor


@dataclass
class TuneDecision:
    """What the learned layer decided, next to the analytic baseline."""

    winner: Prediction
    predictions: list[Prediction]
    analytic_winner: Prediction
    #: corrected per-setting batch times (empty on the analytic path)
    corrected: dict = field(default_factory=dict)
    records_consulted: int = 0
    residual_applied: bool = False
    tier: str = "none"


class LearnedPredictor:
    """A :class:`~repro.core.predictor.Predictor` that consults history.

    With no store, no matching records, or an empty store the decision
    is the analytic one — the same ``best_setting`` call, the same
    winner object, bit for bit.  With matching records the candidate
    grid re-ranks by residual-corrected time, and settings that history
    measured as OOM are vetoed.
    """

    def __init__(
        self,
        predictor: Predictor,
        store: RunStore | None = None,
        context=None,
        workload: str = "",
    ) -> None:
        self.predictor = predictor
        self.store = store
        self.context = context
        self.workload = workload

    def best_setting(
        self,
        m_candidates: list[int],
        n_candidates: list[int],
        memory_limit_bytes,
    ) -> TuneDecision:
        winner, predictions = self.predictor.best_setting(
            m_candidates, n_candidates, memory_limit_bytes
        )
        if self.store is None or self.context is None or len(self.store) == 0:
            return TuneDecision(
                winner=winner, predictions=predictions, analytic_winner=winner
            )
        records, tier = select_records(self.store, self.context, self.workload)
        if not records:
            return TuneDecision(
                winner=winner, predictions=predictions, analytic_winner=winner
            )
        model = ResidualModel.fit(records, context=self.context.context)
        corrected: dict[tuple[int, int], float] = {}
        feasible: list[tuple[float, Prediction]] = []
        for p in predictions:
            if not fits_memory(p.f_total, memory_limit_bytes):
                continue
            if model.known_oom(p.m, p.n):
                continue
            time = model.correction(p.m, p.n) * p.batch_time
            corrected[(p.m, p.n)] = time
            feasible.append((time, p))
        if not feasible:
            # history vetoed everything the analytic model allowed —
            # trust the analytic winner rather than returning nothing
            return TuneDecision(
                winner=winner,
                predictions=predictions,
                analytic_winner=winner,
                corrected=corrected,
                records_consulted=len(records),
                residual_applied=False,
                tier=tier,
            )
        learned = min(feasible, key=lambda item: item[0])[1]
        return TuneDecision(
            winner=learned,
            predictions=predictions,
            analytic_winner=winner,
            corrected=corrected,
            records_consulted=len(records),
            residual_applied=True,
            tier=tier,
        )
