"""Learned online tuning: a persistent run store + residual predictor.

The analytic Eqs. 1-8 tuner (:mod:`repro.core.tuner`) predicts (M, N)
from a single short profile.  This package closes the loop across runs:

* :mod:`repro.tune.store` — a versioned, append-only JSONL history of
  recorded runs (prediction vs measurement, OOM/degraded flags), keyed
  by deterministic config fingerprints;
* :mod:`repro.tune.residual` — a deterministic residual model over that
  history which corrects and re-ranks the analytic predictions.

With an empty store every consumer — ``ProfilingTuner``,
``plan_for_spec``, RetunePlan, the sched admission planner — falls back
to the analytic path bitwise-identically (tested).
"""

from repro.tune.residual import (
    CORRECTION_CLIP,
    FEATURE_NAMES,
    MIN_FIT_POINTS,
    LearnedPredictor,
    ResidualModel,
    TuneDecision,
    features,
    learned_memory_headroom,
    select_records,
)
from repro.tune.store import (
    STORE_VERSION,
    RunContext,
    RunStore,
    StoreCorruptError,
    StoreError,
    TuneRecord,
    as_store,
    canonical_json,
    cluster_fingerprint,
    config_fingerprint,
    record_run,
    run_context,
    schedule_label,
    tuner_context,
)

__all__ = [
    "STORE_VERSION",
    "StoreError",
    "StoreCorruptError",
    "TuneRecord",
    "RunStore",
    "RunContext",
    "as_store",
    "canonical_json",
    "config_fingerprint",
    "cluster_fingerprint",
    "run_context",
    "tuner_context",
    "schedule_label",
    "record_run",
    "MIN_FIT_POINTS",
    "CORRECTION_CLIP",
    "FEATURE_NAMES",
    "features",
    "ResidualModel",
    "TuneDecision",
    "LearnedPredictor",
    "select_records",
    "learned_memory_headroom",
]
