"""Versioned, append-only run-history store for the learned tuner.

Every tuned or measured run becomes one :class:`TuneRecord` — the
configuration fingerprint, the analytic Eq.-1/Eq.-8 prediction, the
measured per-batch seconds and peak memory (sourced from the
:mod:`repro.obs` metric registry when one is attached), and outcome
flags (OOM, degraded cluster).  Records serialize as *canonical* strict
JSON — sorted keys, no whitespace, ``allow_nan=False`` — one record per
line, so

* append/load round-trips are byte-stable,
* merging two stores is a sorted line-set union (commutative and
  idempotent),
* any corrupted or truncated line raises a typed
  :class:`StoreCorruptError` instead of being silently skipped.

Fingerprints come in three granularities, coarse to fine:

* ``cluster`` — the :class:`~repro.sim.cluster.ClusterSpec` alone (used
  by :func:`repro.core.tuner.plan_for_spec`'s learned memory headroom);
* ``context`` — cluster + schedule + partition + batch size + byte
  scales, i.e. everything *except* the parallelism degrees (the learned
  predictor's exact-match tier);
* ``fingerprint`` — context + (M, N): one unique run configuration.

The store never reads a clock or an RNG; identical appends produce
identical bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "STORE_VERSION",
    "StoreError",
    "StoreCorruptError",
    "TuneRecord",
    "RunStore",
    "RunContext",
    "as_store",
    "canonical_json",
    "config_fingerprint",
    "cluster_fingerprint",
    "run_context",
    "tuner_context",
    "schedule_label",
    "record_run",
]

#: bump when the record schema changes; loaders reject other versions
#: loudly (a silent skip would bias the residual fit).
STORE_VERSION = 1

#: hex digits kept from the SHA-256 — plenty against accidental
#: collision at run-history scale, short enough to log.
_FINGERPRINT_HEX = 16


class StoreError(RuntimeError):
    """Any run-store failure (base class)."""


class StoreCorruptError(StoreError):
    """A record line that cannot be trusted: truncated, non-JSON,
    missing or mistyped fields, wrong version, or a fingerprint that
    does not match its own payload."""


def canonical_json(payload: dict) -> str:
    """The one true serialization: sorted keys, compact, strict floats."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def config_fingerprint(payload: dict) -> str:
    """Deterministic hex fingerprint of a canonical-JSON payload."""
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:_FINGERPRINT_HEX]


def _spec_payload(spec) -> dict:
    """A ClusterSpec as a canonical dict (every planner-visible field)."""
    return {
        "nodes": spec.nodes,
        "gpus_per_node": spec.gpus_per_node,
        "peak_flops": spec.peak_flops,
        "memory_bytes": spec.memory_bytes,
        "intra_node_bandwidth": spec.intra_node_bandwidth,
        "inter_node_bandwidth": spec.inter_node_bandwidth,
        "intra_node_latency": spec.intra_node_latency,
        "inter_node_latency": spec.inter_node_latency,
        "curve": [spec.curve.u_max, spec.curve.u_floor, spec.curve.b_half],
        "device_speed": list(spec.device_speed) if spec.device_speed else None,
        "device_memory_bytes": (
            list(spec.device_memory_bytes) if spec.device_memory_bytes else None
        ),
        "link_overrides": [list(row) for row in spec.link_overrides],
    }


def cluster_fingerprint(spec) -> str:
    """Fingerprint of a :class:`~repro.sim.cluster.ClusterSpec` alone."""
    return config_fingerprint(_spec_payload(spec))


def schedule_label(schedule) -> str:
    """Stable name for a schedule instance, e.g. ``advance_fp(2)``."""
    advance = getattr(schedule, "advance", None)
    if advance is not None:
        return f"{schedule.name}({advance})"
    versions = getattr(schedule, "versions", None)
    if versions is not None:
        return f"{schedule.name}(v{versions})"
    return str(schedule.name)


@dataclass(frozen=True)
class RunContext:
    """The fingerprints one run configuration hashes down to."""

    context: str  #: everything except (M, N)
    cluster: str  #: the ClusterSpec alone
    workload: str
    schedule: str
    num_stages: int
    batch_size: int

    def fingerprint(self, m: int, n: int) -> str:
        return config_fingerprint({"context": self.context, "m": m, "n": n})


def run_context(
    cluster_spec,
    schedule: str,
    num_stages: int,
    batch_size: int,
    workload: str = "",
    extra: dict | None = None,
) -> RunContext:
    """Hash a run configuration (minus the parallelism degrees)."""
    cluster = cluster_fingerprint(cluster_spec)
    payload = {
        "cluster": cluster,
        "schedule": schedule,
        "num_stages": num_stages,
        "batch_size": batch_size,
        "workload": workload,
    }
    if extra:
        payload["extra"] = {k: extra[k] for k in sorted(extra)}
    return RunContext(
        context=config_fingerprint(payload),
        cluster=cluster,
        workload=workload,
        schedule=schedule,
        num_stages=num_stages,
        batch_size=batch_size,
    )


def tuner_context(profiler, workload: str = "") -> RunContext:
    """The :class:`RunContext` of a :class:`~repro.core.profiler.Profiler`."""
    return run_context(
        profiler.cluster_spec,
        schedule=schedule_label(profiler.schedule),
        num_stages=profiler.partition.num_stages,
        batch_size=profiler.batch_size,
        workload=workload,
        extra={
            "boundaries": list(profiler.partition.boundaries),
            "placement": (
                list(profiler.placement) if profiler.placement is not None else None
            ),
            "activation_byte_scale": profiler.activation_byte_scale,
            "param_byte_scale": profiler.param_byte_scale,
            "stash_multiplier": profiler.stash_multiplier,
            "optimizer_state_factor": profiler.optimizer_state_factor,
            "with_reference_model": profiler.with_reference_model,
            "activation_recompute": profiler.activation_recompute,
        },
    )


# --------------------------------------------------------------------- #
# records


@dataclass(frozen=True)
class TuneRecord:
    """One recorded run: config fingerprint, prediction, measurement."""

    context: str
    cluster: str
    workload: str
    schedule: str
    k: int  #: pipeline stages
    m: int  #: micro-batch count
    n: int  #: parallel pipelines
    predicted_batch_time: float  #: Eq.-1 seconds per iteration
    predicted_peak_bytes: float  #: Eq.-8 max over stages
    measured_batch_time: float | None  #: simulated Eq.-1 seconds (None on OOM)
    measured_peak_bytes: float | None  #: device high-water mark (None on OOM)
    oom: bool = False
    degraded: bool = False  #: recorded against a degraded/straggler cluster
    version: int = STORE_VERSION

    def __post_init__(self) -> None:
        if self.version != STORE_VERSION:
            raise StoreCorruptError(
                f"record version {self.version!r} != store version {STORE_VERSION}"
            )
        if self.k <= 0 or self.m <= 0 or self.n <= 0:
            raise StoreCorruptError(
                f"parallelism degrees must be positive: K={self.k} M={self.m} N={self.n}"
            )
        for label, value in (
            ("predicted_batch_time", self.predicted_batch_time),
            ("predicted_peak_bytes", self.predicted_peak_bytes),
        ):
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise StoreCorruptError(f"{label} must be finite, got {value!r}")
        for label, value in (
            ("measured_batch_time", self.measured_batch_time),
            ("measured_peak_bytes", self.measured_peak_bytes),
        ):
            if value is not None and (
                not isinstance(value, (int, float)) or not math.isfinite(value)
            ):
                raise StoreCorruptError(f"{label} must be finite or null, got {value!r}")
        if not self.oom and self.measured_batch_time is None:
            raise StoreCorruptError("non-OOM record without a measured batch time")

    @property
    def fingerprint(self) -> str:
        """context + (M, N): unique per distinct run configuration."""
        return config_fingerprint({"context": self.context, "m": self.m, "n": self.n})

    def to_payload(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["fingerprint"] = self.fingerprint
        return payload

    def to_line(self) -> str:
        return canonical_json(self.to_payload())

    @classmethod
    def from_payload(cls, payload: dict) -> "TuneRecord":
        if not isinstance(payload, dict):
            raise StoreCorruptError(f"record is not an object: {payload!r}")
        claimed = payload.pop("fingerprint", None)
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise StoreCorruptError(f"unknown record fields: {sorted(unknown)}")
        missing = names - set(payload)
        if missing:
            raise StoreCorruptError(f"missing record fields: {sorted(missing)}")
        try:
            record = cls(**payload)
        except (TypeError, ValueError) as exc:
            raise StoreCorruptError(f"malformed record: {exc}") from exc
        if claimed is not None and claimed != record.fingerprint:
            raise StoreCorruptError(
                f"fingerprint {claimed!r} does not match payload "
                f"({record.fingerprint!r}) — record tampered or truncated"
            )
        return record

    @classmethod
    def from_line(cls, line: str) -> "TuneRecord":
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StoreCorruptError(
                f"unparseable record line (truncated write?): {line[:80]!r}"
            ) from exc
        return cls.from_payload(payload)

    def sort_key(self) -> tuple:
        """Canonical merge order: by config, then by the full line (so
        distinct measurements of the same config keep a stable order)."""
        return (self.context, self.m, self.n, self.to_line())


# --------------------------------------------------------------------- #
# the store


class RunStore:
    """Append-only JSONL store of :class:`TuneRecord`\\ s.

    ``RunStore(path)`` binds the store to a file: existing records load
    eagerly (raising :class:`StoreCorruptError` on any bad line) and
    every :meth:`append` writes through.  ``RunStore()`` is in-memory.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: list[TuneRecord] = []
        if self.path is not None and self.path.exists():
            self._records = list(self._read(self.path))

    @staticmethod
    def _read(path: Path) -> Iterable[TuneRecord]:
        text = path.read_text()
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                raise StoreCorruptError(f"{path}:{lineno}: blank record line")
            try:
                yield TuneRecord.from_line(line)
            except StoreCorruptError as exc:
                raise StoreCorruptError(f"{path}:{lineno}: {exc}") from exc

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RunStore":
        """Load an existing store file (must exist)."""
        path = Path(path)
        if not path.exists():
            raise StoreError(f"no run store at {path}")
        return cls(path)

    @classmethod
    def from_records(cls, records: Sequence[TuneRecord]) -> "RunStore":
        store = cls()
        store._records = list(records)
        return store

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> tuple[TuneRecord, ...]:
        return tuple(self._records)

    def append(self, record: TuneRecord) -> None:
        if not isinstance(record, TuneRecord):
            raise StoreError(f"can only append TuneRecord, got {type(record)}")
        self._records.append(record)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as fh:
                fh.write(record.to_line() + "\n")

    def save(self, path: str | os.PathLike) -> Path:
        """Write every record as one canonical line (byte-stable)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = "".join(r.to_line() + "\n" for r in self._records)
        path.write_text(text)
        return path

    def merge(self, other: "RunStore") -> "RunStore":
        """Line-set union in canonical order: commutative, idempotent."""
        seen: dict[str, TuneRecord] = {}
        for record in list(self._records) + list(other._records):
            seen.setdefault(record.to_line(), record)
        merged = sorted(seen.values(), key=TuneRecord.sort_key)
        return RunStore.from_records(merged)

    # ------------------------------------------------------------------ #
    # lookup tiers (see repro.tune.residual.select_records)

    def matching(self, context: str) -> tuple[TuneRecord, ...]:
        """Exact-context records: same cluster, schedule, partition, …"""
        return tuple(r for r in self._records if r.context == context)

    def matching_workload(self, workload: str, k: int) -> tuple[TuneRecord, ...]:
        """Transfer-tier records: same workload family and stage count,
        any cluster/schedule (residuals are mostly model-shape-driven)."""
        if not workload:
            return ()
        return tuple(
            r for r in self._records if r.workload == workload and r.k == k
        )

    def matching_cluster(self, cluster: str) -> tuple[TuneRecord, ...]:
        return tuple(r for r in self._records if r.cluster == cluster)


def as_store(history) -> RunStore | None:
    """Coerce a ``history=`` argument: None, a RunStore, or a path.

    A path that does not exist yet yields an *empty* path-bound store —
    the learned layer then falls back to the analytic path bitwise and
    the first append creates the file.
    """
    if history is None or isinstance(history, RunStore):
        return history
    if isinstance(history, (str, os.PathLike)):
        return RunStore(history)
    raise StoreError(
        f"history must be None, a RunStore, or a path, got {type(history)}"
    )


# --------------------------------------------------------------------- #
# recording


def record_run(
    profiler,
    m: int,
    n: int,
    store: RunStore | None = None,
    workload: str = "",
    iterations: int = 3,
    degraded: bool = False,
    registry=None,
    profile_iterations: int = 4,
) -> TuneRecord:
    """Run setting (M, N) once, record prediction vs measurement.

    The measured peak comes from the :mod:`repro.obs` memory high-water
    gauges when a registry observes the run (the same source ``repro
    report`` audits).  The measured time is the simulated iteration time
    *per batch* (an iteration advances N batches concurrently), matching
    the unit of the Eq.-1 prediction — so measured/predicted ratios are
    comparable across settings with different N.  Appends to ``store``
    when given and returns the record either way.
    """
    from repro.core.predictor import Predictor
    from repro.obs.registry import MetricRegistry

    profile = profiler.profile(iterations=profile_iterations)
    prediction = Predictor(profile).predict(m, n)
    reg = registry if registry is not None else MetricRegistry()
    result = profiler.run_setting(m, n, iterations=iterations, registry=reg)
    context = tuner_context(profiler, workload=workload)
    if result.oom is not None:
        measured_time = None
        measured_peak = None
    else:
        measured_time = result.batch_time / n
        peaks = [
            reg.value("sim.mem.peak_bytes", device=d)
            for d in range(result.num_stages)
        ]
        measured_peak = float(max(peaks)) if any(peaks) else float(
            max(result.peak_memory)
        )
    record = TuneRecord(
        context=context.context,
        cluster=context.cluster,
        workload=workload,
        schedule=context.schedule,
        k=context.num_stages,
        m=m,
        n=n,
        predicted_batch_time=prediction.batch_time,
        predicted_peak_bytes=float(prediction.peak_memory),
        measured_batch_time=measured_time,
        measured_peak_bytes=measured_peak,
        oom=result.oom is not None,
        degraded=degraded,
    )
    if store is not None:
        store.append(record)
    return record
