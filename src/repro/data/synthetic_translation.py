"""Synthetic translation corpus (WMT16 stand-in for the GNMT workload).

The "language pair" is a deterministic transduction: source sentences are
drawn from a seeded unigram-with-locality process, and the target applies
(1) a token-wise bijective mapping ("dictionary translation"), and
(2) a local swap of each adjacent token pair ("reordering"), so the model
must learn both lexical mapping and ordering — enough structure that
attention helps and that statistical-efficiency differences (staleness,
averaging, batch size) move the epochs-to-target metric, which is what
Figure 14 compares.

Quality metric: :func:`bleu_like`, a corpus-level geometric mean of 1- and
2-gram precision with brevity penalty — the same shape as BLEU without the
reference-set machinery.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.vocab import BOS, EOS, PAD, Vocab
from repro.utils.seeding import derive_rng

__all__ = ["TranslationConfig", "make_translation_dataset", "bleu_like"]


@dataclass(frozen=True)
class TranslationConfig:
    """Corpus shape parameters.

    ``vocab_size`` counts content tokens (specials are added on top).
    Sequences are fixed-length plus BOS/EOS then padded, which keeps the
    pipeline micro-batches uniform.
    """

    num_pairs: int = 2048
    vocab_size: int = 32
    seq_len: int = 10
    seed: int = 1234


def _token_mapping(vocab_size: int, rng: np.random.Generator) -> np.ndarray:
    """A seeded bijection over content-token ids (the 'dictionary')."""
    return rng.permutation(vocab_size)


def _reorder(tokens: np.ndarray) -> np.ndarray:
    """Swap adjacent pairs: [a b c d e] -> [b a d c e]."""
    out = tokens.copy()
    limit = (len(tokens) // 2) * 2
    out[0:limit:2], out[1:limit:2] = tokens[1:limit:2], tokens[0:limit:2]
    return out


def make_translation_dataset(config: TranslationConfig) -> tuple[ArrayDataset, ArrayDataset, Vocab]:
    """Build (train, validation) datasets plus the shared vocabulary.

    Arrays:
      ``src``       (N, L+2) int64 — BOS ... EOS
      ``tgt_in``    (N, L+2) int64 — BOS-shifted decoder input
      ``tgt_out``   (N, L+2) int64 — decoder target, PAD-masked
    """
    if config.vocab_size < 4:
        raise ValueError("vocab_size must be at least 4")
    rng = derive_rng("synthetic-translation", seed=config.seed)
    vocab = Vocab(f"w{i}" for i in range(config.vocab_size))
    offset = 4  # specials
    mapping = _token_mapping(config.vocab_size, rng)

    n = config.num_pairs
    length = config.seq_len
    # Source process: first token uniform, subsequent tokens biased toward
    # staying in a local window, giving n-gram structure worth modelling.
    src_content = np.empty((n, length), dtype=np.int64)
    src_content[:, 0] = rng.integers(0, config.vocab_size, size=n)
    for t in range(1, length):
        step = rng.integers(-3, 4, size=n)
        jump = rng.random(n) < 0.15
        src_content[:, t] = np.where(
            jump,
            rng.integers(0, config.vocab_size, size=n),
            (src_content[:, t - 1] + step) % config.vocab_size,
        )
    tgt_content = mapping[_reorder_rows(src_content)]

    total = length + 2
    src = np.full((n, total), PAD, dtype=np.int64)
    tgt_in = np.full((n, total), PAD, dtype=np.int64)
    tgt_out = np.full((n, total), PAD, dtype=np.int64)
    src[:, 0] = BOS
    src[:, 1 : 1 + length] = src_content + offset
    src[:, 1 + length] = EOS
    tgt_in[:, 0] = BOS
    tgt_in[:, 1 : 1 + length] = tgt_content + offset
    tgt_out[:, :length] = tgt_content + offset
    tgt_out[:, length] = EOS

    split = max(1, int(n * 0.9))
    train = ArrayDataset(src=src[:split], tgt_in=tgt_in[:split], tgt_out=tgt_out[:split])
    valid = ArrayDataset(src=src[split:], tgt_in=tgt_in[split:], tgt_out=tgt_out[split:])
    return train, valid, vocab


def _reorder_rows(tokens: np.ndarray) -> np.ndarray:
    out = tokens.copy()
    limit = (tokens.shape[1] // 2) * 2
    out[:, 0:limit:2], out[:, 1:limit:2] = tokens[:, 1:limit:2], tokens[:, 0:limit:2]
    return out


def _ngram_counts(seq: list[int], n: int) -> Counter:
    return Counter(tuple(seq[i : i + n]) for i in range(len(seq) - n + 1))


def bleu_like(hypotheses: list[list[int]], references: list[list[int]], max_n: int = 2) -> float:
    """Corpus-level BLEU-style score in [0, 100].

    Geometric mean of clipped n-gram precisions (n = 1..max_n) with the
    standard brevity penalty.  Token ids <= EOS (specials) are stripped.
    """
    if len(hypotheses) != len(references):
        raise ValueError("hypothesis/reference count mismatch")
    hyp_len = ref_len = 0
    matches = [0] * max_n
    totals = [0] * max_n
    for hyp, ref in zip(hypotheses, references):
        hyp = [t for t in hyp if t > EOS]
        ref = [t for t in ref if t > EOS]
        hyp_len += len(hyp)
        ref_len += len(ref)
        for n in range(1, max_n + 1):
            h_counts = _ngram_counts(hyp, n)
            r_counts = _ngram_counts(ref, n)
            totals[n - 1] += max(len(hyp) - n + 1, 0)
            matches[n - 1] += sum(min(c, r_counts[g]) for g, c in h_counts.items())
    if hyp_len == 0 or any(t == 0 for t in totals):
        return 0.0
    precisions = [(m if m > 0 else 0.5) / t for m, t in zip(matches, totals)]
    log_p = sum(math.log(p) for p in precisions) / max_n
    bp = 1.0 if hyp_len > ref_len else math.exp(1.0 - ref_len / hyp_len)
    return 100.0 * bp * math.exp(log_p)
