"""Datasets and loaders.

The paper trains on WMT16 (GNMT), GLUE-QQP (BERT) and Penn Treebank
(AWD-LSTM); none are available offline, so each is replaced by a seeded
synthetic corpus that preserves what the experiments measure — a
learnable task with a quality metric whose *epochs-to-target* responds to
batch size, staleness, and averaging exactly like the real ones do:

* :mod:`synthetic_translation` — sequence transduction with a rule-based
  target (local reordering + token mapping) and a BLEU-like score.
* :mod:`synthetic_paraphrase` — sentence-pair binary classification with
  template-generated paraphrase pairs and top-1 accuracy.
* :mod:`synthetic_lm` — a Markov-chain character corpus scored by
  validation loss (perplexity).
"""

from repro.data.vocab import Vocab, PAD, BOS, EOS, UNK
from repro.data.dataset import ArrayDataset, DataLoader, Dataset
from repro.data.synthetic_translation import TranslationConfig, make_translation_dataset, bleu_like
from repro.data.synthetic_paraphrase import ParaphraseConfig, make_paraphrase_dataset
from repro.data.synthetic_lm import LMConfig, make_lm_corpus, batchify_lm

__all__ = [
    "Vocab",
    "PAD",
    "BOS",
    "EOS",
    "UNK",
    "Dataset",
    "ArrayDataset",
    "DataLoader",
    "TranslationConfig",
    "make_translation_dataset",
    "bleu_like",
    "ParaphraseConfig",
    "make_paraphrase_dataset",
    "LMConfig",
    "make_lm_corpus",
    "batchify_lm",
]
