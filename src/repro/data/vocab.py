"""Token vocabulary with the four standard special symbols."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["Vocab", "PAD", "BOS", "EOS", "UNK"]

PAD, BOS, EOS, UNK = 0, 1, 2, 3
_SPECIALS = ["<pad>", "<bos>", "<eos>", "<unk>"]


class Vocab:
    """Bidirectional token <-> id mapping.

    Ids 0..3 are reserved for ``<pad>``, ``<bos>``, ``<eos>``, ``<unk>``.
    """

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._itos: list[str] = list(_SPECIALS)
        self._stoi: dict[str, int] = {t: i for i, t in enumerate(self._itos)}
        for token in tokens:
            self.add(token)

    def add(self, token: str) -> int:
        idx = self._stoi.get(token)
        if idx is None:
            idx = len(self._itos)
            self._itos.append(token)
            self._stoi[token] = idx
        return idx

    def __len__(self) -> int:
        return len(self._itos)

    def __contains__(self, token: str) -> bool:
        return token in self._stoi

    def token(self, idx: int) -> str:
        return self._itos[idx]

    def index(self, token: str) -> int:
        return self._stoi.get(token, UNK)

    def encode(self, tokens: Sequence[str], add_bos: bool = False, add_eos: bool = False) -> list[int]:
        ids = [self.index(t) for t in tokens]
        if add_bos:
            ids.insert(0, BOS)
        if add_eos:
            ids.append(EOS)
        return ids

    def decode(self, ids: Sequence[int], strip_special: bool = True) -> list[str]:
        out = []
        for i in ids:
            if strip_special and i in (PAD, BOS, EOS):
                continue
            out.append(self._itos[i] if 0 <= i < len(self._itos) else "<unk>")
        return out
