"""Synthetic language-modelling corpus (Penn Treebank stand-in, AWD-LSTM).

A seeded first-order Markov chain over a small token alphabet with a
sparse, peaked transition matrix: the entropy rate is well below the
uniform bound, so a recurrent model lowers validation loss quickly and
"epochs to target validation loss" is a meaningful metric (paper target:
6.5 on PTB; ours is scaled to the synthetic chain's entropy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.seeding import derive_rng

__all__ = ["LMConfig", "make_lm_corpus", "batchify_lm"]


@dataclass(frozen=True)
class LMConfig:
    """Shape/seed parameters of the Markov-chain LM corpus."""
    corpus_len: int = 20000
    vocab_size: int = 24
    branching: int = 4  # plausible successors per token
    seed: int = 91011


def make_lm_corpus(config: LMConfig) -> tuple[np.ndarray, np.ndarray, float]:
    """Return (train_tokens, valid_tokens, entropy_rate_nats).

    The entropy rate is computed from the generating chain; it is the
    floor for validation loss and lets callers set achievable targets
    (e.g. ``target = entropy + 0.3``).
    """
    if config.branching > config.vocab_size:
        raise ValueError("branching cannot exceed vocab size")
    rng = derive_rng("synthetic-lm", seed=config.seed)
    v = config.vocab_size
    trans = np.zeros((v, v))
    for s in range(v):
        successors = rng.choice(v, size=config.branching, replace=False)
        weights = rng.dirichlet(np.full(config.branching, 0.4))
        trans[s, successors] = weights

    tokens = np.empty(config.corpus_len, dtype=np.int64)
    tokens[0] = rng.integers(0, v)
    # Vectorised inverse-CDF sampling per step (state-dependent, so the
    # time loop is inherent, but each step is O(v) not O(v log v)).
    cdf = np.cumsum(trans, axis=1)
    draws = rng.random(config.corpus_len)
    for t in range(1, config.corpus_len):
        tokens[t] = np.searchsorted(cdf[tokens[t - 1]], draws[t])

    # Stationary distribution via power iteration for the entropy rate.
    pi = np.full(v, 1.0 / v)
    for _ in range(200):
        pi = pi @ trans
        pi /= pi.sum()
    with np.errstate(divide="ignore", invalid="ignore"):
        row_entropy = -np.nansum(np.where(trans > 0, trans * np.log(trans), 0.0), axis=1)
    entropy_rate = float(pi @ row_entropy)

    split = int(config.corpus_len * 0.9)
    return tokens[:split], tokens[split:], entropy_rate


def batchify_lm(tokens: np.ndarray, batch_size: int, bptt: int) -> list[dict[str, np.ndarray]]:
    """Shape a token stream into truncated-BPTT batches.

    Returns a list of ``{"input": (B, bptt), "target": (B, bptt)}``; each
    row is a contiguous stream, matching the AWD-LSTM training layout.
    Batch-first so pipeline micro-batch slicing along axis 0 works
    uniformly across all three workloads.
    """
    if batch_size <= 0 or bptt <= 0:
        raise ValueError("batch_size and bptt must be positive")
    usable = (len(tokens) - 1) // batch_size * batch_size
    if usable == 0:
        raise ValueError(f"corpus of {len(tokens)} too small for batch_size {batch_size}")
    inputs = tokens[:usable].reshape(batch_size, -1)  # (B, T_total)
    targets = tokens[1 : usable + 1].reshape(batch_size, -1)
    batches = []
    for start in range(0, inputs.shape[1], bptt):
        chunk_in = inputs[:, start : start + bptt]
        chunk_tgt = targets[:, start : start + bptt]
        if chunk_in.shape[1] < 2:
            break
        batches.append({"input": chunk_in.copy(), "target": chunk_tgt.copy()})
    return batches
