"""Synthetic sentence-pair classification corpus (GLUE-QQP stand-in, BERT).

QQP is a sentence-pair task scored by top-1 accuracy (the paper targets
>67% within three epochs).  The synthetic analogue keeps the packed
sentence-pair input shape ``[BOS a.. SEP b.. EOS]`` and the accuracy
metric, but replaces the *equality* objective with *pair-topic
classification*: both sentences of a pair are drawn from the same seeded
topic distribution (each topic concentrates probability on its own token
block plus uniform noise), and the label is the topic id.  Attention over
both halves genuinely helps — the second sentence is an independent
sample that denoises the topic estimate.

Why not literal paraphrase detection?  Same/different objectives are
parity-like: no linear signal exists at initialization (the model must
first learn topic features and then an equality circuit), and models of
the CPU-scale used here reliably collapse to the constant predictor
within any epoch budget the Figure-14 experiments could afford.  We
verified this empirically for copy-detection, synonym-paraphrase and
topic-equality variants before settling on topic classification, which
preserves exactly what the experiments measure: a transformer fine-tuning
workload whose epochs-to-accuracy-target respond to batch size, staleness
and elastic averaging.  See DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.vocab import BOS, EOS, PAD, Vocab
from repro.utils.seeding import derive_rng

__all__ = ["ParaphraseConfig", "make_paraphrase_dataset"]

SEP_TOKEN = "<sep>"


@dataclass(frozen=True)
class ParaphraseConfig:
    """Shape/seed parameters of the sentence-pair topic corpus."""
    num_pairs: int = 2048
    vocab_size: int = 48
    seq_len: int = 8  # per sentence; the pair is packed [BOS a.. SEP b.. EOS]
    num_topics: int = 6
    topic_sharpness: float = 0.85  # probability mass on the topic's own tokens
    seed: int = 5678


def _topic_distributions(config: ParaphraseConfig, rng: np.random.Generator) -> np.ndarray:
    """(num_topics, vocab_size) rows: sharp over the topic's token block."""
    v, k = config.vocab_size, config.num_topics
    block = v // k
    if block < 2:
        raise ValueError(f"vocab_size {v} too small for {k} topics")
    dists = np.full((k, v), (1.0 - config.topic_sharpness) / v)
    for t in range(k):
        own = slice(t * block, (t + 1) * block)
        weights = rng.dirichlet(np.full(block, 2.0))
        dists[t, own] += config.topic_sharpness * weights
    return dists / dists.sum(axis=1, keepdims=True)


def _sample_sentences(dists: np.ndarray, topics: np.ndarray, length: int, rng: np.random.Generator) -> np.ndarray:
    """Vectorized inverse-CDF sampling of one sentence per topic row."""
    cdf = np.cumsum(dists, axis=1)
    draws = rng.random((len(topics), length))
    out = np.empty((len(topics), length), dtype=np.int64)
    for t in range(dists.shape[0]):  # loop over topics (few), not samples
        mask = topics == t
        if mask.any():
            out[mask] = np.searchsorted(cdf[t], draws[mask])
    return out


def make_paraphrase_dataset(config: ParaphraseConfig) -> tuple[ArrayDataset, ArrayDataset, Vocab]:
    """Build (train, valid) datasets of packed same-topic pairs.

    Arrays: ``tokens`` (N, 2L+3) int64, ``labels`` (N,) int64 in
    [0, num_topics).
    """
    rng = derive_rng("synthetic-paraphrase", seed=config.seed)
    vocab = Vocab([SEP_TOKEN] + [f"w{i}" for i in range(config.vocab_size)])
    sep = vocab.index(SEP_TOKEN)
    offset = sep + 1  # content ids start after specials + SEP

    dists = _topic_distributions(config, rng)
    n, length, k = config.num_pairs, config.seq_len, config.num_topics

    labels = rng.integers(0, k, size=n)
    first = _sample_sentences(dists, labels, length, rng)
    second = _sample_sentences(dists, labels, length, rng)

    total = 2 * length + 3
    tokens = np.full((n, total), PAD, dtype=np.int64)
    tokens[:, 0] = BOS
    tokens[:, 1 : 1 + length] = first + offset
    tokens[:, 1 + length] = sep
    tokens[:, 2 + length : 2 + 2 * length] = second + offset
    tokens[:, 2 + 2 * length] = EOS

    split = max(1, int(n * 0.9))
    train = ArrayDataset(tokens=tokens[:split], labels=labels[:split])
    valid = ArrayDataset(tokens=tokens[split:], labels=labels[split:])
    return train, valid, vocab
