"""Dataset / DataLoader abstractions.

``DataLoader`` yields dictionaries of ndarrays.  It supports deterministic
shuffling (per-epoch derived RNG) and — critical for the pipeline
runtimes — ``split_microbatches`` which slices one batch into M
equally-sized micro-batches the way GPipe/AvgPipe feed a pipeline.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.utils.seeding import derive_rng

__all__ = ["Dataset", "ArrayDataset", "DataLoader", "split_microbatches"]


class Dataset:
    """Minimal map-style dataset protocol."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Mapping[str, np.ndarray]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset over parallel ndarrays sharing a leading dimension."""

    def __init__(self, **arrays: np.ndarray) -> None:
        if not arrays:
            raise ValueError("ArrayDataset needs at least one array")
        lengths = {k: len(v) for k, v in arrays.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"array length mismatch: {lengths}")
        self.arrays = {k: np.asarray(v) for k, v in arrays.items()}
        self._length = next(iter(lengths.values()))

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> dict[str, np.ndarray]:
        return {k: v[index] for k, v in self.arrays.items()}

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        return ArrayDataset(**{k: v[indices] for k, v in self.arrays.items()})


class DataLoader:
    """Batches an :class:`ArrayDataset` with deterministic shuffling."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = True,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if drop_last and len(dataset) < batch_size:
            raise ValueError(f"dataset of {len(dataset)} smaller than batch_size {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.drop_last = drop_last
        self.epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        return n // self.batch_size if self.drop_last else (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[dict[str, np.ndarray]]:
        n = len(self.dataset)
        if self.shuffle:
            order = derive_rng("dataloader", self.epoch, seed=self.seed).permutation(n)
        else:
            order = np.arange(n)
        self.epoch += 1
        limit = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, limit, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield {k: v[idx] for k, v in self.dataset.arrays.items()}


def split_microbatches(batch: Mapping[str, np.ndarray], num_micro: int) -> list[dict[str, np.ndarray]]:
    """Slice one batch into ``num_micro`` equal micro-batches along axis 0.

    The batch size must divide evenly — pipeline schedules assume uniform
    micro-batch compute cost, and so does the paper's tuner.
    """
    sizes = {k: len(v) for k, v in batch.items()}
    batch_size = next(iter(sizes.values()))
    if any(s != batch_size for s in sizes.values()):
        raise ValueError(f"ragged batch: {sizes}")
    if num_micro <= 0:
        raise ValueError(f"num_micro must be positive, got {num_micro}")
    if batch_size % num_micro != 0:
        raise ValueError(f"batch size {batch_size} not divisible into {num_micro} micro-batches")
    micro = batch_size // num_micro
    return [
        {k: v[i * micro : (i + 1) * micro] for k, v in batch.items()} for i in range(num_micro)
    ]
