"""Layer-cost modelling and pipeline-stage partitioning.

The paper reuses PipeDream's partitioner (§6); this package implements it:
:mod:`cost_model` profiles/annotates per-layer compute, activation and
parameter costs, and :mod:`partitioner` runs the PipeDream dynamic program
that cuts the layer chain into K stages minimizing the pipeline's
bottleneck (max per-stage) time including activation communication.
"""

from repro.graph.cost_model import LayerCost, model_costs, profile_layer_costs
from repro.graph.partitioner import (
    Partition,
    balanced_bottleneck,
    partition_balanced,
    partition_model,
    partition_uniform,
    search_partition_placement,
    search_placement,
    stage_memory_bytes,
    stage_spans,
)

__all__ = [
    "LayerCost",
    "model_costs",
    "profile_layer_costs",
    "Partition",
    "partition_model",
    "partition_balanced",
    "partition_uniform",
    "stage_spans",
    "balanced_bottleneck",
    "stage_memory_bytes",
    "search_placement",
    "search_partition_placement",
]
