"""Per-layer cost annotations.

Two sources, cross-checked in tests:

* **analytic** — each :class:`PipelineLayer` reports
  ``flops_per_sample`` / ``activation_floats_per_sample`` from its shape
  arithmetic (the way Megatron/PipeDream cost models are written down);
* **profiled** — :func:`profile_layer_costs` times real forward passes
  per layer on a probe micro-batch, the way PipeDream's profiler does.

The partitioner and the cluster simulator both consume
:class:`LayerCost` rows, so a single annotation drives stage balancing,
simulated compute durations, link traffic and memory ledgers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.models.pipeline_model import PipelineModel
from repro.tensor import Tensor, no_grad

__all__ = ["LayerCost", "model_costs", "profile_layer_costs"]

BYTES_PER_FLOAT = 4


@dataclass(frozen=True)
class LayerCost:
    """Costs of one pipeline layer, normalized per batch *sample*."""

    name: str
    flops_per_sample: float
    activation_bytes_per_sample: float  # bundle size flowing OUT of this layer
    param_bytes: int

    def __post_init__(self) -> None:
        if self.flops_per_sample < 0 or self.activation_bytes_per_sample < 0:
            raise ValueError(f"negative cost on layer {self.name}")


def model_costs(model: PipelineModel) -> list[LayerCost]:
    """Analytic costs for every layer of ``model``."""
    costs = []
    for i, layer in enumerate(model.layers):
        costs.append(
            LayerCost(
                name=f"{model.name}.layer{i}.{type(layer).__name__}",
                flops_per_sample=float(layer.flops_per_sample()),
                activation_bytes_per_sample=float(layer.activation_floats_per_sample()) * BYTES_PER_FLOAT,
                param_bytes=layer.parameter_bytes(),
            )
        )
    return costs


def profile_layer_costs(
    model: PipelineModel,
    probe_batch: Mapping[str, np.ndarray],
    repeats: int = 3,
) -> list[LayerCost]:
    """Measure per-layer forward wall time and real bundle sizes.

    Returns :class:`LayerCost` rows where ``flops_per_sample`` is replaced
    by *seconds* per sample (a rate-consistent stand-in: the partitioner
    only compares ratios).  Used by tests to validate that the analytic
    annotations rank layers the same way real execution does.
    """
    batch_size = len(next(iter(probe_batch.values())))
    rows: list[LayerCost] = []
    with no_grad():
        bundle: dict = dict(probe_batch)
        for i, layer in enumerate(model.layers):
            start = time.perf_counter()
            for _ in range(repeats):
                out = layer(dict(bundle))
            elapsed = (time.perf_counter() - start) / repeats
            bundle = out
            act_bytes = _bundle_bytes(bundle)
            rows.append(
                LayerCost(
                    name=f"{model.name}.layer{i}.{type(layer).__name__}",
                    flops_per_sample=elapsed / batch_size,
                    activation_bytes_per_sample=act_bytes / batch_size,
                    param_bytes=layer.parameter_bytes(),
                )
            )
    return rows


def _bundle_bytes(bundle: Mapping) -> float:
    total = 0
    for value in bundle.values():
        data = value.data if isinstance(value, Tensor) else np.asarray(value)
        total += data.nbytes
    return float(total)
