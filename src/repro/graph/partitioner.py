"""PipeDream-style pipeline partitioner.

Cuts an ordered layer chain into K contiguous stages.  The objective is
the steady-state pipeline bottleneck: with one micro-batch in flight per
stage slot, throughput is limited by the *slowest* stage, where a stage's
time is its compute plus the time to ship its output activation to the
next stage.  PipeDream solves this with a DP over (prefix, machines);
for a straight chain (no replication, as the paper uses it) the
recurrence is

    T(j, k) = min over i < j of max( T(i, k-1),
                                     comm(i),
                                     sum_{l in (i, j]} compute(l) )

where ``comm(i)`` is the activation traffic of the cut after layer i.
A brute-force enumerator in the tests certifies optimality on small
instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.cost_model import LayerCost

__all__ = ["Partition", "partition_model", "partition_uniform", "stage_spans"]


@dataclass(frozen=True)
class Partition:
    """A K-stage cut of an L-layer chain.

    ``boundaries`` has K+1 entries; stage k owns layers
    ``[boundaries[k], boundaries[k+1])``.
    """

    boundaries: tuple[int, ...]

    def __post_init__(self) -> None:
        b = self.boundaries
        if len(b) < 2 or b[0] != 0:
            raise ValueError(f"malformed boundaries {b}")
        if any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError(f"boundaries must be strictly increasing: {b}")

    @property
    def num_stages(self) -> int:
        return len(self.boundaries) - 1

    def stage_of_layer(self, layer: int) -> int:
        for k in range(self.num_stages):
            if self.boundaries[k] <= layer < self.boundaries[k + 1]:
                return k
        raise IndexError(f"layer {layer} outside partition {self.boundaries}")

    def span(self, stage: int) -> tuple[int, int]:
        return self.boundaries[stage], self.boundaries[stage + 1]


def stage_spans(partition: Partition) -> list[tuple[int, int]]:
    """The [lo, hi) layer span of every stage of a partition."""
    return [partition.span(k) for k in range(partition.num_stages)]


def bottleneck_time(
    costs: Sequence[LayerCost],
    boundaries: Sequence[int],
    bandwidth_bytes_per_sec: float,
    sample_rate: float = 1.0,
) -> float:
    """Steady-state bottleneck of a candidate partition (per sample)."""
    worst = 0.0
    k_stages = len(boundaries) - 1
    for k in range(k_stages):
        lo, hi = boundaries[k], boundaries[k + 1]
        compute = sum(c.flops_per_sample for c in costs[lo:hi]) * sample_rate
        comm = 0.0
        if k > 0:  # receive cost of the stage's input cut
            comm = costs[lo - 1].activation_bytes_per_sample / bandwidth_bytes_per_sec
        worst = max(worst, compute + comm)
    return worst


def partition_model(
    costs: Sequence[LayerCost],
    num_stages: int,
    bandwidth_bytes_per_sec: float = 1e9 / 8,
    flops_per_sec: float = 1.0,
    comm_weight: float = 0.5,
) -> Partition:
    """Optimal contiguous K-stage partition via the PipeDream DP.

    ``flops_per_sec`` converts the cost model's flops into time so compute
    and communication are in common units; the default treats flops as
    already-normalized time (useful with profiled costs).

    ``comm_weight`` discounts the input-cut communication added to a
    stage's service time: schedules overlap part of each transfer with
    compute, so pricing it fully makes the DP hoard layers on stage 0
    (which pays no input cut) and unbalances compute.  0.5 reflects the
    roughly-half-exposed transfers the simulator shows for 1F1B.
    """
    n = len(costs)
    if num_stages <= 0:
        raise ValueError(f"num_stages must be positive, got {num_stages}")
    if num_stages > n:
        raise ValueError(f"cannot split {n} layers into {num_stages} stages")

    compute = np.array([c.flops_per_sample / flops_per_sec for c in costs])
    prefix = np.concatenate([[0.0], np.cumsum(compute)])
    comm_after = comm_weight * np.array(
        [c.activation_bytes_per_sample / bandwidth_bytes_per_sec for c in costs]
    )

    # dp[k][j] = best bottleneck for first j layers in k stages.  A
    # stage's steady-state service time is its compute plus the (receive)
    # communication of its input cut — modelling them additively, as
    # PipeDream's planner does, also breaks ties toward balanced compute
    # when a slow interconnect would otherwise make every cut look equal.
    inf = float("inf")
    dp = np.full((num_stages + 1, n + 1), inf)
    choice = np.full((num_stages + 1, n + 1), -1, dtype=int)
    dp[0][0] = 0.0
    for k in range(1, num_stages + 1):
        for j in range(k, n + 1):
            # last stage covers layers (i, j]; i ranges over k-1 .. j-1
            for i in range(k - 1, j):
                if dp[k - 1][i] == inf:
                    continue
                stage_compute = prefix[j] - prefix[i]
                cut_comm = comm_after[i - 1] if i > 0 else 0.0
                candidate = max(dp[k - 1][i], stage_compute + cut_comm)
                if candidate < dp[k][j]:
                    dp[k][j] = candidate
                    choice[k][j] = i
    if dp[num_stages][n] == inf:
        raise RuntimeError("partition DP failed to find a feasible cut")

    boundaries = [n]
    j = n
    for k in range(num_stages, 0, -1):
        j = int(choice[k][j])
        boundaries.append(j)
    boundaries.reverse()
    return Partition(boundaries=tuple(boundaries))


def partition_uniform(num_layers: int, num_stages: int) -> Partition:
    """Layer-count-balanced fallback (what naive users do by hand)."""
    if num_stages > num_layers:
        raise ValueError(f"cannot split {num_layers} layers into {num_stages} stages")
    base, extra = divmod(num_layers, num_stages)
    boundaries = [0]
    for k in range(num_stages):
        boundaries.append(boundaries[-1] + base + (1 if k < extra else 0))
    return Partition(boundaries=tuple(boundaries))
