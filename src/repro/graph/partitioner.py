"""PipeDream-style pipeline partitioner.

Cuts an ordered layer chain into K contiguous stages.  The objective is
the steady-state pipeline bottleneck: with one micro-batch in flight per
stage slot, throughput is limited by the *slowest* stage, where a stage's
time is its compute plus the time to ship its output activation to the
next stage.  PipeDream solves this with a DP over (prefix, machines);
for a straight chain (no replication, as the paper uses it) the
recurrence is

    T(j, k) = min over i < j of max( T(i, k-1),
                                     comm(i),
                                     sum_{l in (i, j]} compute(l) )

where ``comm(i)`` is the activation traffic of the cut after layer i.
A brute-force enumerator in the tests certifies optimality on small
instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.cost_model import LayerCost

__all__ = [
    "Partition",
    "partition_model",
    "partition_balanced",
    "partition_uniform",
    "stage_spans",
    "balanced_bottleneck",
    "stage_memory_bytes",
    "search_placement",
    "search_partition_placement",
]


@dataclass(frozen=True)
class Partition:
    """A K-stage cut of an L-layer chain.

    ``boundaries`` has K+1 entries; stage k owns layers
    ``[boundaries[k], boundaries[k+1])``.
    """

    boundaries: tuple[int, ...]

    def __post_init__(self) -> None:
        b = self.boundaries
        if len(b) < 2 or b[0] != 0:
            raise ValueError(f"malformed boundaries {b}")
        if any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError(f"boundaries must be strictly increasing: {b}")

    @property
    def num_stages(self) -> int:
        return len(self.boundaries) - 1

    def stage_of_layer(self, layer: int) -> int:
        for k in range(self.num_stages):
            if self.boundaries[k] <= layer < self.boundaries[k + 1]:
                return k
        raise IndexError(f"layer {layer} outside partition {self.boundaries}")

    def span(self, stage: int) -> tuple[int, int]:
        return self.boundaries[stage], self.boundaries[stage + 1]


def stage_spans(partition: Partition) -> list[tuple[int, int]]:
    """The [lo, hi) layer span of every stage of a partition."""
    return [partition.span(k) for k in range(partition.num_stages)]


def bottleneck_time(
    costs: Sequence[LayerCost],
    boundaries: Sequence[int],
    bandwidth_bytes_per_sec: float,
    sample_rate: float = 1.0,
) -> float:
    """Steady-state bottleneck of a candidate partition (per sample)."""
    worst = 0.0
    k_stages = len(boundaries) - 1
    for k in range(k_stages):
        lo, hi = boundaries[k], boundaries[k + 1]
        compute = sum(c.flops_per_sample for c in costs[lo:hi]) * sample_rate
        comm = 0.0
        if k > 0:  # receive cost of the stage's input cut
            comm = costs[lo - 1].activation_bytes_per_sample / bandwidth_bytes_per_sec
        worst = max(worst, compute + comm)
    return worst


def partition_model(
    costs: Sequence[LayerCost],
    num_stages: int,
    bandwidth_bytes_per_sec: float = 1e9 / 8,
    flops_per_sec: float = 1.0,
    comm_weight: float = 0.5,
) -> Partition:
    """Optimal contiguous K-stage partition via the PipeDream DP.

    ``flops_per_sec`` converts the cost model's flops into time so compute
    and communication are in common units; the default treats flops as
    already-normalized time (useful with profiled costs).

    ``comm_weight`` discounts the input-cut communication added to a
    stage's service time: schedules overlap part of each transfer with
    compute, so pricing it fully makes the DP hoard layers on stage 0
    (which pays no input cut) and unbalances compute.  0.5 reflects the
    roughly-half-exposed transfers the simulator shows for 1F1B.
    """
    n = len(costs)
    if num_stages <= 0:
        raise ValueError(f"num_stages must be positive, got {num_stages}")
    if num_stages > n:
        raise ValueError(f"cannot split {n} layers into {num_stages} stages")

    compute = np.array([c.flops_per_sample / flops_per_sec for c in costs])
    prefix = np.concatenate([[0.0], np.cumsum(compute)])
    comm_after = comm_weight * np.array(
        [c.activation_bytes_per_sample / bandwidth_bytes_per_sec for c in costs]
    )

    # dp[k][j] = best bottleneck for first j layers in k stages.  A
    # stage's steady-state service time is its compute plus the (receive)
    # communication of its input cut — modelling them additively, as
    # PipeDream's planner does, also breaks ties toward balanced compute
    # when a slow interconnect would otherwise make every cut look equal.
    inf = float("inf")
    dp = np.full((num_stages + 1, n + 1), inf)
    choice = np.full((num_stages + 1, n + 1), -1, dtype=int)
    dp[0][0] = 0.0
    for k in range(1, num_stages + 1):
        for j in range(k, n + 1):
            # last stage covers layers (i, j]; i ranges over k-1 .. j-1
            for i in range(k - 1, j):
                if dp[k - 1][i] == inf:
                    continue
                stage_compute = prefix[j] - prefix[i]
                cut_comm = comm_after[i - 1] if i > 0 else 0.0
                candidate = max(dp[k - 1][i], stage_compute + cut_comm)
                if candidate < dp[k][j]:
                    dp[k][j] = candidate
                    choice[k][j] = i
    if dp[num_stages][n] == inf:
        raise RuntimeError("partition DP failed to find a feasible cut")

    boundaries = [n]
    j = n
    for k in range(num_stages, 0, -1):
        j = int(choice[k][j])
        boundaries.append(j)
    boundaries.reverse()
    return Partition(boundaries=tuple(boundaries))


def _layer_memory(
    costs: Sequence[LayerCost],
    layer_memory_bytes: Sequence[float] | None,
) -> list[float]:
    """Resident bytes per layer for the partitioner's memory caps.

    The default charges 3x the parameter bytes (weights + gradients +
    a momentum-style optimizer slot) — the dominant *static* term; the
    activation working set depends on the schedule and is checked by
    :func:`repro.verify.invariants.predict_peak_memory` downstream.
    """
    if layer_memory_bytes is not None:
        if len(layer_memory_bytes) != len(costs):
            raise ValueError(
                f"layer_memory_bytes has {len(layer_memory_bytes)} entries "
                f"for {len(costs)} layers"
            )
        return [float(m) for m in layer_memory_bytes]
    return [3.0 * c.param_bytes for c in costs]


def stage_memory_bytes(
    costs: Sequence[LayerCost],
    boundaries: Sequence[int],
    layer_memory_bytes: Sequence[float] | None = None,
) -> list[float]:
    """Resident bytes of every stage of a candidate partition."""
    mem = _layer_memory(costs, layer_memory_bytes)
    return [
        sum(mem[boundaries[k] : boundaries[k + 1]])
        for k in range(len(boundaries) - 1)
    ]


def _cut_bandwidth(
    bandwidth_bytes_per_sec: float | Sequence[float],
    stage: int,
    num_stages: int,
) -> float:
    """Bandwidth of the cut feeding ``stage`` (1-based over cuts)."""
    if isinstance(bandwidth_bytes_per_sec, (int, float)):
        return float(bandwidth_bytes_per_sec)
    if len(bandwidth_bytes_per_sec) != num_stages:
        raise ValueError(
            f"per-stage bandwidth needs {num_stages} entries "
            f"(entry k = link into stage k; entry 0 unused), "
            f"got {len(bandwidth_bytes_per_sec)}"
        )
    return float(bandwidth_bytes_per_sec[stage])


def partition_balanced(
    costs: Sequence[LayerCost],
    num_stages: int,
    *,
    device_speeds: Sequence[float] | None = None,
    bandwidth_bytes_per_sec: float | Sequence[float] = 1e9 / 8,
    flops_per_sec: float = 1.0,
    comm_weight: float = 0.5,
    memory_caps: Sequence[float] | None = None,
    layer_memory_bytes: Sequence[float] | None = None,
) -> Partition:
    """BaPipe-style balanced partition over (possibly) unequal devices.

    Generalizes :func:`partition_model` three ways:

    * ``device_speeds[k]`` scales stage k's compute time by 1/speed — a
      half-speed device makes its stage twice as expensive, so the DP
      gives it proportionally fewer layers (arXiv:2012.12544);
    * ``bandwidth_bytes_per_sec`` may be per-stage: entry k is the
      bandwidth of the link *into* stage k (entry 0 is unused since
      stage 0 pays no input cut);
    * ``memory_caps[k]`` bounds the resident bytes of stage k
      (:func:`stage_memory_bytes`); candidates that overflow a cap are
      infeasible rather than merely expensive.

    On a *uniform* call — ``device_speeds=None``, scalar bandwidth, no
    caps — every float operation and loop order matches
    :func:`partition_model` exactly, so the result is bitwise identical
    (the differential tests pin this).
    """
    n = len(costs)
    if num_stages <= 0:
        raise ValueError(f"num_stages must be positive, got {num_stages}")
    if num_stages > n:
        raise ValueError(f"cannot split {n} layers into {num_stages} stages")
    if device_speeds is not None:
        if len(device_speeds) != num_stages:
            raise ValueError(
                f"device_speeds has {len(device_speeds)} entries "
                f"for {num_stages} stages"
            )
        if any(s <= 0 for s in device_speeds):
            raise ValueError(f"device speeds must be positive: {device_speeds}")
    if memory_caps is not None and len(memory_caps) != num_stages:
        raise ValueError(
            f"memory_caps has {len(memory_caps)} entries for {num_stages} stages"
        )

    compute = np.array([c.flops_per_sample / flops_per_sec for c in costs])
    prefix = np.concatenate([[0.0], np.cumsum(compute)])
    uniform_bw = isinstance(bandwidth_bytes_per_sec, (int, float))
    if uniform_bw:
        comm_after = comm_weight * np.array(
            [c.activation_bytes_per_sample / bandwidth_bytes_per_sec for c in costs]
        )
    else:
        # validate the shape up front even though values are read per-k
        _cut_bandwidth(bandwidth_bytes_per_sec, num_stages - 1, num_stages)
    mem = None
    mem_prefix = None
    if memory_caps is not None:
        mem = _layer_memory(costs, layer_memory_bytes)
        mem_prefix = np.concatenate([[0.0], np.cumsum(mem)])

    inf = float("inf")
    dp = np.full((num_stages + 1, n + 1), inf)
    choice = np.full((num_stages + 1, n + 1), -1, dtype=int)
    dp[0][0] = 0.0
    for k in range(1, num_stages + 1):
        speed = 1.0 if device_speeds is None else device_speeds[k - 1]
        for j in range(k, n + 1):
            for i in range(k - 1, j):
                if dp[k - 1][i] == inf:
                    continue
                if (
                    mem_prefix is not None
                    and mem_prefix[j] - mem_prefix[i] > memory_caps[k - 1]
                ):
                    continue
                stage_compute = prefix[j] - prefix[i]
                if device_speeds is not None:
                    stage_compute = stage_compute / speed
                if i > 0:
                    if uniform_bw:
                        cut_comm = comm_after[i - 1]
                    else:
                        cut_comm = comm_weight * (
                            costs[i - 1].activation_bytes_per_sample
                            / _cut_bandwidth(
                                bandwidth_bytes_per_sec, k - 1, num_stages
                            )
                        )
                else:
                    cut_comm = 0.0
                candidate = max(dp[k - 1][i], stage_compute + cut_comm)
                if candidate < dp[k][j]:
                    dp[k][j] = candidate
                    choice[k][j] = i
    if dp[num_stages][n] == inf:
        raise RuntimeError(
            "balanced partition DP found no feasible cut "
            "(memory caps too tight for a contiguous K-stage split)"
        )

    boundaries = [n]
    j = n
    for k in range(num_stages, 0, -1):
        j = int(choice[k][j])
        boundaries.append(j)
    boundaries.reverse()
    return Partition(boundaries=tuple(boundaries))


def balanced_bottleneck(
    costs: Sequence[LayerCost],
    boundaries: Sequence[int],
    *,
    device_speeds: Sequence[float] | None = None,
    bandwidth_bytes_per_sec: float | Sequence[float] = 1e9 / 8,
    flops_per_sec: float = 1.0,
    comm_weight: float = 0.5,
) -> float:
    """Max per-stage service time of a candidate partition under the
    same cost model :func:`partition_balanced` optimizes."""
    k_stages = len(boundaries) - 1
    worst = 0.0
    for k in range(k_stages):
        lo, hi = boundaries[k], boundaries[k + 1]
        stage_compute = sum(c.flops_per_sample / flops_per_sec for c in costs[lo:hi])
        if device_speeds is not None:
            stage_compute = stage_compute / device_speeds[k]
        cut_comm = 0.0
        if k > 0:
            cut_comm = comm_weight * (
                costs[lo - 1].activation_bytes_per_sample
                / _cut_bandwidth(bandwidth_bytes_per_sec, k, k_stages)
            )
        worst = max(worst, stage_compute + cut_comm)
    return worst


def _slot_views(
    placement: Sequence[int],
    device_speeds: Sequence[float],
    bandwidth_matrix: Sequence[Sequence[float]],
    memory_caps: Sequence[float] | None,
) -> tuple[list[float], list[float], list[float] | None]:
    """Per-stage-slot speed/bandwidth/cap vectors under a placement.

    ``placement[k]`` is the device hosting stage k; the link into stage k
    is the directed edge placement[k-1] -> placement[k].
    """
    k_stages = len(placement)
    slot_speeds = [device_speeds[p] for p in placement]
    slot_bw = [float("inf")] + [
        bandwidth_matrix[placement[k - 1]][placement[k]] for k in range(1, k_stages)
    ]
    slot_caps = None
    if memory_caps is not None:
        slot_caps = [memory_caps[p] for p in placement]
    return slot_speeds, slot_bw, slot_caps


def _candidate_placements(
    num_stages: int, max_exhaustive: int
) -> "itertools.chain | list":
    identity = tuple(range(num_stages))
    if num_stages <= max_exhaustive:
        # identity comes first for sorted input, so strict-< keeps it on ties
        return itertools.permutations(range(num_stages))
    return [identity]


def search_placement(
    costs: Sequence[LayerCost],
    boundaries: Sequence[int],
    *,
    device_speeds: Sequence[float],
    bandwidth_matrix: Sequence[Sequence[float]],
    flops_per_sec: float = 1.0,
    comm_weight: float = 0.5,
    max_exhaustive: int = 7,
) -> tuple[tuple[int, ...], float]:
    """Best stage->device permutation for a *fixed* partition.

    Returns ``(placement, bottleneck)`` where ``placement[k]`` is the
    device hosting stage k.  Ties keep the identity (straight chain).
    For K > ``max_exhaustive`` a greedy pairwise-swap descent from the
    identity replaces exhaustive enumeration.
    """
    k_stages = len(boundaries) - 1

    def evaluate(placement: Sequence[int]) -> float:
        slot_speeds, slot_bw, _ = _slot_views(
            placement, device_speeds, bandwidth_matrix, None
        )
        return balanced_bottleneck(
            costs,
            boundaries,
            device_speeds=slot_speeds,
            bandwidth_bytes_per_sec=slot_bw,
            flops_per_sec=flops_per_sec,
            comm_weight=comm_weight,
        )

    best = tuple(range(k_stages))
    best_time = evaluate(best)
    if k_stages <= max_exhaustive:
        for perm in itertools.permutations(range(k_stages)):
            t = evaluate(perm)
            if t < best_time:
                best, best_time = tuple(perm), t
    else:
        improved = True
        while improved:
            improved = False
            for a in range(k_stages):
                for b in range(a + 1, k_stages):
                    cand = list(best)
                    cand[a], cand[b] = cand[b], cand[a]
                    t = evaluate(cand)
                    if t < best_time:
                        best, best_time = tuple(cand), t
                        improved = True
    return best, best_time


def search_partition_placement(
    costs: Sequence[LayerCost],
    num_stages: int,
    *,
    device_speeds: Sequence[float],
    bandwidth_matrix: Sequence[Sequence[float]],
    memory_caps: Sequence[float] | None = None,
    flops_per_sec: float = 1.0,
    comm_weight: float = 0.5,
    layer_memory_bytes: Sequence[float] | None = None,
    max_exhaustive: int = 7,
) -> tuple[Partition, tuple[int, ...], float]:
    """Joint partition + placement search (Luo et al., arXiv:2204.10562).

    For every candidate stage->device permutation, re-runs the balanced
    DP against that placement's slot speeds, link bandwidths and memory
    caps, and keeps the placement whose *optimal* partition has the
    smallest bottleneck.  Ties keep the identity placement, so on a
    uniform cluster this degenerates to
    ``(partition_model(...), (0, 1, ..., K-1))``.

    Returns ``(partition, placement, bottleneck)``.
    """
    if len(device_speeds) != num_stages:
        raise ValueError(
            f"device_speeds has {len(device_speeds)} entries for {num_stages} stages"
        )
    best: tuple[Partition, tuple[int, ...], float] | None = None
    for perm in _candidate_placements(num_stages, max_exhaustive):
        slot_speeds, slot_bw, slot_caps = _slot_views(
            perm, device_speeds, bandwidth_matrix, memory_caps
        )
        try:
            part = partition_balanced(
                costs,
                num_stages,
                device_speeds=slot_speeds,
                bandwidth_bytes_per_sec=slot_bw,
                flops_per_sec=flops_per_sec,
                comm_weight=comm_weight,
                memory_caps=slot_caps,
                layer_memory_bytes=layer_memory_bytes,
            )
        except RuntimeError:
            continue  # this placement has no memory-feasible cut
        t = balanced_bottleneck(
            costs,
            part.boundaries,
            device_speeds=slot_speeds,
            bandwidth_bytes_per_sec=slot_bw,
            flops_per_sec=flops_per_sec,
            comm_weight=comm_weight,
        )
        if best is None or t < best[2]:
            best = (part, tuple(perm), t)
    if best is None:
        raise RuntimeError(
            "no placement admits a memory-feasible balanced partition"
        )
    return best


def partition_uniform(num_layers: int, num_stages: int) -> Partition:
    """Layer-count-balanced fallback (what naive users do by hand)."""
    if num_stages > num_layers:
        raise ValueError(f"cannot split {num_layers} layers into {num_stages} stages")
    base, extra = divmod(num_layers, num_stages)
    boundaries = [0]
    for k in range(num_stages):
        boundaries.append(boundaries[-1] + base + (1 if k < extra else 0))
    return Partition(boundaries=tuple(boundaries))
