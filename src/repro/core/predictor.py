"""Predicting phase of the tuning method (§5.2.2-5.2.3, Equations 1-8).

From one profile at degrees (m, n) the predictor estimates, for any
candidate (m*, n*), the per-batch training time of each device

    T^k = T_gpu^k + T_com^k + T_bub^k                     (Eq. 1)

and the memory footprint F^k (Eq. 8).  The performance model assumes the
AFAB shape (the paper argues advance-FP brings 1F1B close enough to AFAB
that ranking settings on the AFAB model is sound), arithmetic intensity
proportional to micro-batch size, and utilization additive in the number
of pipelines — the same assumptions the simulator's processor-sharing
devices implement, so predictions can be validated against simulation in
tests and in the Figure-19 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.profiler import Profile

__all__ = ["Prediction", "Predictor", "fits_memory"]


def fits_memory(
    footprints: Sequence[float], limit: float | Sequence[float]
) -> bool:
    """Whether per-stage footprints fit a scalar or per-stage budget.

    A scalar limit is the uniform-cluster case (every device has the
    same capacity); a sequence gives stage k's hosting device capacity —
    under a placement permutation the caller reorders device capacities
    into stage order first.
    """
    if isinstance(limit, (int, float)):
        return max(footprints) <= limit
    if len(limit) != len(footprints):
        raise ValueError(
            f"{len(limit)} memory limits for {len(footprints)} stages"
        )
    return all(f <= cap for f, cap in zip(footprints, limit))


@dataclass(frozen=True)
class Prediction:
    """Equations 1-8 evaluated for one candidate (M*, N*) setting."""
    m: int
    n: int
    t_gpu: tuple[float, ...]
    t_com: tuple[float, ...]
    t_bub: tuple[float, ...]
    f_total: tuple[float, ...]

    @property
    def t_per_device(self) -> tuple[float, ...]:
        return tuple(
            g + c + b for g, c, b in zip(self.t_gpu, self.t_com, self.t_bub)
        )

    @property
    def batch_time(self) -> float:
        """Predicted per-batch time: the slowest device bounds the pipe."""
        return max(self.t_per_device)

    @property
    def peak_memory(self) -> float:
        return max(self.f_total)


class Predictor:
    """Evaluates Equations 2-8 from a single :class:`Profile`."""
    def __init__(self, profile: Profile) -> None:
        self.profile = profile

    # ------------------------------------------------------------------ #

    def predict(self, m_star: int, n_star: int) -> Prediction:
        if m_star <= 0 or n_star <= 0:
            raise ValueError("parallelism degrees must be positive")
        p = self.profile
        K = p.num_stages
        m, n = p.m, p.n

        # --- Equation 2: computation time ------------------------------
        # phi scaling factor.  The paper assumes arithmetic intensity is
        # proportional to micro-batch size (phi scales by m/m*); when the
        # device saturation curve is known (our simulator's is), the
        # honest intensity ratio is u(mb*) / u(mb), which agrees with the
        # paper's linear model far from saturation and corrects it near
        # saturation (where linear extrapolation over-ranks small M).
        if p.curve is not None:
            mb_profile = p.batch_size / m
            mb_star = p.batch_size / m_star
            intensity = p.curve.demand(mb_star) / p.curve.demand(mb_profile)
        else:
            intensity = m / m_star
        ratio = intensity * (n_star / n)  # phi scaling factor
        lead = 1.0 / ratio
        t_gpu = []
        for k in range(K):
            overflow = p.phi_integral_over(k, ratio)
            t_gpu.append(lead * (p.t_gpu[k] + overflow))

        # --- Equation 4: communication time blocking the GPU -----------
        t_com = []
        t_total_comm = []  # (T-bb^k)* per batch, reused by Eq. 6/7
        for k in range(K):
            scaled = (n_star / n) * p.t_comm_total[k]
            t_total_comm.append(scaled)
            first = scaled / m_star
            rest = (m_star - 1) / m_star * max(scaled - t_gpu[k], 0.0)
            t_com.append(first + rest)

        # --- Equations 5-7: bubble time ---------------------------------
        t_up = [0.0] * K
        for k in range(1, K):
            t_up[k] = t_up[k - 1] + (t_total_comm[k - 1] + t_gpu[k - 1]) / m_star
        t_down = [0.0] * K
        for k in range(K - 2, -1, -1):
            t_down[k] = t_down[k + 1] + (t_total_comm[k + 1] + t_gpu[k + 1]) / m_star
        t_bub = [u + d for u, d in zip(t_up, t_down)]

        # --- Equation 8: memory footprint -------------------------------
        # Refinement over the paper's Eq. 8: the co-partitioned reference
        # copy does not replicate with n*, so only the per-pipeline part
        # of F_mod scales (the paper's equation conflates the two, which
        # makes tight-budget N=2 configurations look spuriously infeasible).
        f_total = []
        for k in range(K):
            per_pipeline = p.f_mod[k] - p.f_ref[k]
            f_mod = (n_star / n) * per_pipeline + p.f_ref[k]
            f_dat = (m * n_star) / (m_star * n) * p.f_dat[k]
            f_total.append(f_mod + f_dat)

        return Prediction(
            m=m_star,
            n=n_star,
            t_gpu=tuple(t_gpu),
            t_com=tuple(t_com),
            t_bub=tuple(t_bub),
            f_total=tuple(f_total),
        )

    # ------------------------------------------------------------------ #

    def best_setting(
        self,
        m_candidates: list[int],
        n_candidates: list[int],
        memory_limit_bytes: float | Sequence[float],
    ) -> tuple[Prediction, list[Prediction]]:
        """Evaluate the grid; return (winner, all predictions).

        The winner minimizes predicted per-batch time (Equation 2 already
        amortizes an iteration over its n* concurrent batches), subject
        to every device fitting in memory.  ``memory_limit_bytes`` may be
        a per-stage sequence on a heterogeneous cluster (stage k's entry
        is its hosting device's capacity).
        """
        if not m_candidates or not n_candidates:
            raise ValueError("empty candidate lists")
        predictions = [
            self.predict(m, n) for m in m_candidates for n in n_candidates
        ]
        feasible = [
            p for p in predictions if fits_memory(p.f_total, memory_limit_bytes)
        ]
        if not feasible:
            if isinstance(memory_limit_bytes, (int, float)):
                budget = f"{memory_limit_bytes / 2**20:.0f} MiB"
            else:
                budget = "per-stage budgets " + "/".join(
                    f"{b / 2**20:.0f}" for b in memory_limit_bytes
                ) + " MiB"
            raise RuntimeError(f"no (M, N) setting fits in {budget}")
        winner = min(feasible, key=lambda p: p.batch_time)
        return winner, predictions
