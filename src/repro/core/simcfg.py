"""Per-workload simulator calibrations.

The CPU-sized models are ~20x narrower than the paper's; flops shrink
quadratically with width but byte quantities only linearly, so the raw
cost model would make communication and memory look artificially cheap.
Each workload therefore carries two re-inflation factors chosen so the
simulated regime matches the paper's testbed ratios:

* ``activation_byte_scale`` — makes one micro-batch's inter-node
  activation transfer cost the same order as its compute (the 1 Gbps
  regime where 1F1B's exposed communication matters, Figures 2/7/17);
* ``param_byte_scale`` — makes (a) a DDP all-reduce cost several batch
  times (Figure 11's 4.7x) and (b) PipeDream's K-k weight versions
  overflow device memory on BERT (the Figure 11/12 OOM) while single- and
  double-version systems fit.

These are engineering calibrations of a simulator, not measurements; the
shapes they produce (who wins, crossovers) are validated against the
paper in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.graph.cost_model import LayerCost, model_costs
from repro.graph.partitioner import Partition, partition_model, search_partition_placement
from repro.models.registry import WorkloadSpec, build_workload
from repro.sim.cluster import ClusterSpec
from repro.sim.device import UtilizationCurve
from repro.sim.hetero import hetero_variant

__all__ = ["SimCalibration", "SIM_CALIBRATIONS", "calibration_for"]

MIB = 2**20


@dataclass(frozen=True)
class SimCalibration:
    """Per-workload simulator constants (see the module docstring)."""
    workload: str
    num_devices: int
    batch_size: int
    activation_byte_scale: float
    param_byte_scale: float
    memory_capacity_bytes: int  # per device
    stash_multiplier: float = 6.0  # internal activations per output byte
    optimizer_state_factor: float = 2.0  # Adam: m and v per weight
    #: kernel-saturation curve; AWD's small LSTM kernels need much larger
    #: micro-batches to approach peak (the paper's "maximize the
    #: micro-batch size" regime), so its b_half is far to the right.
    curve_u_max: float = 0.95
    curve_u_floor: float = 0.12
    curve_b_half: float = 10.0
    #: DDP all-reduce achieves a fraction of line rate; per-workload
    #: because bucket sizes and overlap differ with model shape.
    allreduce_inefficiency: float = 3.5

    def cluster_spec(self, variant: str | None = None) -> ClusterSpec:
        """The workload's cluster; ``variant`` applies one of the canned
        heterogeneous shapes from :mod:`repro.sim.hetero` on top of it.
        ``None`` returns exactly the uniform spec as before."""
        if self.num_devices % 2 != 0:
            raise ValueError("paper clusters have 2 GPUs per node")
        base = ClusterSpec(
            nodes=self.num_devices // 2,
            gpus_per_node=2,
            memory_bytes=self.memory_capacity_bytes,
            curve=UtilizationCurve(
                u_max=self.curve_u_max,
                u_floor=self.curve_u_floor,
                b_half=self.curve_b_half,
            ),
        )
        if variant is None:
            return base
        return hetero_variant(variant, base)

    def layer_costs(self, spec: WorkloadSpec | None = None) -> list[LayerCost]:
        spec = spec or build_workload(self.workload)
        return model_costs(spec.build_model())

    def partition(self, costs: list[LayerCost] | None = None) -> Partition:
        costs = costs or self.layer_costs()
        cspec = self.cluster_spec()
        return partition_model(
            costs,
            self.num_devices,
            bandwidth_bytes_per_sec=cspec.inter_node_bandwidth / self.activation_byte_scale,
            flops_per_sec=cspec.peak_flops,
            comm_weight=0.2,
        )

    def hetero_plan(
        self,
        variant: str,
        costs: list[LayerCost] | None = None,
        with_memory_caps: bool = False,
    ) -> tuple[Partition, tuple[int, ...]]:
        """Balanced partition + placement for a canned hetero variant.

        Uses the same calibration constants as :meth:`partition` (byte
        re-inflation, comm_weight 0.2) but against the variant's
        per-device speeds and link matrix.  ``with_memory_caps`` adds the
        variant's per-device capacities as DP feasibility caps, charging
        each layer 3x its (re-inflated) parameter bytes.
        """
        costs = costs or self.layer_costs()
        cspec = self.cluster_spec(variant)
        matrix = [
            [bw / self.activation_byte_scale for bw in row]
            for row in cspec.bandwidth_matrix()
        ]
        part, perm, _ = search_partition_placement(
            costs,
            self.num_devices,
            device_speeds=cspec.speed_vector(),
            bandwidth_matrix=matrix,
            memory_caps=cspec.memory_vector() if with_memory_caps else None,
            flops_per_sec=cspec.peak_flops,
            comm_weight=0.2,
            layer_memory_bytes=[
                3.0 * c.param_bytes * self.param_byte_scale for c in costs
            ],
        )
        return part, perm


SIM_CALIBRATIONS: dict[str, SimCalibration] = {
    "gnmt": SimCalibration(
        workload="gnmt",
        num_devices=6,
        batch_size=128,
        activation_byte_scale=128.0,
        param_byte_scale=88.0,
        memory_capacity_bytes=640 * MIB,
        stash_multiplier=3.75,
    ),
    "bert": SimCalibration(
        workload="bert",
        num_devices=6,
        batch_size=32,
        activation_byte_scale=100.0,
        param_byte_scale=160.0,
        memory_capacity_bytes=99 * MIB,
        stash_multiplier=1.5,
        allreduce_inefficiency=1.0,  # small model, effective bucketing
    ),
    "awd": SimCalibration(
        workload="awd",
        num_devices=4,
        batch_size=40,
        activation_byte_scale=32.0,
        param_byte_scale=300.0,
        memory_capacity_bytes=256 * MIB,
        optimizer_state_factor=1.0,  # SGD/ASGD keep one buffer, not Adam's two
        curve_u_max=0.9,
        curve_u_floor=0.08,
        curve_b_half=48.0,
    ),
}


def calibration_for(workload: str) -> SimCalibration:
    """The shipped calibration for a workload name."""
    try:
        return SIM_CALIBRATIONS[workload]
    except KeyError:
        raise KeyError(
            f"unknown workload {workload!r}; available: {sorted(SIM_CALIBRATIONS)}"
        ) from None
