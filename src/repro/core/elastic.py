"""The elastic-averaging-based framework (§3.2).

N *parallel models* each train on their own batches with a user-chosen
optimizer (Adam, SGD, ASGD, ... — the framework never looks inside the
optimizer, which is the §3.1 point of difference from EASGD-style coupled
optimizers).  A *reference model* holds the center the parallel models
are pulled toward.

Per iteration, for each parallel model i (§3.2 steps 1-5):

1. the pipeline computes a local update Δ_i = opt_step(x_i) − x_i,
2. the model is diluted toward the reference:
   x_i ← (1−α)·x_i' + α·x_ref  with α = 1/N (empirical default, [18]),
3. Δ_i is posted to the reference's message queue (async),
4. the reference process accumulates arriving updates,
5. once all N updates of an iteration arrived it applies the normalized
   accumulated update: x_ref ← x_ref + normalize(ΣΔ_i), where the
   normalization is "mean" (1/N, the default — the reference tracks the
   parallel-model average of Figure 5) or "sum" (the first-order
   sequential-equivalent reading; see the attribute docstring below).

With a synchronous queue, "mean" keeps the reference a bounded-lag
tracker of the parallel-model average — an invariant the tests assert;
with an async queue, step 2 may see a reference that lags by the queue
delay, which is the configuration the paper runs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.messages import MessageQueue
from repro.models.pipeline_model import PipelineModel

__all__ = ["ElasticAveragingFramework"]

StateDict = dict[str, np.ndarray]

#: exponential buckets for weight-space RMS magnitudes (α-pulls and
#: applied reference updates): 1e-8 .. ~5.4, factor-2 resolution.
_RMS_BUCKETS = tuple(1e-8 * (2.0**i) for i in range(30))


class ElasticAveragingFramework:
    """Coordinates N parallel :class:`PipelineModel`\\ s and a reference.

    Parameters
    ----------
    parallel_models:
        The N models, structurally identical, typically initialized from
        the same seed (the reference starts at their common value).
    alpha:
        Elastic pull coefficient; ``None`` means the paper's 1/N default.
    queue_delay:
        Iterations of staleness on the update queue (0 = synchronous).
    """

    def __init__(
        self,
        parallel_models: Sequence[PipelineModel],
        alpha: float | None = None,
        queue_delay: int = 1,
        update_normalization: str = "mean",
        registry=None,
    ) -> None:
        if not parallel_models:
            raise ValueError("need at least one parallel model")
        if update_normalization not in ("sum", "mean"):
            raise ValueError(f"update_normalization must be 'sum' or 'mean', got {update_normalization!r}")
        self.models = list(parallel_models)
        n = len(self.models)
        #: whether alpha tracks 1/N automatically — resize() renormalizes
        #: an auto alpha to 1/N' but leaves an explicit one alone.
        self._alpha_auto = alpha is None
        self.alpha = (1.0 / n) if alpha is None else float(alpha)
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        #: §3.2 step 5 says the reference "normalizes and applies the
        #: accumulated update".  Two readings are implemented:
        #:   "mean" (default) — x_ref += (1/N) sum(delta): the reference
        #:     is a bounded-lag tracker of the parallel-model average
        #:     (the Figure-5 picture) and the dynamics are stable for
        #:     every optimizer we tested.
        #:   "sum" — x_ref += sum(delta): first-order equivalent to the
        #:     sequential trajectory; it makes Figure 14's epoch parity
        #:     an identity but is oscillation-prone at this miniature's
        #:     compressed learning rates, so it is opt-in.
        #: See docs/elastic_averaging.md for the statistical analysis.
        self.update_normalization = update_normalization
        names = [sorted(name for name, _ in m.named_parameters()) for m in self.models]
        if any(ns != names[0] for ns in names[1:]):
            raise ValueError("parallel models have mismatched parameter structure")
        # Reference starts at the average of the parallel models.
        self.reference: StateDict = self._average_state()
        self.queue: MessageQueue[StateDict] = MessageQueue(delay=queue_delay, name="updates")
        self._accumulated: StateDict = {k: np.zeros_like(v) for k, v in self.reference.items()}
        self._received = 0
        #: optional repro.obs MetricRegistry: commit() publishes the RMS
        #: magnitude of each α-pull and reference_step() the RMS of each
        #: applied reference update.  All telemetry is computed from
        #: values the update rules produce anyway, so instrumented and
        #: bare runs evolve the weights bitwise identically (tested).
        self.registry = registry

    @property
    def num_parallel(self) -> int:
        return len(self.models)

    # ------------------------------------------------------------------ #
    # elastic resize (repro.resilience): evict / rejoin pipelines

    def resize(self, keep: Sequence[int] | int, alpha: float | None = None) -> None:
        """Shrink to a subset of the parallel models and renormalize α.

        ``keep`` is either the new pipeline count N′ (the first N′ models
        survive) or an explicit list of surviving indices.  If the
        framework was constructed with the automatic α = 1/N, α becomes
        1/N′; an explicitly chosen α is kept unless ``alpha`` overrides it.

        The in-flight averaging round is discarded: partial accumulations
        and queued deltas were produced under the old N's normalization
        (and possibly by the dead pipeline), so mixing them into a 1/N′
        round would break the conservation property the tests assert.
        The reference itself is untouched — that is what makes eviction
        semantics-preserving: survivors keep pulling toward the same
        center, now with weight 1/N′.
        """
        if isinstance(keep, int):
            keep = list(range(keep))
        keep = list(keep)
        if not keep:
            raise ValueError("resize needs at least one surviving model")
        if len(set(keep)) != len(keep):
            raise ValueError(f"duplicate indices in {keep}")
        if any(not 0 <= i < len(self.models) for i in keep):
            raise ValueError(f"index out of range in {keep}")
        self.models = [self.models[i] for i in keep]
        if alpha is not None:
            self.alpha = float(alpha)
        elif self._alpha_auto:
            self.alpha = 1.0 / len(self.models)
        self._discard_round()

    def remove_model(self, index: int) -> None:
        """Evict one parallel model (a crashed pipeline)."""
        if len(self.models) == 1:
            raise ValueError("cannot evict the last parallel model")
        self.resize([i for i in range(len(self.models)) if i != index])

    def add_model(self, model: PipelineModel, seed_from_reference: bool = True) -> int:
        """Re-admit a pipeline; by default it restarts from the reference.

        Seeding from the reference is what keeps a rejoin invisible to the
        center: the newcomer's first dilution is a no-op and its first
        delta is measured from the reference, exactly as if it had always
        been there at the fixed point.  Returns the new model's index.
        """
        names = sorted(name for name, _ in model.named_parameters())
        if names != sorted(self.reference):
            raise ValueError("rejoining model has mismatched parameter structure")
        if seed_from_reference:
            model.load_state_dict(self.reference)
        self.models.append(model)
        if self._alpha_auto:
            self.alpha = 1.0 / len(self.models)
        self._discard_round()
        return len(self.models) - 1

    def _discard_round(self) -> None:
        """Reset the in-flight accumulate round after a membership change."""
        self._accumulated = {k: np.zeros_like(v) for k, v in self.reference.items()}
        self._received = 0
        self.queue.clear()

    # ------------------------------------------------------------------ #
    # pipeline-side steps

    def capture(self, index: int) -> StateDict:
        """Snapshot model ``index`` before its optimizer step (step 1)."""
        return self.models[index].state_dict()

    def commit(self, index: int, before: Mapping[str, np.ndarray]) -> None:
        """After the optimizer step: compute Δ, dilute, post (steps 2-3)."""
        model = self.models[index]
        track = self.registry is not None and self.registry.enabled
        pull_sq, size = 0.0, 0
        delta: StateDict = {}
        for name, param in model.named_parameters():
            delta[name] = param.data - before[name]
            # Step 2: dilute toward the (possibly stale) reference.
            diluted = (1.0 - self.alpha) * param.data + self.alpha * self.reference[name]
            if track:
                move = diluted.astype(np.float64) - param.data
                pull_sq += float((move**2).sum())
                size += move.size
            param.data = diluted
        self.queue.put(delta)
        if track:
            self.registry.counter("elastic.commits", model=index).inc()
            self.registry.histogram(
                "elastic.pull_rms", buckets=_RMS_BUCKETS, model=index
            ).observe(float(np.sqrt(pull_sq / max(size, 1))))
            self.registry.gauge("elastic.alpha").set(self.alpha)

    # ------------------------------------------------------------------ #
    # reference-side steps

    def reference_step(self) -> bool:
        """Steps 4-5: drain arrived updates; apply once N accumulated.

        Returns True if the reference advanced this call.
        """
        for delta in self.queue.drain():
            for name, value in delta.items():
                self._accumulated[name] += value
            self._received += 1
        if self._received < self.num_parallel:
            return False
        track = self.registry is not None and self.registry.enabled
        update_sq, size = 0.0, 0
        scale = 1.0 if self.update_normalization == "sum" else 1.0 / self.num_parallel
        for name in self.reference:
            applied = scale * self._accumulated[name]
            if track:
                update_sq += float((applied.astype(np.float64) ** 2).sum())
                size += applied.size
            self.reference[name] = self.reference[name] + applied
            self._accumulated[name][...] = 0.0
        self._received = 0
        if track:
            self.registry.counter("elastic.reference_updates").inc()
            self.registry.histogram(
                "elastic.update_rms", buckets=_RMS_BUCKETS
            ).observe(float(np.sqrt(update_sq / max(size, 1))))
        return True

    def end_iteration(self) -> bool:
        """Advance the queue clock, then run the reference process."""
        self.queue.tick()
        return self.reference_step()

    # ------------------------------------------------------------------ #
    # introspection

    def reference_model(self, template: PipelineModel) -> PipelineModel:
        """Load the reference weights into ``template`` (for evaluation)."""
        template.load_state_dict(self.reference)
        return template

    def _average_state(self) -> StateDict:
        n = len(self.models)
        avg: StateDict = {}
        for model in self.models:
            for name, param in model.named_parameters():
                if name in avg:
                    avg[name] += param.data.astype(np.float64)
                else:
                    avg[name] = param.data.astype(np.float64).copy()
        return {k: (v / n).astype(np.float32) for k, v in avg.items()}

    def divergence(self) -> float:
        """RMS distance of parallel models from the reference — the
        quantity the elastic term keeps bounded (Figure 5's rationale)."""
        total = 0.0
        count = 0
        for model in self.models:
            for name, param in model.named_parameters():
                diff = param.data.astype(np.float64) - self.reference[name]
                total += float((diff**2).sum())
                count += diff.size
        return float(np.sqrt(total / max(count, 1)))
