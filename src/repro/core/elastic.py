"""The elastic-averaging-based framework (§3.2).

N *parallel models* each train on their own batches with a user-chosen
optimizer (Adam, SGD, ASGD, ... — the framework never looks inside the
optimizer, which is the §3.1 point of difference from EASGD-style coupled
optimizers).  A *reference model* holds the center the parallel models
are pulled toward.

Per iteration, for each parallel model i (§3.2 steps 1-5):

1. the pipeline computes a local update Δ_i = opt_step(x_i) − x_i,
2. the model is diluted toward the reference:
   x_i ← (1−α)·x_i' + α·x_ref  with α = 1/N (empirical default, [18]),
3. Δ_i is posted to the reference's message queue (async),
4. the reference process accumulates arriving updates,
5. once all N updates of an iteration arrived it applies the normalized
   accumulated update: x_ref ← x_ref + normalize(ΣΔ_i), where the
   normalization is "mean" (1/N, the default — the reference tracks the
   parallel-model average of Figure 5) or "sum" (the first-order
   sequential-equivalent reading; see the attribute docstring below).

With a synchronous queue, "mean" keeps the reference a bounded-lag
tracker of the parallel-model average — an invariant the tests assert;
with an async queue, step 2 may see a reference that lags by the queue
delay, which is the configuration the paper runs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.messages import MessageQueue
from repro.models.pipeline_model import PipelineModel

__all__ = ["ElasticAveragingFramework"]

StateDict = dict[str, np.ndarray]

#: exponential buckets for weight-space RMS magnitudes (α-pulls and
#: applied reference updates): 1e-8 .. ~5.4, factor-2 resolution.
_RMS_BUCKETS = tuple(1e-8 * (2.0**i) for i in range(30))


class _FlatDict(dict):
    """A StateDict whose values are views into one flat float32 vector.

    Reads behave exactly like a plain dict of arrays.  The hot paths use
    ``flat`` directly to run one fused sweep over all parameters instead
    of one ufunc dispatch per parameter; any *rebinding* mutation drops
    ``flat`` so a modified snapshot silently degrades to the per-name
    path (in-place writes through the views stay coherent — they alias
    the vector).
    """

    __slots__ = ("flat",)

    def __init__(self, entries, flat: np.ndarray) -> None:
        super().__init__(entries)
        self.flat: np.ndarray | None = flat

    def __setitem__(self, key, value):
        self.flat = None
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self.flat = None
        super().__delitem__(key)

    def update(self, *args, **kwargs):
        self.flat = None
        super().update(*args, **kwargs)

    def pop(self, *args):
        self.flat = None
        return super().pop(*args)

    def popitem(self):
        self.flat = None
        return super().popitem()

    def setdefault(self, key, default=None):
        self.flat = None
        return super().setdefault(key, default)

    def clear(self):
        self.flat = None
        super().clear()


class ElasticAveragingFramework:
    """Coordinates N parallel :class:`PipelineModel`\\ s and a reference.

    Parameters
    ----------
    parallel_models:
        The N models, structurally identical, typically initialized from
        the same seed (the reference starts at their common value).
    alpha:
        Elastic pull coefficient; ``None`` means the paper's 1/N default.
    queue_delay:
        Iterations of staleness on the update queue (0 = synchronous).
    """

    def __init__(
        self,
        parallel_models: Sequence[PipelineModel],
        alpha: float | None = None,
        queue_delay: int = 1,
        update_normalization: str = "mean",
        registry=None,
    ) -> None:
        if not parallel_models:
            raise ValueError("need at least one parallel model")
        if update_normalization not in ("sum", "mean"):
            raise ValueError(f"update_normalization must be 'sum' or 'mean', got {update_normalization!r}")
        self.models = list(parallel_models)
        n = len(self.models)
        #: whether alpha tracks 1/N automatically — resize() renormalizes
        #: an auto alpha to 1/N' but leaves an explicit one alone.
        self._alpha_auto = alpha is None
        self.alpha = (1.0 / n) if alpha is None else float(alpha)
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        #: §3.2 step 5 says the reference "normalizes and applies the
        #: accumulated update".  Two readings are implemented:
        #:   "mean" (default) — x_ref += (1/N) sum(delta): the reference
        #:     is a bounded-lag tracker of the parallel-model average
        #:     (the Figure-5 picture) and the dynamics are stable for
        #:     every optimizer we tested.
        #:   "sum" — x_ref += sum(delta): first-order equivalent to the
        #:     sequential trajectory; it makes Figure 14's epoch parity
        #:     an identity but is oscillation-prone at this miniature's
        #:     compressed learning rates, so it is opt-in.
        #: See docs/elastic_averaging.md for the statistical analysis.
        self.update_normalization = update_normalization
        names = [sorted(name for name, _ in m.named_parameters()) for m in self.models]
        if any(ns != names[0] for ns in names[1:]):
            raise ValueError("parallel models have mismatched parameter structure")
        # Reference starts at the average of the parallel models.
        self.reference: StateDict = self._average_state()
        self.queue: MessageQueue[StateDict] = MessageQueue(delay=queue_delay, name="updates")
        self._received = 0
        # Parameter lists and per-name scratch buffers for the hot
        # capture/commit/apply path.  Model structure is fixed between
        # membership changes (all layers create their parameters in
        # __init__), so the traversal is done once here and redone only
        # in _discard_round.
        self._rebuild_param_cache()
        #: optional repro.obs MetricRegistry: commit() publishes the RMS
        #: magnitude of each α-pull and reference_step() the RMS of each
        #: applied reference update.  All telemetry is computed from
        #: values the update rules produce anyway, so instrumented and
        #: bare runs evolve the weights bitwise identically (tested).
        self.registry = registry

    @property
    def num_parallel(self) -> int:
        return len(self.models)

    # ------------------------------------------------------------------ #
    # elastic resize (repro.resilience): evict / rejoin pipelines

    def resize(self, keep: Sequence[int] | int, alpha: float | None = None) -> None:
        """Shrink to a subset of the parallel models and renormalize α.

        ``keep`` is either the new pipeline count N′ (the first N′ models
        survive) or an explicit list of surviving indices.  If the
        framework was constructed with the automatic α = 1/N, α becomes
        1/N′; an explicitly chosen α is kept unless ``alpha`` overrides it.

        The in-flight averaging round is discarded: partial accumulations
        and queued deltas were produced under the old N's normalization
        (and possibly by the dead pipeline), so mixing them into a 1/N′
        round would break the conservation property the tests assert.
        The reference itself is untouched — that is what makes eviction
        semantics-preserving: survivors keep pulling toward the same
        center, now with weight 1/N′.
        """
        if isinstance(keep, int):
            keep = list(range(keep))
        keep = list(keep)
        if not keep:
            raise ValueError("resize needs at least one surviving model")
        if len(set(keep)) != len(keep):
            raise ValueError(f"duplicate indices in {keep}")
        if any(not 0 <= i < len(self.models) for i in keep):
            raise ValueError(f"index out of range in {keep}")
        self.models = [self.models[i] for i in keep]
        if alpha is not None:
            self.alpha = float(alpha)
        elif self._alpha_auto:
            self.alpha = 1.0 / len(self.models)
        self._discard_round()

    def remove_model(self, index: int) -> None:
        """Evict one parallel model (a crashed pipeline)."""
        if len(self.models) == 1:
            raise ValueError("cannot evict the last parallel model")
        self.resize([i for i in range(len(self.models)) if i != index])

    def add_model(self, model: PipelineModel, seed_from_reference: bool = True) -> int:
        """Re-admit a pipeline; by default it restarts from the reference.

        Seeding from the reference is what keeps a rejoin invisible to the
        center: the newcomer's first dilution is a no-op and its first
        delta is measured from the reference, exactly as if it had always
        been there at the fixed point.  Returns the new model's index.
        """
        names = sorted(name for name, _ in model.named_parameters())
        if names != sorted(self.reference):
            raise ValueError("rejoining model has mismatched parameter structure")
        if seed_from_reference:
            model.load_state_dict(self.reference)
        self.models.append(model)
        if self._alpha_auto:
            self.alpha = 1.0 / len(self.models)
        self._discard_round()
        return len(self.models) - 1

    def _discard_round(self) -> None:
        """Reset the in-flight accumulate round after a membership change."""
        self._received = 0
        self.queue.clear()
        self._rebuild_param_cache()

    def _rebuild_param_cache(self) -> None:
        """Flatten each model's parameter walk and allocate scratch.

        The scratch buffers hold the elementwise temporaries of the
        dilution/apply arithmetic over the *concatenated* parameter
        vector, so the hot path runs a handful of fused sweeps instead of
        four ufunc dispatches per parameter.  Also (re)creates the
        accumulator: when every reference entry is float32 and the models
        agree on walk order, ``_accumulated`` becomes views into one flat
        vector (``_acc_flat``) so arriving flat deltas accumulate in a
        single add — rebuilding it here also resets the in-flight round.
        """
        self._param_lists = [list(m.named_parameters()) for m in self.models]
        total = sum(v.size for v in self.reference.values())
        # Five persistent flat workspaces (gathered data / before / ref and
        # two elementwise temporaries): the hot path's only fresh
        # allocations are the arrays that outlive the call (the queued Δ
        # and the new diluted / reference vectors).
        self._flat_bufs = tuple(np.empty(total, dtype=np.float32) for _ in range(5))
        # Canonical flat layout: model 0's walk order.  The flat paths
        # require every model to share it (delta vectors are laid out in
        # the committing model's order) and an all-float32 reference.
        names = [name for name, _ in self._param_lists[0]]
        self._names = names
        f32 = np.float32
        flat_ok = (
            set(names) == set(self.reference)
            and all(
                [n for n, _ in plist] == names for plist in self._param_lists[1:]
            )
            and all(v.dtype == f32 for v in self.reference.values())
        )
        if flat_ok:
            acc_flat = np.zeros(total, dtype=f32)
            acc: StateDict = {}
            off = 0
            for name in names:
                ref = self.reference[name]
                end = off + ref.size
                acc[name] = acc_flat[off:end].reshape(ref.shape)
                off = end
            self._accumulated = acc
            self._acc_flat: np.ndarray | None = acc_flat
            # Identity fingerprints of the views: external code that
            # *rebinds* an entry (checkpoint restore) breaks the aliasing,
            # which _acc_views_valid detects before any flat accumulate.
            self._acc_views = tuple(acc[name] for name in names)
        else:
            self._accumulated = {
                k: np.zeros_like(v) for k, v in self.reference.items()
            }
            self._acc_flat = None
            self._acc_views = ()

    def _acc_views_valid(self) -> bool:
        acc = self._accumulated
        return len(acc) == len(self._acc_views) and all(
            acc.get(name) is view
            for name, view in zip(self._names, self._acc_views)
        )

    # ------------------------------------------------------------------ #
    # pipeline-side steps

    def capture(self, index: int) -> StateDict:
        """Snapshot model ``index`` before its optimizer step (step 1)."""
        plist = self._param_lists[index]
        f32 = np.float32
        if all(p.data.dtype == f32 for _, p in plist):
            # One concatenated copy plus per-name views: the same values
            # as per-name copies, but commit() can consume the flat
            # vector directly instead of re-gathering the snapshot.
            flat = np.concatenate([p.data.ravel() for _, p in plist])
            entries = []
            off = 0
            for name, p in plist:
                end = off + p.data.size
                entries.append((name, flat[off:end].reshape(p.data.shape)))
                off = end
            return _FlatDict(entries, flat)
        return {name: p.data.copy() for name, p in plist}

    def commit(self, index: int, before: Mapping[str, np.ndarray]) -> None:
        """After the optimizer step: compute Δ, dilute, post (steps 2-3)."""
        track = self.registry is not None and self.registry.enabled
        alpha = self.alpha
        keep = 1.0 - alpha
        reference = self.reference
        plist = self._param_lists[index]
        delta: StateDict = {}
        f32 = np.float32
        # Flat fast path.  Δ and the dilution are purely elementwise, so
        # computing them over the concatenated parameter vector is bitwise
        # identical to the per-parameter loop below — at a handful of
        # ufunc dispatches total instead of four per parameter.  Requires
        # uniform float32: a model whose optimizer promoted a weight to
        # float64 must keep the per-parameter promoting expressions, bit
        # for bit.  The dtype guard doubles as the gather pass.
        fast = not track
        if fast:
            data_r = []
            ref_r = []
            for name, p in plist:
                d = p.data
                r = reference[name]
                if d.dtype != f32 or r.dtype != f32:
                    fast = False
                    break
                data_r.append(d.ravel())
                ref_r.append(r.ravel())
        if fast:
            bflat = before.flat if type(before) is _FlatDict else None
            before_r: list[np.ndarray] = []
            if bflat is None:
                for name, _ in plist:
                    b = before[name]
                    if b.dtype != f32:
                        fast = False
                        break
                    before_r.append(b.ravel())
        if fast:
            b_data, b_before, b_ref, s0, s1 = self._flat_bufs
            try:
                data_flat = np.concatenate(data_r, out=b_data)
                ref_flat = np.concatenate(ref_r, out=b_ref)
                if bflat is not None and bflat.size == data_flat.size:
                    before_flat = bflat
                else:
                    before_flat = np.concatenate(
                        before_r or [before[name].ravel() for name, _ in plist],
                        out=b_before,
                    )
                delta_flat = data_flat - before_flat
                np.multiply(keep, data_flat, out=s0)
                np.multiply(alpha, ref_flat, out=s1)
                diluted_flat = np.add(s0, s1)
            except ValueError:
                # Stale workspaces (external surgery changed parameter
                # sizes): same arithmetic over fresh concatenations.
                data_flat = np.concatenate(data_r)
                ref_flat = np.concatenate(ref_r)
                if bflat is not None and bflat.size == data_flat.size:
                    before_flat = bflat
                else:
                    before_flat = np.concatenate(
                        before_r or [before[name].ravel() for name, _ in plist]
                    )
                delta_flat = data_flat - before_flat
                diluted_flat = keep * data_flat + alpha * ref_flat
            off = 0
            for name, param in plist:
                shape = param.data.shape
                end = off + param.data.size
                delta[name] = delta_flat[off:end].reshape(shape)
                param.data = diluted_flat[off:end].reshape(shape)
                off = end
            self.queue.put(_FlatDict(delta, delta_flat))
            return
        pull_sq, size = 0.0, 0
        for name, param in plist:
            data = param.data
            delta[name] = data - before[name]
            # Step 2: dilute toward the (possibly stale) reference.
            diluted = keep * data + alpha * reference[name]
            if track:
                move = diluted.astype(np.float64) - data
                pull_sq += float((move**2).sum())
                size += move.size
            param.data = diluted
        self.queue.put(delta)
        if track:
            self.registry.counter("elastic.commits", model=index).inc()
            self.registry.histogram(
                "elastic.pull_rms", buckets=_RMS_BUCKETS, model=index
            ).observe(float(np.sqrt(pull_sq / max(size, 1))))
            self.registry.gauge("elastic.alpha").set(self.alpha)

    # ------------------------------------------------------------------ #
    # reference-side steps

    def reference_step(self) -> bool:
        """Steps 4-5: drain arrived updates; apply once N accumulated.

        Returns True if the reference advanced this call.
        """
        acc_flat = self._acc_flat
        if acc_flat is not None and not self._acc_views_valid():
            # External code rebound accumulator entries (checkpoint
            # restore does).  The flat vector no longer backs the dict —
            # drop it and stay on the per-name path until the next
            # rebuild.
            acc_flat = self._acc_flat = None
            self._acc_views = ()
        for delta in self.queue.drain():
            flat = delta.flat if type(delta) is _FlatDict else None
            if acc_flat is not None and flat is not None and flat.size == acc_flat.size:
                # Both sides laid out in self._names order (commit and
                # _rebuild_param_cache share it): one add for the whole
                # delta, bitwise identical per element to the loop below.
                acc_flat += flat
            else:
                accumulated = self._accumulated
                for name, value in delta.items():
                    accumulated[name] += value
            self._received += 1
        if self._received < self.num_parallel:
            return False
        track = self.registry is not None and self.registry.enabled
        update_sq, size = 0.0, 0
        scale = 1.0 if self.update_normalization == "sum" else 1.0 / self.num_parallel
        accumulated = self._accumulated
        reference = self.reference
        f32 = np.float32
        names = self._names
        if (
            not track
            and acc_flat is not None
            and len(reference) == len(names)
            and all(
                (r := reference.get(name)) is not None and r.dtype == f32
                for name in names
            )
        ):
            # Flat fast path — same elementwise arithmetic as the loop
            # below over the concatenated vectors (see commit()).  The
            # accumulator is already flat; only the reference needs a
            # gather.
            try:
                _b0, _b1, b_ref, s0, _s1 = self._flat_bufs
                try:
                    ref_flat = np.concatenate(
                        [reference[name].ravel() for name in names], out=b_ref
                    )
                except ValueError:  # stale workspaces (external surgery)
                    ref_flat = np.concatenate(
                        [reference[name].ravel() for name in names]
                    )
                    if ref_flat.size != acc_flat.size:
                        raise
                applied_flat = np.multiply(scale, acc_flat, out=s0)
                new_ref = ref_flat + applied_flat
            except ValueError:
                pass  # size drift vs the accumulator: composed loop below
            else:
                off = 0
                for name in names:
                    old = reference[name]
                    end = off + old.size
                    reference[name] = new_ref[off:end].reshape(old.shape)
                    off = end
                acc_flat[...] = 0.0
                self._received = 0
                return True
        for name in reference:
            acc = accumulated[name]
            applied = scale * acc
            if track:
                update_sq += float((applied.astype(np.float64) ** 2).sum())
                size += applied.size
            reference[name] = reference[name] + applied
            acc[...] = 0.0
        self._received = 0
        if track:
            self.registry.counter("elastic.reference_updates").inc()
            self.registry.histogram(
                "elastic.update_rms", buckets=_RMS_BUCKETS
            ).observe(float(np.sqrt(update_sq / max(size, 1))))
        return True

    def end_iteration(self) -> bool:
        """Advance the queue clock, then run the reference process."""
        self.queue.tick()
        return self.reference_step()

    # ------------------------------------------------------------------ #
    # introspection

    def reference_model(self, template: PipelineModel) -> PipelineModel:
        """Load the reference weights into ``template`` (for evaluation)."""
        template.load_state_dict(self.reference)
        return template

    def _average_state(self) -> StateDict:
        n = len(self.models)
        avg: StateDict = {}
        for model in self.models:
            for name, param in model.named_parameters():
                if name in avg:
                    avg[name] += param.data.astype(np.float64)
                else:
                    avg[name] = param.data.astype(np.float64).copy()
        return {k: (v / n).astype(np.float32) for k, v in avg.items()}

    def divergence(self) -> float:
        """RMS distance of parallel models from the reference — the
        quantity the elastic term keeps bounded (Figure 5's rationale)."""
        total = 0.0
        count = 0
        for model in self.models:
            for name, param in model.named_parameters():
                diff = param.data.astype(np.float64) - self.reference[name]
                total += float((diff**2).sum())
                count += diff.size
        return float(np.sqrt(total / max(count, 1)))
