"""Training checkpoints.

Long AvgPipe runs (the paper's take days) need restartable state: every
parallel model, every optimizer's moments, the reference weights and the
queue clock.  Checkpoints are a single ``.npz`` file (no pickle — the
state is plain arrays plus a JSON manifest), so they are portable and
diff-able.

``save_trainer`` / ``load_trainer`` round-trip an
:class:`~repro.core.trainer.AvgPipeTrainer` exactly: a resumed run
continues bit-identically (tested), which is also what makes the
statistical-efficiency experiments cheap to extend.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.trainer import AvgPipeTrainer

__all__ = ["save_trainer", "load_trainer"]

#: v2 adds per-model RNG streams, the alpha-auto bit and resizable loads
#: (repro.resilience recovery); v1 checkpoints still load.
_FORMAT_VERSION = 2
_SUPPORTED_FORMATS = (1, 2)


def _flatten(prefix: str, state: dict) -> dict[str, np.ndarray]:
    """Flatten a {name: ndarray-or-scalar} dict into npz-safe arrays."""
    out = {}
    for key, value in state.items():
        out[f"{prefix}/{key}"] = np.asarray(value)
    return out


def _model_rng_states(model) -> list[dict]:
    """Every submodule RNG's bit-generator state, in traversal order.

    Dropout/weight-drop streams are part of the training trajectory; a
    deterministic restart-from-checkpoint must resume them mid-stream,
    not re-seed them."""
    return [
        module._rng.bit_generator.state
        for layer in model.layers
        for module in layer.modules()
    ]


def _restore_model_rngs(model, states: list[dict]) -> None:
    modules = [m for layer in model.layers for m in layer.modules()]
    if len(modules) != len(states):
        raise ValueError(
            f"checkpoint has {len(states)} RNG streams, model has {len(modules)} modules"
        )
    for module, state in zip(modules, states):
        rng = np.random.default_rng()
        rng.bit_generator.state = state
        object.__setattr__(module, "_rng", rng)


def save_trainer(trainer: AvgPipeTrainer, path: str | pathlib.Path) -> None:
    """Serialize an AvgPipe trainer's full training state to ``path``."""
    path = pathlib.Path(path)
    arrays: dict[str, np.ndarray] = {}
    manifest = {
        "format": _FORMAT_VERSION,
        "num_pipelines": trainer.num_pipelines,
        "alpha": trainer.framework.alpha,
        "queue_delay": trainer.framework.queue.delay,
        "queue_now": trainer.framework.queue.now,
        "update_normalization": trainer.framework.update_normalization,
        "optimizer_lrs": [opt.lr for opt in trainer.optimizers],
        "alpha_auto": trainer.framework._alpha_auto,
        "rng": [_model_rng_states(m) for m in trainer.models],
    }
    for i, model in enumerate(trainer.models):
        arrays.update(_flatten(f"model{i}", model.state_dict()))
    arrays.update(_flatten("reference", trainer.framework.reference))
    arrays.update(_flatten("accumulated", trainer.framework._accumulated))
    manifest["received"] = trainer.framework._received
    # In-flight queue messages (deltas posted but not yet visible).
    pending = list(trainer.framework.queue._pending)
    manifest["queue_visible_at"] = [env.visible_at for env in pending]
    for j, env in enumerate(pending):
        arrays.update(_flatten(f"queue{j}", env.payload))
    for i, opt in enumerate(trainer.optimizers):
        opt_state = opt.state_dict()
        for slot, entry in opt_state["state"].items():
            for key, value in entry.items():
                arrays[f"opt{i}/{slot}/{key}"] = np.asarray(value)
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_trainer(
    trainer: AvgPipeTrainer, path: str | pathlib.Path, allow_resize: bool = False
) -> AvgPipeTrainer:
    """Restore state saved by :func:`save_trainer` into ``trainer``.

    The trainer must have been constructed with the same spec and
    ``num_pipelines``; mismatches raise rather than silently mixing runs.
    With ``allow_resize=True`` a trainer with *more* pipelines than the
    checkpoint is first shrunk to match (the recovery path: a checkpoint
    taken after :meth:`~repro.core.trainer.AvgPipeTrainer.evict_pipeline`
    restarts into a freshly-built N-pipeline trainer) — growing is still
    an error, because the extra models' states would be invented.
    """
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        manifest = json.loads(bytes(data["__manifest__"]).decode("utf-8"))
        if manifest["format"] not in _SUPPORTED_FORMATS:
            raise ValueError(f"unsupported checkpoint format {manifest['format']}")
        ckpt_n = manifest["num_pipelines"]
        if ckpt_n != trainer.num_pipelines:
            if not (allow_resize and ckpt_n < trainer.num_pipelines):
                raise ValueError(
                    f"checkpoint has {ckpt_n} pipelines, "
                    f"trainer has {trainer.num_pipelines}"
                )
            while trainer.num_pipelines > ckpt_n:
                trainer.evict_pipeline(trainer.num_pipelines - 1)
        for i, model in enumerate(trainer.models):
            prefix = f"model{i}/"
            state = {
                key[len(prefix):]: data[key] for key in data.files if key.startswith(prefix)
            }
            model.load_state_dict(state)
        ref_state = {
            key[len("reference/"):]: data[key]
            for key in data.files
            if key.startswith("reference/")
        }
        for name, value in ref_state.items():
            trainer.framework.reference[name] = value.copy()
        for key in data.files:
            if key.startswith("accumulated/"):
                trainer.framework._accumulated[key[len("accumulated/"):]] = data[key].copy()
        trainer.framework._received = manifest["received"]
        # Rebuild the in-flight queue with its original visibility clock.
        from repro.core.messages import MessageQueue, _Envelope

        queue = MessageQueue(delay=manifest["queue_delay"], name="updates")
        queue._now = manifest["queue_now"]
        for j, visible_at in enumerate(manifest["queue_visible_at"]):
            prefix = f"queue{j}/"
            payload = {
                key[len(prefix):]: data[key].copy()
                for key in data.files
                if key.startswith(prefix)
            }
            queue._pending.append(_Envelope(payload, visible_at))
        trainer.framework.queue = queue
        for i, opt in enumerate(trainer.optimizers):
            prefix = f"opt{i}/"
            entries: dict[int, dict] = {}
            for key in data.files:
                if not key.startswith(prefix):
                    continue
                _, slot, field = key.split("/", 2)
                value = data[key]
                entries.setdefault(int(slot), {})[field] = (
                    value.item() if value.ndim == 0 else value
                )
            opt.load_state_dict({"lr": manifest["optimizer_lrs"][i], "state": entries})
        trainer.framework.alpha = manifest["alpha"]
        trainer.framework.update_normalization = manifest["update_normalization"]
        trainer.framework._alpha_auto = manifest.get("alpha_auto", False)
        for model, states in zip(trainer.models, manifest.get("rng", [])):
            _restore_model_rngs(model, states)
    return trainer
