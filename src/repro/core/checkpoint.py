"""Training checkpoints.

Long AvgPipe runs (the paper's take days) need restartable state: every
parallel model, every optimizer's moments, the reference weights and the
queue clock.  Checkpoints are a single ``.npz`` file (no pickle — the
state is plain arrays plus a JSON manifest), so they are portable and
diff-able.

``save_trainer`` / ``load_trainer`` round-trip an
:class:`~repro.core.trainer.AvgPipeTrainer` exactly: a resumed run
continues bit-identically (tested), which is also what makes the
statistical-efficiency experiments cheap to extend.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.trainer import AvgPipeTrainer

__all__ = ["save_trainer", "load_trainer"]

_FORMAT_VERSION = 1


def _flatten(prefix: str, state: dict) -> dict[str, np.ndarray]:
    """Flatten a {name: ndarray-or-scalar} dict into npz-safe arrays."""
    out = {}
    for key, value in state.items():
        out[f"{prefix}/{key}"] = np.asarray(value)
    return out


def save_trainer(trainer: AvgPipeTrainer, path: str | pathlib.Path) -> None:
    """Serialize an AvgPipe trainer's full training state to ``path``."""
    path = pathlib.Path(path)
    arrays: dict[str, np.ndarray] = {}
    manifest = {
        "format": _FORMAT_VERSION,
        "num_pipelines": trainer.num_pipelines,
        "alpha": trainer.framework.alpha,
        "queue_delay": trainer.framework.queue.delay,
        "queue_now": trainer.framework.queue.now,
        "update_normalization": trainer.framework.update_normalization,
        "optimizer_lrs": [opt.lr for opt in trainer.optimizers],
    }
    for i, model in enumerate(trainer.models):
        arrays.update(_flatten(f"model{i}", model.state_dict()))
    arrays.update(_flatten("reference", trainer.framework.reference))
    arrays.update(_flatten("accumulated", trainer.framework._accumulated))
    manifest["received"] = trainer.framework._received
    # In-flight queue messages (deltas posted but not yet visible).
    pending = list(trainer.framework.queue._pending)
    manifest["queue_visible_at"] = [env.visible_at for env in pending]
    for j, env in enumerate(pending):
        arrays.update(_flatten(f"queue{j}", env.payload))
    for i, opt in enumerate(trainer.optimizers):
        opt_state = opt.state_dict()
        for slot, entry in opt_state["state"].items():
            for key, value in entry.items():
                arrays[f"opt{i}/{slot}/{key}"] = np.asarray(value)
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_trainer(trainer: AvgPipeTrainer, path: str | pathlib.Path) -> AvgPipeTrainer:
    """Restore state saved by :func:`save_trainer` into ``trainer``.

    The trainer must have been constructed with the same spec and
    ``num_pipelines``; mismatches raise rather than silently mixing runs.
    """
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        manifest = json.loads(bytes(data["__manifest__"]).decode("utf-8"))
        if manifest["format"] != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint format {manifest['format']}")
        if manifest["num_pipelines"] != trainer.num_pipelines:
            raise ValueError(
                f"checkpoint has {manifest['num_pipelines']} pipelines, "
                f"trainer has {trainer.num_pipelines}"
            )
        for i, model in enumerate(trainer.models):
            prefix = f"model{i}/"
            state = {
                key[len(prefix):]: data[key] for key in data.files if key.startswith(prefix)
            }
            model.load_state_dict(state)
        ref_state = {
            key[len("reference/"):]: data[key]
            for key in data.files
            if key.startswith("reference/")
        }
        for name, value in ref_state.items():
            trainer.framework.reference[name] = value.copy()
        for key in data.files:
            if key.startswith("accumulated/"):
                trainer.framework._accumulated[key[len("accumulated/"):]] = data[key].copy()
        trainer.framework._received = manifest["received"]
        # Rebuild the in-flight queue with its original visibility clock.
        from repro.core.messages import MessageQueue, _Envelope

        queue = MessageQueue(delay=manifest["queue_delay"], name="updates")
        queue._now = manifest["queue_now"]
        for j, visible_at in enumerate(manifest["queue_visible_at"]):
            prefix = f"queue{j}/"
            payload = {
                key[len(prefix):]: data[key].copy()
                for key in data.files
                if key.startswith(prefix)
            }
            queue._pending.append(_Envelope(payload, visible_at))
        trainer.framework.queue = queue
        for i, opt in enumerate(trainer.optimizers):
            prefix = f"opt{i}/"
            entries: dict[int, dict] = {}
            for key in data.files:
                if not key.startswith(prefix):
                    continue
                _, slot, field = key.split("/", 2)
                value = data[key]
                entries.setdefault(int(slot), {})[field] = (
                    value.item() if value.ndim == 0 else value
                )
            opt.load_state_dict({"lr": manifest["optimizer_lrs"][i], "state": entries})
        trainer.framework.alpha = manifest["alpha"]
        trainer.framework.update_normalization = manifest["update_normalization"]
    return trainer
