"""Asynchronous update queues (§3.2 step 3).

AvgPipe sends each pipeline's local update to the reference process
through a message queue "in an asynchronous manner" so inter-process
communication never blocks the pipeline.  In the real system the effect
of asynchrony is *staleness*: the reference weights a pipeline dilutes
against may lag by a bounded number of iterations.  :class:`MessageQueue`
models exactly that — messages become visible ``delay`` ticks after being
posted — so the statistical-efficiency experiments can measure the cost
of asynchrony (the async-reference ablation) with deterministic replay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Generic, TypeVar

T = TypeVar("T")

__all__ = ["MessageQueue"]


@dataclass
class _Envelope(Generic[T]):
    payload: T
    visible_at: int


class MessageQueue(Generic[T]):
    """FIFO queue whose messages appear ``delay`` ticks after posting.

    ``delay=0`` is a synchronous queue (visible the same tick).  The clock
    is advanced explicitly by the training loop via :meth:`tick`, keeping
    runs reproducible.
    """

    def __init__(self, delay: int = 0, name: str = "queue") -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay
        self.name = name
        self._now = 0
        self._pending: deque[_Envelope[T]] = deque()

    def put(self, payload: T) -> None:
        self._pending.append(_Envelope(payload, self._now + self.delay))

    def tick(self) -> None:
        self._now += 1

    @property
    def now(self) -> int:
        return self._now

    def clear(self) -> int:
        """Drop every pending message; returns how many were discarded.

        Used by elastic resize (repro.resilience): in-flight updates were
        computed under the old pipeline count's normalization and must not
        leak into the resized round.
        """
        dropped = len(self._pending)
        self._pending.clear()
        return dropped

    def drain(self) -> list[T]:
        """Pop every message visible at the current tick (FIFO order)."""
        out: list[T] = []
        while self._pending and self._pending[0].visible_at <= self._now:
            out.append(self._pending.popleft().payload)
        return out

    def __len__(self) -> int:
        return len(self._pending)
