"""Calibration matrix: measure every baseline + AvgPipe candidate on a
workload's simulated cluster, so the :mod:`repro.core.simcfg` constants
can be tuned against the paper's reported regimes.

This used to be an orphan script (``scripts/calibrate.py``); it is now a
library (and the ``repro calibrate`` CLI command) whose measured numbers
are published as ``calibrate.*`` registry gauges:

* ``calibrate.batch_ms{workload,system}`` — simulated milliseconds per
  batch for each feasible system/setting;
* ``calibrate.peak_mib{workload,system}`` — peak device memory;
* ``calibrate.util{workload,system}`` — average GPU utilization;
* ``calibrate.oom{workload,system}`` — 1.0 when the setting OOMs.

``repro bench`` records any ``calibrate.*`` gauges present in the
registry it is handed into the BENCH_<n>.json environment fingerprint,
so a benchmark trajectory carries the calibration that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.simcfg import SimCalibration, calibration_for

__all__ = [
    "CalibrationRow",
    "calibration_with_overrides",
    "render_calibration",
    "run_calibration",
]

MIB = 2**20

#: (M, N) grid of AvgPipe candidate settings the matrix sweeps
_AVGPIPE_SETTINGS: tuple[tuple[int, int], ...] = (
    (64, 2), (64, 3), (32, 2), (32, 3), (16, 2), (16, 3), (8, 2), (4, 2), (1, 2),
)


@dataclass
class CalibrationRow:
    """One measured system/setting on one workload's cluster."""

    workload: str
    system: str
    num_micro: int | None
    batch_ms: float | None
    peak_mib: float | None
    utilization: float | None
    oom: bool = False
    error: str | None = None

    @property
    def feasible(self) -> bool:
        return self.error is None


def _publish(registry, row: CalibrationRow) -> None:
    if registry is None or not row.feasible:
        return
    labels = {"workload": row.workload, "system": row.system}
    registry.gauge("calibrate.batch_ms", **labels).set(row.batch_ms)
    registry.gauge("calibrate.peak_mib", **labels).set(row.peak_mib)
    registry.gauge("calibrate.util", **labels).set(row.utilization)
    registry.gauge("calibrate.oom", **labels).set(1.0 if row.oom else 0.0)


def run_calibration(
    cal: SimCalibration,
    registry=None,
    avgpipe_settings: tuple[tuple[int, int], ...] = _AVGPIPE_SETTINGS,
) -> list[CalibrationRow]:
    """Measure all baselines + AvgPipe candidates on ``cal``'s cluster.

    Returns one row per attempted setting; measured values for feasible
    rows are also published as ``calibrate.*`` gauges when a registry is
    passed.
    """
    from repro.baselines import (
        BASELINE_SYSTEMS,
        choose_baseline_micro,
        simulate_baseline,
    )
    from repro.core.profiler import Profiler
    from repro.schedules.base import AdvanceFPSchedule

    rows: list[CalibrationRow] = []
    for name, system in BASELINE_SYSTEMS.items():
        try:
            if system.schedule is None:
                m = None
                res = simulate_baseline(system, cal)
            else:
                m = choose_baseline_micro(system, cal)
                res = simulate_baseline(system, cal, num_micro=m)
            row = CalibrationRow(
                workload=cal.workload,
                system=name,
                num_micro=m,
                batch_ms=res.batch_time * 1e3,
                peak_mib=max(res.peak_memory) / MIB,
                utilization=res.avg_utilization,
                oom=res.oom is not None,
            )
        except Exception as exc:  # infeasible setting, not a bug
            row = CalibrationRow(
                workload=cal.workload, system=name, num_micro=None,
                batch_ms=None, peak_mib=None, utilization=None,
                error=type(exc).__name__,
            )
        rows.append(row)
        _publish(registry, row)

    profiler = Profiler(
        cal.layer_costs(),
        cal.partition(),
        AdvanceFPSchedule(2),
        cal.cluster_spec(),
        cal.batch_size,
        activation_byte_scale=cal.activation_byte_scale,
        param_byte_scale=cal.param_byte_scale,
        stash_multiplier=cal.stash_multiplier,
        optimizer_state_factor=cal.optimizer_state_factor,
        with_reference_model=True,
    )
    for m, n in avgpipe_settings:
        if cal.batch_size % m:
            continue
        res = profiler.run_setting(m, n, iterations=2)
        row = CalibrationRow(
            workload=cal.workload,
            system=f"avgpipe M={m} N={n}",
            num_micro=m,
            batch_ms=res.batch_time * 1e3,
            peak_mib=max(res.peak_memory) / MIB,
            utilization=res.avg_utilization,
            oom=res.oom is not None,
        )
        rows.append(row)
        _publish(registry, row)
    return rows


def render_calibration(cal: SimCalibration, rows: list[CalibrationRow]) -> str:
    """The plain-text matrix ``repro calibrate`` prints."""
    from repro.utils import format_table

    table = []
    for r in rows:
        if not r.feasible:
            table.append([r.system, "-", "-", "-", "-", f"infeasible ({r.error})"])
            continue
        table.append([
            r.system,
            r.num_micro if r.num_micro is not None else "-",
            round(r.batch_ms, 1),
            round(r.peak_mib, 1),
            round(r.utilization, 2),
            "OOM!" if r.oom else "",
        ])
    title = (
        f"calibration — {cal.workload} "
        f"(act={cal.activation_byte_scale} param={cal.param_byte_scale} "
        f"cap={cal.memory_capacity_bytes / MIB:.0f} MiB, "
        f"partition {cal.partition().boundaries})"
    )
    return format_table(
        ["system", "M", "batch ms", "peak MiB", "util", "note"], table, title=title
    )


def calibration_with_overrides(
    workload: str,
    activation_byte_scale: float | None = None,
    param_byte_scale: float | None = None,
    memory_capacity_mib: float | None = None,
) -> SimCalibration:
    """A shipped calibration with the CLI's tuning knobs applied."""
    cal = calibration_for(workload)
    if activation_byte_scale is not None:
        cal = replace(cal, activation_byte_scale=float(activation_byte_scale))
    if param_byte_scale is not None:
        cal = replace(cal, param_byte_scale=float(param_byte_scale))
    if memory_capacity_mib is not None:
        cal = replace(cal, memory_capacity_bytes=int(memory_capacity_mib * MIB))
    return cal
