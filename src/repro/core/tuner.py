"""Parallelism-degree tuning strategies (§5, Figures 18-19).

* :class:`ProfilingTuner` — the paper's method: one short profiling run,
  Equations 2-8 over the candidate grid, pick the feasible minimum.
* :class:`TraversalTuner` — ground truth: actually run every setting for
  a few batches and pick the fastest (the "takes hours" baseline).
* :class:`GuidelineTuner` — the two naive guidelines: ``max-num``
  (micro-batch size one, then as many pipelines as memory allows) and
  ``max-size`` (one micro-batch per batch, then pipelines).

All tuners report their *tuning cost* in simulated seconds — the quantity
Figure 18 compares — and the chosen setting's measured batch time — the
quantity Figure 19 compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.predictor import Prediction, Predictor, fits_memory
from repro.core.profiler import Profile, Profiler
from repro.graph.cost_model import LayerCost
from repro.graph.partitioner import (
    Partition,
    partition_model,
    search_partition_placement,
)
from repro.sim.cluster import ClusterSpec

__all__ = [
    "TuningOutcome",
    "ProfilingTuner",
    "TraversalTuner",
    "GuidelineTuner",
    "plan_for_spec",
]


@dataclass
class TuningOutcome:
    """A tuner's chosen (M, N) with its measurement cost and quality."""
    method: str
    m: int
    n: int
    tuning_cost: float  # simulated seconds spent measuring
    measured_batch_time: float  # at the chosen setting
    details: list = field(default_factory=list)
    #: the stage cut the tuner ran against (heterogeneous planning
    #: attaches the balanced partition; None = caller's default)
    partition: tuple[int, ...] | None = None
    #: stage -> device permutation; None = straight chain
    placement: tuple[int, ...] | None = None
    #: run-history records the learned layer consulted (0 = analytic)
    records_consulted: int = 0
    #: whether a residual correction actually re-ranked the grid
    residual_applied: bool = False
    #: the analytic winner, for learned-vs-analytic audits
    analytic_setting: tuple[int, int] | None = None
    #: the (possibly corrected) Eq.-1 prediction at the chosen setting
    predicted_batch_time: float | None = None


def plan_for_spec(
    layer_costs: Sequence[LayerCost],
    cluster_spec: ClusterSpec,
    *,
    num_stages: int | None = None,
    activation_byte_scale: float = 1.0,
    param_byte_scale: float = 1.0,
    comm_weight: float = 0.5,
    memory_caps: Sequence[float] | None = None,
    history=None,
) -> tuple[Partition, tuple[int, ...]]:
    """Partition + placement for a (possibly heterogeneous) cluster spec.

    On a uniform spec this is exactly the legacy planner —
    :func:`partition_model` against the inter-node bandwidth, straight-
    chain placement — bit for bit.  On a heterogeneous spec it runs the
    joint balanced-partition/placement search against the spec's
    per-device speeds, link matrix and (optional) per-device memory caps.

    ``history`` (None, a :class:`~repro.tune.store.RunStore`, or a path)
    consults the run-history store: when records exist for this cluster
    and show the Eq.-8 model under-predicting measured peaks, the
    per-layer memory charge is inflated by the learned headroom before
    the placement search.  With no history — or no matching records —
    the legacy expressions run unchanged, bit for bit.
    """
    k = num_stages if num_stages is not None else cluster_spec.num_devices
    headroom = 1.0
    if history is not None:
        from repro.tune.residual import learned_memory_headroom
        from repro.tune.store import as_store, cluster_fingerprint

        headroom = learned_memory_headroom(
            as_store(history), cluster_fingerprint(cluster_spec)
        )
    if cluster_spec.is_uniform:
        part = partition_model(
            layer_costs,
            k,
            bandwidth_bytes_per_sec=cluster_spec.inter_node_bandwidth
            / activation_byte_scale,
            flops_per_sec=cluster_spec.peak_flops,
            comm_weight=comm_weight,
        )
        return part, tuple(range(k))
    matrix = [
        [bw / activation_byte_scale for bw in row]
        for row in cluster_spec.bandwidth_matrix()
    ]
    part, perm, _ = search_partition_placement(
        layer_costs,
        k,
        device_speeds=cluster_spec.speed_vector(),
        bandwidth_matrix=matrix,
        memory_caps=memory_caps,
        flops_per_sec=cluster_spec.peak_flops,
        comm_weight=comm_weight,
        layer_memory_bytes=(
            [3.0 * c.param_bytes * param_byte_scale for c in layer_costs]
            if headroom == 1.0
            else [
                3.0 * c.param_bytes * param_byte_scale * headroom
                for c in layer_costs
            ]
        ),
    )
    return part, perm


def _stage_memory_limits(
    profiler: Profiler, memory_limit: float | Sequence[float]
) -> float | Sequence[float]:
    """Reorder a per-*device* budget into per-*stage* order.

    The Predictor's footprints are stage-indexed; under a placement
    permutation stage k lives on device placement[k].  Scalars pass
    through untouched (the uniform case).
    """
    if isinstance(memory_limit, (int, float)):
        return memory_limit
    placement = profiler.placement or range(profiler.partition.num_stages)
    return [memory_limit[d] for d in placement]


def _fits_devices(
    peaks: Sequence[float], memory_limit: float | Sequence[float]
) -> bool:
    """Whether measured per-device peaks fit a scalar or per-device budget."""
    if isinstance(memory_limit, (int, float)):
        return max(peaks) <= memory_limit
    return all(p <= cap for p, cap in zip(peaks, memory_limit))


def default_m_candidates(batch_size: int) -> list[int]:
    """Divisor-of-batch powers of two (micro-batch counts)."""
    out = []
    m = 1
    while m <= batch_size:
        if batch_size % m == 0:
            out.append(m)
        m *= 2
    return out


def _measure(profiler: Profiler, m: int, n: int, iterations: int = 3) -> tuple[float, float]:
    """(batch time, simulated cost) of actually running a setting."""
    result = profiler.run_setting(m, n, iterations=iterations)
    if result.oom is not None:
        return float("inf"), 0.0
    return result.batch_time, result.total_time


class ProfilingTuner:
    """The paper's method: one profile + Equations 2-8 over the grid.

    ``memory_limit_bytes`` may be a per-*device* sequence on a
    heterogeneous cluster; it is reordered into stage order through the
    profiler's placement before the feasibility check.

    ``history`` (None, a :class:`~repro.tune.store.RunStore`, or a path)
    enables the learned layer: recorded runs matching this profiler's
    configuration re-rank the candidate grid by residual-corrected time
    (:class:`~repro.tune.residual.LearnedPredictor`).  With no history
    or no matching records the analytic path runs unchanged, bit for
    bit — same calls, same winner, same outcome fields.
    """
    def __init__(
        self,
        profiler: Profiler,
        memory_limit_bytes: float | Sequence[float],
        history=None,
        workload: str = "",
    ) -> None:
        self.profiler = profiler
        self.memory_limit = memory_limit_bytes
        if history is not None:
            from repro.tune.store import as_store

            history = as_store(history)
        self.history = history
        self.workload = workload

    def tune(
        self,
        m_candidates: list[int] | None = None,
        n_candidates: list[int] | None = None,
        profile_iterations: int = 4,
        registry=None,
    ) -> TuningOutcome:
        batch = self.profiler.batch_size
        m_candidates = m_candidates or default_m_candidates(batch)
        n_candidates = n_candidates or [1, 2, 3, 4]
        profile: Profile = self.profiler.profile(iterations=profile_iterations)
        predictor = Predictor(profile)
        limits = _stage_memory_limits(self.profiler, self.memory_limit)
        if self.history is None:
            winner, predictions = predictor.best_setting(
                m_candidates, n_candidates, limits
            )
            records_consulted = 0
            residual_applied = False
            analytic_setting = None
            predicted_time = winner.batch_time
        else:
            from repro.tune.residual import LearnedPredictor
            from repro.tune.store import tuner_context

            decision = LearnedPredictor(
                predictor,
                store=self.history,
                context=tuner_context(self.profiler, workload=self.workload),
                workload=self.workload,
            ).best_setting(m_candidates, n_candidates, limits)
            winner = decision.winner
            predictions = decision.predictions
            records_consulted = decision.records_consulted
            residual_applied = decision.residual_applied
            analytic_setting = (
                decision.analytic_winner.m,
                decision.analytic_winner.n,
            )
            predicted_time = decision.corrected.get(
                (winner.m, winner.n), winner.batch_time
            )
        measured, _ = _measure(self.profiler, winner.m, winner.n)
        if registry is not None:
            registry.gauge("tune.records_consulted").set(records_consulted)
            registry.gauge("tune.residual_applied").set(
                1.0 if residual_applied else 0.0
            )
            registry.gauge("tune.predicted_batch_time").set(predicted_time)
            # per-batch, same unit as the Eq.-1 prediction (an iteration
            # advances n concurrent batches)
            registry.gauge("tune.measured_batch_time").set(measured / winner.n)
        return TuningOutcome(
            method="profiling",
            m=winner.m,
            n=winner.n,
            tuning_cost=profile.profiling_cost,
            measured_batch_time=measured,
            details=predictions,
            partition=self.profiler.partition.boundaries,
            placement=self.profiler.placement,
            records_consulted=records_consulted,
            residual_applied=residual_applied,
            analytic_setting=analytic_setting,
            predicted_batch_time=predicted_time,
        )


class TraversalTuner:
    """Ground truth: simulate every setting and keep the fastest feasible."""
    def __init__(
        self,
        profiler: Profiler,
        memory_limit_bytes: float | Sequence[float],
        iterations_per_setting: int = 3,
    ) -> None:
        self.profiler = profiler
        self.memory_limit = memory_limit_bytes
        self.iterations_per_setting = iterations_per_setting

    def tune(
        self,
        m_candidates: list[int] | None = None,
        n_candidates: list[int] | None = None,
    ) -> TuningOutcome:
        batch = self.profiler.batch_size
        m_candidates = m_candidates or default_m_candidates(batch)
        n_candidates = n_candidates or [1, 2, 3, 4]
        best: tuple[float, int, int, float] | None = None
        cost = 0.0
        rows = []
        for m in m_candidates:
            for n in n_candidates:
                result = self.profiler.run_setting(m, n, iterations=self.iterations_per_setting)
                if result.oom is not None:
                    rows.append((m, n, float("inf")))
                    continue
                cost += result.total_time
                # Compare throughput per *batch*: an iteration advances n
                # batches concurrently.
                per_batch = result.batch_time / n
                rows.append((m, n, per_batch))
                if not _fits_devices(result.peak_memory, self.memory_limit):
                    continue
                if best is None or per_batch < best[0]:
                    best = (per_batch, m, n, result.batch_time)
        if best is None:
            raise RuntimeError("traversal found no feasible setting")
        return TuningOutcome(
            method="traversal",
            m=best[1],
            n=best[2],
            tuning_cost=cost,
            measured_batch_time=best[3],
            details=rows,
        )


class GuidelineTuner:
    """The §5.1 naive guidelines."""

    def __init__(
        self, profiler: Profiler, memory_limit_bytes: float | Sequence[float]
    ) -> None:
        self.profiler = profiler
        self.memory_limit = memory_limit_bytes

    def _max_pipelines(self, m: int, n_candidates: list[int]) -> int:
        """Largest feasible N at micro-batch count ``m`` (by memory)."""
        best = 1
        for n in sorted(n_candidates):
            result = self.profiler.run_setting(m, n, iterations=1)
            if result.oom is not None:
                break
            if _fits_devices(result.peak_memory, self.memory_limit):
                best = n
            else:
                break
        return best

    def tune(self, guideline: str, n_candidates: list[int] | None = None) -> TuningOutcome:
        n_candidates = n_candidates or [1, 2, 3, 4]
        batch = self.profiler.batch_size
        if guideline == "max-num":
            m = batch  # micro-batch size one
        elif guideline == "max-size":
            m = 1  # the whole batch as a single micro-batch
        else:
            raise ValueError(f"unknown guideline {guideline!r}")
        n = self._max_pipelines(m, n_candidates)
        measured, cost = _measure(self.profiler, m, n)
        return TuningOutcome(
            method=guideline, m=m, n=n, tuning_cost=cost, measured_batch_time=measured
        )
