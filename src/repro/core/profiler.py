"""Profiling phase of the tuning method (§5.2.1).

Runs the runtime for a small number of batches at one setting of the
parallelism degrees — a rather large M and a small N, so that no GPU is
saturated (``phi < 100%``; Equation 2 cannot be inverted from a clipped
curve) — and collects, per device k:

* ``t_gpu[k]`` — computation time per batch,
* ``t_comm_total[k]`` — total communication time the stage *sent* per
  batch (the paper's T-bb^k),
* ``phi[k]`` — the utilization curve phi^k(t) as a step function,
* ``f_mod[k]`` / ``f_dat[k]`` — model and data memory footprints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.cost_model import LayerCost
from repro.graph.partitioner import Partition
from repro.schedules.base import Schedule
from repro.schedules.executor import PipelineSimRunner, SimIterationResult, StageCosts
from repro.sim.cluster import Cluster, ClusterSpec, make_cluster
from repro.sim.device import UtilizationCurve
from repro.sim.events import Simulator

__all__ = ["Profile", "Profiler"]


@dataclass
class Profile:
    """Everything the predictor needs, measured at setting (m, n)."""

    m: int  # profiled micro-batch number
    n: int  # profiled pipeline number
    batch_size: int
    num_stages: int
    t_gpu: list[float]  # per device, per batch
    t_comm_total: list[float]  # per device, per batch
    phi_times: list[np.ndarray]  # step-function knots per device
    phi_values: list[np.ndarray]
    f_mod: list[int]  # model(+versions+opt) bytes per device
    f_ref: list[int]  # reference-copy bytes (do not scale with N)
    f_dat: list[int]  # peak activation bytes per device
    batch_time: float
    profiling_cost: float  # simulated seconds spent profiling
    #: the device saturation curve, if known.  The paper's Equation 2
    #: assumes arithmetic intensity scales linearly with micro-batch size
    #: ("as a simplification of real-world environments"); when the curve
    #: is available the predictor scales phi by the curve ratio instead,
    #: which ranks settings correctly on saturating hardware.
    curve: UtilizationCurve | None = None

    def phi_integral_over(self, k: int, scale: float) -> float:
        """``integral of max(scale * phi_k(t) - 1, 0) dt`` per batch."""
        times, values = self.phi_times[k], self.phi_values[k]
        total = 0.0
        for i in range(len(times)):
            t_next = times[i + 1] if i + 1 < len(times) else times[-1]
            dt = t_next - times[i]
            if dt > 0:
                total += dt * max(scale * values[i] - 1.0, 0.0)
        return total


class Profiler:
    """Drives a profiling run on a fresh simulated cluster."""

    def __init__(
        self,
        layer_costs: list[LayerCost],
        partition: Partition,
        schedule: Schedule,
        cluster_spec: ClusterSpec,
        batch_size: int,
        activation_byte_scale: float = 1.0,
        param_byte_scale: float = 1.0,
        stash_multiplier: float = 6.0,
        optimizer_state_factor: float = 2.0,
        with_reference_model: bool = True,
        activation_recompute: bool = False,
    ) -> None:
        self.layer_costs = layer_costs
        self.partition = partition
        self.schedule = schedule
        self.cluster_spec = cluster_spec
        self.batch_size = batch_size
        self.activation_byte_scale = activation_byte_scale
        self.param_byte_scale = param_byte_scale
        self.stash_multiplier = stash_multiplier
        self.optimizer_state_factor = optimizer_state_factor
        self.with_reference_model = with_reference_model
        self.activation_recompute = activation_recompute

    def run_setting(
        self,
        m: int,
        n: int,
        iterations: int = 3,
        record_utilization: bool = False,
        render_timeline: bool = False,
        registry=None,
    ) -> SimIterationResult:
        """Simulate ``iterations`` batches at parallelism degrees (m, n).

        ``registry`` (a repro.obs MetricRegistry) is handed to the
        runner, which mirrors spans and end-of-run footprints into it.
        """
        if self.batch_size % m != 0:
            raise ValueError(f"batch {self.batch_size} not divisible by M={m}")
        sim = Simulator()
        cluster = Cluster(sim, self.cluster_spec)
        stage_costs = StageCosts.from_partition(
            self.layer_costs,
            self.partition,
            mb_size=self.batch_size / m,
            activation_byte_scale=self.activation_byte_scale,
            param_byte_scale=self.param_byte_scale,
            stash_multiplier=self.stash_multiplier,
        )
        runner = PipelineSimRunner(
            cluster,
            self.schedule,
            stage_costs,
            num_micro=m,
            mb_size=self.batch_size / m,
            num_pipelines=n,
            with_reference_model=self.with_reference_model,
            optimizer_state_factor=self.optimizer_state_factor,
            record_utilization=record_utilization,
            activation_recompute=self.activation_recompute,
            registry=registry,
        )
        return runner.run(iterations=iterations, render_timeline=render_timeline)

    def profile(self, m: int | None = None, n: int = 1, iterations: int = 4) -> Profile:
        """The §5.2.1 profiling run: large M, small N, a few batches."""
        if m is None:
            # largest power-of-two micro-batch count that keeps >= 2 samples
            m = 1
            while self.batch_size % (m * 2) == 0 and self.batch_size // (m * 2) >= 2:
                m *= 2
        sim = Simulator()
        cluster = Cluster(sim, self.cluster_spec)
        stage_costs = StageCosts.from_partition(
            self.layer_costs,
            self.partition,
            mb_size=self.batch_size / m,
            activation_byte_scale=self.activation_byte_scale,
            param_byte_scale=self.param_byte_scale,
            stash_multiplier=self.stash_multiplier,
        )
        runner = PipelineSimRunner(
            cluster,
            self.schedule,
            stage_costs,
            num_micro=m,
            mb_size=self.batch_size / m,
            num_pipelines=n,
            with_reference_model=self.with_reference_model,
            optimizer_state_factor=self.optimizer_state_factor,
            record_utilization=False,
            activation_recompute=self.activation_recompute,
        )
        result = runner.run(iterations=iterations)
        if result.oom is not None:
            raise result.oom
        K = result.num_stages
        phi_times, phi_values = [], []
        for k in range(K):
            steps = cluster.devices[k].compute.utilization_steps
            phi_times.append(np.array([t for t, _ in steps]) / iterations)
            phi_values.append(np.array([u for _, u in steps]))
        return Profile(
            m=m,
            n=n,
            batch_size=self.batch_size,
            curve=self.cluster_spec.curve,
            num_stages=K,
            t_gpu=[d["gpu"] for d in result.decomposition],
            t_comm_total=list(result.comm_sent_time),
            phi_times=phi_times,
            phi_values=phi_values,
            f_mod=list(result.weight_memory),
            f_ref=list(result.reference_memory),
            f_dat=list(result.data_memory_peak),
            batch_time=result.batch_time,
            profiling_cost=result.total_time,
        )
