"""Profiling phase of the tuning method (§5.2.1).

Runs the runtime for a small number of batches at one setting of the
parallelism degrees — a rather large M and a small N, so that no GPU is
saturated (``phi < 100%``; Equation 2 cannot be inverted from a clipped
curve) — and collects, per device k:

* ``t_gpu[k]`` — computation time per batch,
* ``t_comm_total[k]`` — total communication time the stage *sent* per
  batch (the paper's T-bb^k),
* ``phi[k]`` — the utilization curve phi^k(t) as a step function,
* ``f_mod[k]`` / ``f_dat[k]`` — model and data memory footprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.cost_model import LayerCost
from repro.graph.partitioner import Partition
from repro.schedules.base import Schedule
from repro.schedules.executor import PipelineSimRunner, SimIterationResult, StageCosts
from repro.sim.cluster import Cluster, ClusterSpec, make_cluster
from repro.sim.device import UtilizationCurve
from repro.sim.events import Simulator

__all__ = ["Profile", "Profiler"]


@dataclass
class Profile:
    """Everything the predictor needs, measured at setting (m, n)."""

    m: int  # profiled micro-batch number
    n: int  # profiled pipeline number
    batch_size: int
    num_stages: int
    t_gpu: list[float]  # per device, per batch
    t_comm_total: list[float]  # per device, per batch
    phi_times: list[np.ndarray]  # step-function knots per device
    phi_values: list[np.ndarray]
    f_mod: list[int]  # model(+versions+opt) bytes per device
    f_ref: list[int]  # reference-copy bytes (do not scale with N)
    f_dat: list[int]  # peak activation bytes per device
    batch_time: float
    profiling_cost: float  # simulated seconds spent profiling
    #: the device saturation curve, if known.  The paper's Equation 2
    #: assumes arithmetic intensity scales linearly with micro-batch size
    #: ("as a simplification of real-world environments"); when the curve
    #: is available the predictor scales phi by the curve ratio instead,
    #: which ranks settings correctly on saturating hardware.
    curve: UtilizationCurve | None = None

    def phi_integral_over(self, k: int, scale: float) -> float:
        """``integral of max(scale * phi_k(t) - 1, 0) dt`` per batch."""
        times, values = self.phi_times[k], self.phi_values[k]
        total = 0.0
        for i in range(len(times)):
            t_next = times[i + 1] if i + 1 < len(times) else times[-1]
            dt = t_next - times[i]
            if dt > 0:
                total += dt * max(scale * values[i] - 1.0, 0.0)
        return total


class Profiler:
    """Drives a profiling run on a fresh simulated cluster."""

    def __init__(
        self,
        layer_costs: list[LayerCost],
        partition: Partition,
        schedule: Schedule,
        cluster_spec: ClusterSpec,
        batch_size: int,
        activation_byte_scale: float = 1.0,
        param_byte_scale: float = 1.0,
        stash_multiplier: float = 6.0,
        optimizer_state_factor: float = 2.0,
        with_reference_model: bool = True,
        activation_recompute: bool = False,
        placement: Sequence[int] | None = None,
    ) -> None:
        self.layer_costs = layer_costs
        self.partition = partition
        self.schedule = schedule
        self.cluster_spec = cluster_spec
        self.batch_size = batch_size
        self.activation_byte_scale = activation_byte_scale
        self.param_byte_scale = param_byte_scale
        self.stash_multiplier = stash_multiplier
        self.optimizer_state_factor = optimizer_state_factor
        self.with_reference_model = with_reference_model
        self.activation_recompute = activation_recompute
        #: stage -> device permutation (Luo et al. placement); None keeps
        #: the straight chain (stage k on device k) and the exact legacy
        #: code path, so uniform runs stay bit-identical.
        if placement is not None:
            placement = tuple(placement)
            if len(placement) != partition.num_stages:
                raise ValueError(
                    f"placement has {len(placement)} entries for "
                    f"{partition.num_stages} stages"
                )
            if sorted(placement) != list(range(partition.num_stages)):
                raise ValueError(f"placement must be a permutation: {placement}")
        self.placement = placement

    def _device_map(self, num_pipelines: int) -> list[list[int]] | None:
        if self.placement is None:
            return None
        return [list(self.placement) for _ in range(num_pipelines)]

    def _stage_device(self, stage: int) -> int:
        return stage if self.placement is None else self.placement[stage]

    def run_setting(
        self,
        m: int,
        n: int,
        iterations: int = 3,
        record_utilization: bool = False,
        render_timeline: bool = False,
        registry=None,
    ) -> SimIterationResult:
        """Simulate ``iterations`` batches at parallelism degrees (m, n).

        ``registry`` (a repro.obs MetricRegistry) is handed to the
        runner, which mirrors spans and end-of-run footprints into it.
        """
        if self.batch_size % m != 0:
            raise ValueError(f"batch {self.batch_size} not divisible by M={m}")
        sim = Simulator()
        cluster = Cluster(sim, self.cluster_spec)
        stage_costs = StageCosts.from_partition(
            self.layer_costs,
            self.partition,
            mb_size=self.batch_size / m,
            activation_byte_scale=self.activation_byte_scale,
            param_byte_scale=self.param_byte_scale,
            stash_multiplier=self.stash_multiplier,
        )
        runner = PipelineSimRunner(
            cluster,
            self.schedule,
            stage_costs,
            num_micro=m,
            mb_size=self.batch_size / m,
            num_pipelines=n,
            with_reference_model=self.with_reference_model,
            optimizer_state_factor=self.optimizer_state_factor,
            record_utilization=record_utilization,
            device_map=self._device_map(n),
            activation_recompute=self.activation_recompute,
            registry=registry,
        )
        return runner.run(iterations=iterations, render_timeline=render_timeline)

    def profile(self, m: int | None = None, n: int = 1, iterations: int = 4) -> Profile:
        """The §5.2.1 profiling run: large M, small N, a few batches."""
        if m is None:
            # largest power-of-two micro-batch count that keeps >= 2 samples
            m = 1
            while self.batch_size % (m * 2) == 0 and self.batch_size // (m * 2) >= 2:
                m *= 2
        sim = Simulator()
        cluster = Cluster(sim, self.cluster_spec)
        stage_costs = StageCosts.from_partition(
            self.layer_costs,
            self.partition,
            mb_size=self.batch_size / m,
            activation_byte_scale=self.activation_byte_scale,
            param_byte_scale=self.param_byte_scale,
            stash_multiplier=self.stash_multiplier,
        )
        runner = PipelineSimRunner(
            cluster,
            self.schedule,
            stage_costs,
            num_micro=m,
            mb_size=self.batch_size / m,
            num_pipelines=n,
            with_reference_model=self.with_reference_model,
            optimizer_state_factor=self.optimizer_state_factor,
            record_utilization=False,
            device_map=self._device_map(n),
            activation_recompute=self.activation_recompute,
        )
        result = runner.run(iterations=iterations)
        if result.oom is not None:
            raise result.oom
        K = result.num_stages
        # The Profile's lists are *stage-ordered* (the predictor's Eq. 5-7
        # walk neighbouring stages); under a placement permutation stage
        # k's per-device quantities live on device placement[k].
        devices = [self._stage_device(k) for k in range(K)]
        phi_times, phi_values = [], []
        for dev in devices:
            steps = cluster.devices[dev].compute.utilization_steps
            phi_times.append(np.array([t for t, _ in steps]) / iterations)
            phi_values.append(np.array([u for _, u in steps]))
        return Profile(
            m=m,
            n=n,
            batch_size=self.batch_size,
            curve=self.cluster_spec.curve,
            num_stages=K,
            t_gpu=[result.decomposition[dev]["gpu"] for dev in devices],
            t_comm_total=list(result.comm_sent_time),
            phi_times=phi_times,
            phi_values=phi_values,
            f_mod=[result.weight_memory[dev] for dev in devices],
            f_ref=[result.reference_memory[dev] for dev in devices],
            f_dat=[result.data_memory_peak[dev] for dev in devices],
            batch_time=result.batch_time,
            profiling_cost=result.total_time,
        )
