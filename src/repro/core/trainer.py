"""Real-numerics training loops with each system's update semantics.

These drive the statistical-efficiency comparisons (Figure 14).  Timing
is *not* modelled here (that's the simulator's job); what differs between
systems is purely how weights evolve:

* :class:`SyncTrainer` — synchronous SGD-semantics shared by PyTorch-DDP,
  GPipe and Dapple: one optimizer step per batch from the full-batch
  gradient.  (They differ in speed, not numerics.)
* :class:`PipeDreamTrainer` — multi-version asynchronous pipeline:
  per-micro-batch updates applied with a delay of K-1 steps (the version
  skew weight stashing induces).  This is the staleness that costs
  PipeDream statistical efficiency on AWD in Figure 14.
* :class:`PipeDream2BWTrainer` — gradient accumulated over the batch but
  applied one batch late (2BW's bounded staleness).
* :class:`AvgPipeTrainer` — the elastic-averaging framework: N parallel
  models each consume their own batch per iteration, local optimizer
  step, elastic dilution against the (async) reference, reference update
  once all N arrive.  Evaluation reads the reference model.

Every trainer shares one loop skeleton so the comparison is apples to
apples: same loaders, same seeds, same gradient clipping, same
per-epoch evaluation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.elastic import ElasticAveragingFramework
from repro.models.pipeline_model import PipelineModel
from repro.models.registry import WorkloadSpec

__all__ = [
    "TrainResult",
    "SyncTrainer",
    "PipeDreamTrainer",
    "PipeDream2BWTrainer",
    "AvgPipeTrainer",
]

GRAD_CLIP = 5.0


@dataclass
class TrainResult:
    """Outcome of one training run: epochs, target status, metric history."""
    system: str
    workload: str
    reached_target: bool
    epochs_to_target: int  # = epochs run if never reached
    epochs_run: int
    iterations: int
    metric_history: list[float] = field(default_factory=list)

    @property
    def final_metric(self) -> float:
        return self.metric_history[-1] if self.metric_history else float("nan")


def _batches(loader) -> Iterable[dict[str, np.ndarray]]:
    return loader if isinstance(loader, list) else iter(loader)


class _TrainerBase:
    system = "base"

    def __init__(self, spec: WorkloadSpec, seed: int = 0, max_epochs: int = 40) -> None:
        self.spec = spec
        self.seed = seed
        self.max_epochs = max_epochs

    def train(self) -> TrainResult:
        raise NotImplementedError

    def _loop(self, epoch_fn, evaluate_fn) -> TrainResult:
        """Shared epoch loop: run, evaluate, stop at target."""
        history: list[float] = []
        iterations = 0
        reached = False
        epochs = 0
        for epoch in range(self.max_epochs):
            iterations += epoch_fn(epoch)
            epochs = epoch + 1
            metric = evaluate_fn()
            history.append(metric)
            if self.spec.target_reached(metric):
                reached = True
                break
        return TrainResult(
            system=self.system,
            workload=self.spec.name,
            reached_target=reached,
            epochs_to_target=epochs,
            epochs_run=epochs,
            iterations=iterations,
            metric_history=history,
        )


class SyncTrainer(_TrainerBase):
    """Synchronous full-batch-gradient training (PyTorch / GPipe / Dapple)."""

    system = "sync"

    def __init__(self, spec: WorkloadSpec, seed: int = 0, max_epochs: int = 40) -> None:
        super().__init__(spec, seed, max_epochs)
        self.model = spec.build_model().seed(seed)
        self.optimizer = spec.make_optimizer(self.model)
        self.loader = spec.make_train_loader(spec.batch_size, seed)

    def train(self) -> TrainResult:
        def epoch_fn(_: int) -> int:
            count = 0
            for batch in _batches(self.loader):
                self.model.zero_grad()
                self.model.loss(batch).backward()
                self.optimizer.clip_grad_norm(GRAD_CLIP)
                self.optimizer.step()
                count += 1
            return count

        return self._loop(epoch_fn, lambda: self.spec.evaluate(self.model))


class PipeDreamTrainer(_TrainerBase):
    """Delayed per-micro-batch updates (PipeDream's multi-version skew).

    The pipeline applies the update computed from weights that are
    ``delay`` micro-batch steps old; ``delay = K - 1`` models a K-stage
    PipeDream.  Implemented via a gradient FIFO: the gradient computed at
    step t is applied at step t + delay.
    """

    system = "pipedream"

    def __init__(
        self,
        spec: WorkloadSpec,
        seed: int = 0,
        max_epochs: int = 40,
        num_stages: int | None = None,
        num_micro: int = 4,
    ) -> None:
        super().__init__(spec, seed, max_epochs)
        self.model = spec.build_model().seed(seed)
        self.optimizer = spec.make_optimizer(self.model)
        self.loader = spec.make_train_loader(spec.batch_size, seed)
        self.delay = (num_stages or spec.paper_devices) - 1
        self.num_micro = num_micro

    def train(self) -> TrainResult:
        params = list(self.model.parameters())
        fifo: deque[list[np.ndarray]] = deque()

        def apply_delayed() -> None:
            grads = fifo.popleft()
            for p, g in zip(params, grads):
                p.grad = g
            self.optimizer.clip_grad_norm(GRAD_CLIP)
            self.optimizer.step()
            for p in params:
                p.grad = None

        def epoch_fn(_: int) -> int:
            count = 0
            for batch in _batches(self.loader):
                micros = _split_batch(batch, self.num_micro)
                for micro in micros:
                    self.model.zero_grad()
                    self.model.loss(micro).backward()
                    fifo.append([
                        p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
                        for p in params
                    ])
                    if len(fifo) > self.delay:
                        apply_delayed()
                count += 1
            return count

        return self._loop(epoch_fn, lambda: self.spec.evaluate(self.model))


class PipeDream2BWTrainer(_TrainerBase):
    """Batch gradient applied one batch late (2BW bounded staleness)."""

    system = "pipedream-2bw"

    def __init__(self, spec: WorkloadSpec, seed: int = 0, max_epochs: int = 40) -> None:
        super().__init__(spec, seed, max_epochs)
        self.model = spec.build_model().seed(seed)
        self.optimizer = spec.make_optimizer(self.model)
        self.loader = spec.make_train_loader(spec.batch_size, seed)

    def train(self) -> TrainResult:
        params = list(self.model.parameters())
        pending: list[np.ndarray] | None = None

        def epoch_fn(_: int) -> int:
            nonlocal pending
            count = 0
            for batch in _batches(self.loader):
                self.model.zero_grad()
                self.model.loss(batch).backward()
                fresh = [
                    p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
                    for p in params
                ]
                if pending is not None:
                    for p, g in zip(params, pending):
                        p.grad = g
                    self.optimizer.clip_grad_norm(GRAD_CLIP)
                    self.optimizer.step()
                    for p in params:
                        p.grad = None
                pending = fresh
                count += 1
            return count

        return self._loop(epoch_fn, lambda: self.spec.evaluate(self.model))


class AvgPipeTrainer(_TrainerBase):
    """The elastic-averaging framework over N parallel pipelines (§3.2).

    By default each parallel model runs whole-model passes (fast, and
    numerically identical to stage-sliced execution for synchronous
    schedules — proven in ``tests/test_core_pipeline.py``).  Passing
    ``partition``/``num_micro`` switches to *faithful* execution: every
    model runs through :class:`~repro.core.pipeline.PipelinedRunner`,
    stage by stage, micro-batch by micro-batch, in schedule order.
    """

    system = "avgpipe"

    def __init__(
        self,
        spec: WorkloadSpec,
        seed: int = 0,
        max_epochs: int = 40,
        num_pipelines: int = 2,
        alpha: float | None = None,
        queue_delay: int = 1,
        update_normalization: str = "mean",
        partition=None,
        num_micro: int | None = None,
        schedule=None,
        telemetry=None,
    ) -> None:
        super().__init__(spec, seed, max_epochs)
        if num_pipelines < 1:
            raise ValueError("num_pipelines must be >= 1")
        #: optional repro.obs TrainingTelemetry.  Every hook below is
        #: read-only on trainer state, so runs with and without telemetry
        #: produce bitwise-identical weights and metric histories (the
        #: obs negative-path test pins this).
        self.telemetry = telemetry
        self._alpha_auto = alpha is None
        if alpha is None:
            # The paper sets alpha = 1/N "empirically" on its testbed; the
            # same empirical tuning at this miniature's scale (fewer, larger
            # steps) lands at half that — 1/N over-pulls and costs epochs
            # (measured in docs/elastic_averaging.md).
            alpha = 0.5 / num_pipelines
        self.num_pipelines = num_pipelines
        # All pipelines start from identical weights (same init seed) but
        # draw distinct dropout streams, like processes sharing a checkpoint.
        self.models = [spec.build_model().seed(seed) for _ in range(num_pipelines)]
        base_state = self.models[0].state_dict()
        for m in self.models[1:]:
            m.load_state_dict(base_state)
        for i, m in enumerate(self.models[1:], start=1):
            m.seed(seed * 7919 + i)
            m.load_state_dict(base_state)  # seeding must not touch weights
        self.optimizers = [spec.make_optimizer(m) for m in self.models]
        self.framework = ElasticAveragingFramework(
            self.models, alpha=alpha, queue_delay=queue_delay,
            update_normalization=update_normalization,
            registry=telemetry.registry if telemetry is not None else None,
        )
        self.loader = spec.make_train_loader(spec.batch_size, seed)
        self.eval_template = spec.build_model()
        self.runners = None
        self._partition = partition
        self._schedule = schedule
        if partition is not None:
            from repro.core.pipeline import PipelinedRunner
            from repro.schedules.base import AdvanceFPSchedule

            self.num_micro = num_micro or 4
            self._schedule = schedule or AdvanceFPSchedule(1)
            self.runners = [
                PipelinedRunner(m, partition, self._schedule)
                for m in self.models
            ]

    # ------------------------------------------------------------------ #
    # failure recovery hooks (repro.resilience)

    def evict_pipeline(self, index: int) -> None:
        """Drop a dead pipeline and continue with N−1 survivors.

        The elastic framework renormalizes α (to the trainer's tuned
        0.5/N′ when α was auto, i.e. the same empirical rule at the new
        count) and discards the in-flight averaging round; the survivors'
        models, optimizers and the reference are untouched.
        """
        if self.num_pipelines == 1:
            raise RuntimeError("cannot evict the last pipeline")
        if not 0 <= index < self.num_pipelines:
            raise ValueError(f"pipeline index {index} out of range")
        survivors = [i for i in range(self.num_pipelines) if i != index]
        new_alpha = (0.5 / len(survivors)) if self._alpha_auto else None
        self.framework.resize(survivors, alpha=new_alpha)
        del self.models[index]
        del self.optimizers[index]
        if self.runners is not None:
            del self.runners[index]
        self.num_pipelines -= 1

    def rejoin_pipeline(self, seed: int | None = None) -> int:
        """Re-admit a pipeline seeded from the current reference model.

        A fresh model (weights overwritten by the reference) and a fresh
        optimizer (recovered processes lose their moment estimates) join
        the framework; α renormalizes back to 0.5/N′ when auto.  Returns
        the new pipeline's index.
        """
        rejoin_seed = self.seed * 7919 + self.num_pipelines if seed is None else seed
        model = self.spec.build_model().seed(rejoin_seed)
        index = self.framework.add_model(model, seed_from_reference=True)
        if self._alpha_auto:
            self.framework.alpha = 0.5 / self.framework.num_parallel
        self.models.append(model)
        self.optimizers.append(self.spec.make_optimizer(model))
        if self.runners is not None:
            from repro.core.pipeline import PipelinedRunner

            self.runners.append(PipelinedRunner(model, self._partition, self._schedule))
        self.num_pipelines += 1
        return index

    def _compute_gradients(self, i: int, batch: dict) -> float:
        """Whole-model or faithful stage-sliced backward for model ``i``.

        Returns the batch loss (mean over micro-batches in the faithful
        path) — telemetry reads it; callers are free to ignore it.
        """
        model = self.models[i]
        if self.runners is None:
            model.zero_grad()
            loss = model.loss(batch)
            loss.backward()
            return float(loss.item())
        from repro.data.dataset import split_microbatches

        size = len(next(iter(batch.values())))
        m = self.num_micro
        while size % m != 0:
            m -= 1
        return self.runners[i].run_batch(split_microbatches(batch, max(m, 1)))

    def train(self) -> TrainResult:
        telemetry = self.telemetry

        def epoch_fn(_: int) -> int:
            count = 0
            pending: list[dict[str, np.ndarray]] = []
            for batch in _batches(self.loader):
                i = len(pending)
                model, opt = self.models[i], self.optimizers[i]
                before = self.framework.capture(i)
                loss = self._compute_gradients(i, batch)
                opt.clip_grad_norm(GRAD_CLIP)
                opt.step()
                pending.append(before)
                self.framework.commit(i, before)
                if telemetry is not None:
                    telemetry.record_loss(i, loss)
                    telemetry.record_samples(len(next(iter(batch.values()))))
                if len(pending) == self.num_pipelines:
                    self.framework.end_iteration()
                    if telemetry is not None:
                        telemetry.record_round(self.framework)
                    pending.clear()
                count += 1
            if pending:  # ragged tail of the epoch
                self.framework.end_iteration()
                if telemetry is not None:
                    telemetry.record_round(self.framework)
                pending.clear()
            return count

        def evaluate() -> float:
            self.framework.reference_model(self.eval_template)
            metric = self.spec.evaluate(self.eval_template)
            if telemetry is not None:
                telemetry.record_eval(self.spec.metric_name, metric)
            return metric

        return self._loop(epoch_fn, evaluate)


def _split_batch(batch: dict[str, np.ndarray], num_micro: int) -> list[dict[str, np.ndarray]]:
    size = len(next(iter(batch.values())))
    num_micro = max(1, min(num_micro, size))
    edges = np.linspace(0, size, num_micro + 1, dtype=int)
    return [
        {k: v[lo:hi] for k, v in batch.items()}
        for lo, hi in zip(edges[:-1], edges[1:])
        if hi > lo
    ]
