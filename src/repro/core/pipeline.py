"""Stage-sliced pipeline execution with real numerics.

The trainers in :mod:`repro.core.trainer` run whole-model passes and
emulate each system's update semantics at the weight level.  This module
executes the pipeline *faithfully*: the model is cut by a
:class:`~repro.graph.partitioner.Partition`, each stage runs only its own
layers, activations crossing a cut are detached into fresh autograd
leaves (exactly what shipping a tensor to another device does), backward
flows stage by stage as gradient bundles, and ops run in the order the
schedule's op streams dictate — including PipeDream's per-micro-batch
updates with weight stashing.

Guarantees (tested in ``tests/test_core_pipeline.py``):

* synchronous schedules (AFAB, 1F1B, advance-FP) produce the *same* loss
  and the same updated weights as a whole-model pass over the same batch
  (up to float accumulation order);
* PipeDream mode computes each micro-batch's gradient under the weight
  version its forward used (weight stashing), then applies it to the
  latest weights — the staleness semantics of §2/Figure 3b.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.graph.partitioner import Partition
from repro.models.pipeline_model import PipelineLayer, PipelineModel
from repro.optim.optimizer import Optimizer
from repro.schedules.base import Schedule, StageOp
from repro.tensor import Tensor

__all__ = ["StageRuntime", "PipelinedRunner"]


def _is_float_tensor(value) -> bool:
    return isinstance(value, Tensor) and np.issubdtype(value.dtype, np.floating)


class StageRuntime:
    """Executes one contiguous slice of a pipeline model.

    Holds the per-micro-batch stash (input leaves + output tensors), the
    stage's parameters, and optionally a per-stage optimizer.
    """

    def __init__(self, layers: Sequence[PipelineLayer], stage_index: int, num_stages: int) -> None:
        if not layers:
            raise ValueError("a stage needs at least one layer")
        self.layers = list(layers)
        self.stage_index = stage_index
        self.num_stages = num_stages
        self.is_first = stage_index == 0
        self.is_last = stage_index == num_stages - 1
        #: micro-batch id -> (input leaves by key, output tensors by key)
        self._stash: dict[int, tuple[dict[str, Tensor], dict[str, Tensor]]] = {}
        #: micro-batch id -> weight version stashed at forward (PipeDream)
        self._weight_stash: dict[int, dict[str, np.ndarray]] = {}

    # ------------------------------------------------------------------ #

    def parameters(self):
        for layer in self.layers:
            yield from layer.parameters()

    def named_parameters(self):
        for i, layer in enumerate(self.layers):
            for name, p in layer.named_parameters():
                yield f"stage{self.stage_index}.layer{i}.{name}", p

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        for name, p in self.named_parameters():
            p.data = np.array(state[name], dtype=p.dtype, copy=True)

    # ------------------------------------------------------------------ #

    def forward(self, micro: int, bundle_in: Mapping, stash_weights: bool = False) -> dict:
        """Run the stage's layers on one micro-batch.

        Incoming float tensors are detached into fresh leaves (the cut
        boundary).  Returns the outgoing bundle as plain data (ndarrays),
        ready to "ship".  The autograd graph and the leaves stay stashed
        under ``micro`` until :meth:`backward` releases them.
        """
        if micro in self._stash:
            raise RuntimeError(f"stage {self.stage_index}: micro {micro} already in flight")
        if stash_weights:
            self._weight_stash[micro] = self.state_dict()

        leaves: dict[str, Tensor] = {}
        bundle: dict = {}
        for key, value in bundle_in.items():
            if isinstance(value, Tensor) or (
                isinstance(value, np.ndarray) and np.issubdtype(value.dtype, np.floating)
            ):
                data = value.data if isinstance(value, Tensor) else value
                leaf = Tensor(np.ascontiguousarray(data), requires_grad=not self.is_first)
                leaves[key] = leaf
                bundle[key] = leaf
            else:
                bundle[key] = value  # integer tokens/labels pass through
        for layer in self.layers:
            bundle = layer(bundle)

        outputs: dict[str, Tensor] = {k: v for k, v in bundle.items() if _is_float_tensor(v)}
        self._stash[micro] = (leaves, outputs)

        shipped: dict = {}
        for key, value in bundle.items():
            shipped[key] = value.data if isinstance(value, Tensor) else value
        return shipped

    def backward(self, micro: int, grad_bundle: Mapping[str, np.ndarray] | None) -> dict[str, np.ndarray]:
        """Backward for one stashed micro-batch.

        ``grad_bundle`` maps output keys to gradients (None only on the
        last stage, whose ``loss`` output seeds the backward).  Returns
        gradients for this stage's float inputs, keyed like the incoming
        bundle — the payload shipped upstream.  Parameter gradients
        accumulate on the stage's parameters.
        """
        if micro not in self._stash:
            raise RuntimeError(f"stage {self.stage_index}: no stashed forward for micro {micro}")
        leaves, outputs = self._stash.pop(micro)

        restored: dict[str, np.ndarray] | None = None
        if micro in self._weight_stash:
            restored = self.state_dict()
            self.load_state_dict(self._weight_stash.pop(micro))

        if self.is_last:
            if "loss" not in outputs:
                raise RuntimeError("last stage produced no 'loss'")
            outputs["loss"].backward()
        else:
            if grad_bundle is None:
                raise ValueError("inner stages need a gradient bundle")
            for key, grad in grad_bundle.items():
                out = outputs.get(key)
                if out is None or not out.requires_grad:
                    continue
                out.backward(np.asarray(grad, dtype=out.dtype))

        if restored is not None:
            self.load_state_dict(restored)

        return {
            key: leaf.grad if leaf.grad is not None else np.zeros_like(leaf.data)
            for key, leaf in leaves.items()
            if leaf.requires_grad
        }

    @property
    def in_flight(self) -> int:
        return len(self._stash)


class PipelinedRunner:
    """Drives a whole pipeline through a schedule's op streams.

    Ops execute in a deterministic dependency-driven sweep: repeatedly
    scan the stages and run each stage's next op once its input (an
    activation from upstream or a gradient from downstream) is available.
    This serializes what a cluster runs concurrently, which is exactly
    what we want here — the *numerics* of the schedule without its
    timing (the simulator owns timing).
    """

    def __init__(
        self,
        model: PipelineModel,
        partition: Partition,
        schedule: Schedule,
        optimizer_factory: Callable[[list], Optimizer] | None = None,
        grad_clip: float | None = 5.0,
    ) -> None:
        if partition.num_stages < 1:
            raise ValueError("need at least one stage")
        if partition.boundaries[-1] != len(model.layers):
            raise ValueError(
                f"partition covers {partition.boundaries[-1]} layers, model has {len(model.layers)}"
            )
        self.model = model
        self.partition = partition
        self.schedule = schedule
        self.stages = [
            StageRuntime(model.slice_layers(lo, hi), k, partition.num_stages)
            for k, (lo, hi) in enumerate(
                partition.span(k) for k in range(partition.num_stages)
            )
        ]
        self.grad_clip = grad_clip
        if optimizer_factory is None:
            self.stage_optimizers = None
        else:
            self.stage_optimizers = [
                optimizer_factory(list(stage.parameters())) for stage in self.stages
            ]

    # ------------------------------------------------------------------ #

    def run_batch(self, micro_batches: Sequence[Mapping[str, np.ndarray]]) -> float:
        """Execute one batch of micro-batches under the schedule.

        Returns the mean loss over micro-batches.  For synchronous
        schedules, parameter gradients are left accumulated (scaled by
        1/M) and a single optimizer step is applied per stage if
        optimizers were provided.  For asynchronous schedules
        (``sync_at_batch_end == False``), each stage updates right after
        each micro-batch's backward, using weight stashing.
        """
        num_micro = len(micro_batches)
        if num_micro == 0:
            raise ValueError("empty batch")
        K = self.partition.num_stages
        sync = self.schedule.sync_at_batch_end
        streams: list[list[StageOp]] = [
            self.schedule.stage_ops(k, K, num_micro) for k in range(K)
        ]
        cursors = [0] * K
        acts: dict[tuple[int, int], dict] = {}  # (stage, micro) -> incoming bundle
        grads: dict[tuple[int, int], dict] = {}  # (stage, micro) -> grad bundle
        losses: dict[int, float] = {}

        for micro, mb in enumerate(micro_batches):
            acts[(0, micro)] = dict(mb)

        for stage in self.stages:
            for p in stage.parameters():
                p.zero_grad()

        total_ops = sum(len(s) for s in streams)
        executed = 0
        stall_guard = 0
        while executed < total_ops:
            progressed = False
            for k in range(K):
                if cursors[k] >= len(streams[k]):
                    continue
                op = streams[k][cursors[k]]
                if op.kind == "fwd":
                    key = (k, op.micro)
                    if key not in acts:
                        continue
                    bundle_in = acts.pop(key)
                    shipped = self.stages[k].forward(
                        op.micro, bundle_in, stash_weights=not sync
                    )
                    if k < K - 1:
                        acts[(k + 1, op.micro)] = shipped
                    else:
                        losses[op.micro] = float(np.asarray(shipped["loss"]).reshape(-1)[0])
                else:  # bwd
                    if k < K - 1 and (k, op.micro) not in grads:
                        continue
                    grad_in = grads.pop((k, op.micro), None)
                    grad_out = self.stages[k].backward(op.micro, grad_in)
                    if k > 0:
                        grads[(k - 1, op.micro)] = grad_out
                    if not sync:
                        self._async_step(k, scale=1.0 / num_micro)
                cursors[k] += 1
                executed += 1
                progressed = True
            if not progressed:
                stall_guard += 1
                if stall_guard > total_ops + K:
                    raise RuntimeError("pipeline op streams deadlocked")
            else:
                stall_guard = 0

        mean_loss = float(np.mean([losses[i] for i in range(num_micro)]))
        if sync:
            self._sync_step(scale=1.0 / num_micro)
        return mean_loss

    # ------------------------------------------------------------------ #

    def _scale_grads(self, stage: StageRuntime, scale: float) -> None:
        for p in stage.parameters():
            if p.grad is not None:
                p.grad = p.grad * scale

    def _sync_step(self, scale: float) -> None:
        for k, stage in enumerate(self.stages):
            self._scale_grads(stage, scale)
        if self.stage_optimizers is None:
            return
        for k, (stage, opt) in enumerate(zip(self.stages, self.stage_optimizers)):
            if self.grad_clip is not None:
                opt.clip_grad_norm(self.grad_clip)
            opt.step()
            for p in stage.parameters():
                p.zero_grad()

    def _async_step(self, k: int, scale: float) -> None:
        """PipeDream-style immediate update of stage ``k``."""
        stage = self.stages[k]
        self._scale_grads(stage, scale)
        if self.stage_optimizers is not None:
            opt = self.stage_optimizers[k]
            if self.grad_clip is not None:
                opt.clip_grad_norm(self.grad_clip)
            opt.step()
        for p in stage.parameters():
            p.zero_grad()
