"""The AvgPipe system facade (Figure 10).

Wires the five architecture components end to end:

1. **partitioner** — PipeDream DP over the model's layer costs,
2. **profiler**  — one short simulated run at a large-M / small-N setting,
3. **predictor** — Equations 2-8 over the (M, N) candidate grid,
4. **scheduler** — 1F1B with adaptive advance forward propagation
   (Algorithm 1) at the chosen degrees,
5. **runtime**   — a :class:`PipelineSimRunner` for performance numbers
   and an :class:`AvgPipeTrainer` for real training.

``AvgPipe.plan()`` is the user entry point: give it a workload and a
memory budget, get back the tuned configuration with its predicted and
simulated performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.predictor import Prediction
from repro.core.profiler import Profiler
from repro.core.simcfg import SimCalibration, calibration_for
from repro.core.trainer import AvgPipeTrainer
from repro.core.tuner import ProfilingTuner, default_m_candidates
from repro.graph.partitioner import Partition
from repro.models.registry import WorkloadSpec, build_workload
from repro.schedules.adaptive import AdaptiveAdvanceController
from repro.schedules.base import AdvanceFPSchedule
from repro.schedules.executor import SimIterationResult

__all__ = ["AvgPipe", "AvgPipePlan"]


@dataclass
class AvgPipePlan:
    """A tuned AvgPipe configuration plus its predicted performance."""
    workload: str
    partition: Partition
    num_micro: int
    num_pipelines: int
    advance: int
    memory_limit_bytes: float
    prediction: Prediction | None
    tuning_cost: float


class AvgPipe:
    """End-to-end AvgPipe over one of the paper's workloads."""

    def __init__(
        self,
        workload: str,
        calibration: SimCalibration | None = None,
        spec: WorkloadSpec | None = None,
    ) -> None:
        self.spec = spec or build_workload(workload)
        self.calibration = calibration or calibration_for(workload)
        self.layer_costs = self.calibration.layer_costs(self.spec)
        self.partition = self.calibration.partition(self.layer_costs)

    # ------------------------------------------------------------------ #

    def _profiler(self, schedule) -> Profiler:
        return Profiler(
            layer_costs=self.layer_costs,
            partition=self.partition,
            schedule=schedule,
            cluster_spec=self.calibration.cluster_spec(),
            batch_size=self.calibration.batch_size,
            activation_byte_scale=self.calibration.activation_byte_scale,
            param_byte_scale=self.calibration.param_byte_scale,
            stash_multiplier=self.calibration.stash_multiplier,
            optimizer_state_factor=self.calibration.optimizer_state_factor,
            with_reference_model=True,
        )

    def plan(
        self,
        memory_limit_bytes: float | None = None,
        n_candidates: list[int] | None = None,
        tune_advance: bool = True,
    ) -> AvgPipePlan:
        """Tune (M, N) with the profiling method, then adapt ``advance``."""
        limit = memory_limit_bytes or self.calibration.memory_capacity_bytes
        # Phase 1: degrees via the profiling tuner on the schedule AvgPipe
        # actually runs (1F1B order, one weight version) so the profiled
        # memory reflects the real runtime.
        tuner = ProfilingTuner(self._profiler(AdvanceFPSchedule(advance=0)), limit)
        outcome = tuner.tune(
            m_candidates=default_m_candidates(self.calibration.batch_size),
            n_candidates=n_candidates or [1, 2, 3, 4],
        )
        # Phase 2: Algorithm 1 — grow advance while faster and in memory.
        advance = 0
        if tune_advance and outcome.m > 1:
            controller = AdaptiveAdvanceController(
                num_micro=outcome.m, memory_limit_bytes=limit
            )

            def measure_at(adv: int) -> tuple[float, float]:
                prof = self._profiler(AdvanceFPSchedule(advance=adv))
                result = prof.run_setting(outcome.m, outcome.n, iterations=2)
                if result.oom is not None:
                    return float("inf"), float("inf")
                return result.batch_time, float(max(result.peak_memory))

            advance = controller.tune(measure_at)
        prediction = None
        for p in outcome.details:
            if p.m == outcome.m and p.n == outcome.n:
                prediction = p
                break
        return AvgPipePlan(
            workload=self.spec.name,
            partition=self.partition,
            num_micro=outcome.m,
            num_pipelines=outcome.n,
            advance=advance,
            memory_limit_bytes=limit,
            prediction=prediction,
            tuning_cost=outcome.tuning_cost,
        )

    # ------------------------------------------------------------------ #

    def simulate(self, plan: AvgPipePlan, iterations: int = 3, **kwargs) -> SimIterationResult:
        """Run the planned configuration on a fresh simulated cluster."""
        return self.simulate_config(
            plan.num_micro, plan.num_pipelines, plan.advance, iterations=iterations, **kwargs
        )

    def simulate_config(
        self, num_micro: int, num_pipelines: int, advance: int = 0,
        iterations: int = 3, **kwargs,
    ) -> SimIterationResult:
        """Simulate an explicit (M, N, advance) configuration."""
        profiler = self._profiler(AdvanceFPSchedule(advance=advance))
        return profiler.run_setting(num_micro, num_pipelines, iterations=iterations, **kwargs)

    def trainer(self, plan: AvgPipePlan, seed: int = 0, max_epochs: int = 40) -> AvgPipeTrainer:
        """Real-numerics trainer at the planned parallelism degrees."""
        return AvgPipeTrainer(
            self.spec,
            seed=seed,
            max_epochs=max_epochs,
            num_pipelines=plan.num_pipelines,
        )
