"""AvgPipe core: the paper's primary contribution.

* :mod:`elastic` — the elastic-averaging-based framework (§3.2): N
  parallel models, a reference model, α = 1/N pull, optimizer-agnostic.
  Its :meth:`~elastic.ElasticAveragingFramework.resize` (shrink, α
  renormalized) and :meth:`~elastic.ElasticAveragingFramework.add_model`
  (grow, seeded from the reference) are the elastic levers both the
  resilience policies and the :mod:`repro.sched` multi-job scheduler
  drive at runtime.
* :mod:`messages` — asynchronous update queues between parallel pipelines
  and the reference process (§3.2 step 3).
* :mod:`trainer` — real-numerics training loops for AvgPipe and for every
  baseline's weight-update semantics (sync, stale multi-version, 2BW).
* :mod:`profiler` / :mod:`predictor` / :mod:`tuner` — the
  profiling-based parallelism-degree tuning of §5 (Equations 1-8).
* :mod:`simcfg` — per-workload simulator calibrations.
* :mod:`avgpipe` — the system facade wiring partitioner -> profiler ->
  predictor -> scheduler -> runtime (Figure 10).
"""

from repro.core.messages import MessageQueue
from repro.core.elastic import ElasticAveragingFramework
from repro.core.trainer import (
    AvgPipeTrainer,
    PipeDream2BWTrainer,
    PipeDreamTrainer,
    SyncTrainer,
    TrainResult,
)
from repro.core.profiler import Profile, Profiler
from repro.core.predictor import Prediction, Predictor
from repro.core.tuner import (
    GuidelineTuner,
    ProfilingTuner,
    TraversalTuner,
    TuningOutcome,
    plan_for_spec,
)
from repro.core.simcfg import SIM_CALIBRATIONS, SimCalibration
from repro.core.avgpipe import AvgPipe, AvgPipePlan
from repro.core.checkpoint import load_trainer, save_trainer
from repro.core.pipeline import PipelinedRunner, StageRuntime

__all__ = [
    "MessageQueue",
    "ElasticAveragingFramework",
    "SyncTrainer",
    "PipeDreamTrainer",
    "PipeDream2BWTrainer",
    "AvgPipeTrainer",
    "TrainResult",
    "Profile",
    "Profiler",
    "Prediction",
    "Predictor",
    "ProfilingTuner",
    "TraversalTuner",
    "GuidelineTuner",
    "TuningOutcome",
    "plan_for_spec",
    "SimCalibration",
    "SIM_CALIBRATIONS",
    "AvgPipe",
    "AvgPipePlan",
    "save_trainer",
    "load_trainer",
    "PipelinedRunner",
    "StageRuntime",
]
