"""Model zoo: the paper's three workloads as pipeline-sliceable layer lists.

Every model is a :class:`~repro.models.pipeline_model.PipelineModel` — an
ordered list of :class:`PipelineLayer` stages that pass an *activation
bundle* (dict of tensors) forward.  The uniform bundle interface is what
lets one runtime execute any contiguous slice of any model as a pipeline
stage, and what the partitioner's cost model introspects.
"""

from repro.models.pipeline_model import ActivationBundle, PipelineLayer, PipelineModel
from repro.models.gnmt import GNMTConfig, build_gnmt
from repro.models.bert import BertConfig, build_bert
from repro.models.awd_lstm import AWDConfig, build_awd_lstm
from repro.models.inference import greedy_decode
from repro.models.registry import WORKLOADS, WorkloadSpec, build_workload

__all__ = [
    "ActivationBundle",
    "PipelineLayer",
    "PipelineModel",
    "GNMTConfig",
    "build_gnmt",
    "BertConfig",
    "build_bert",
    "AWDConfig",
    "build_awd_lstm",
    "WORKLOADS",
    "WorkloadSpec",
    "build_workload",
    "greedy_decode",
]
