"""AWD-LSTM language model [Merity et al. 2018] (LM workload).

Embedding with dropout, weight-dropped LSTM layers, and a tied-weight
decoder would be the full recipe; we keep embedding dropout, WeightDrop on
the recurrent matrices, and an untied decoder (tying complicates pipeline
cuts and is orthogonal to the paper's claims).  The paper notes AWD is
small — trained on 4 GPUs with a micro-batch number of one — which is the
regime where AvgPipe's tuner picks maximum micro-batch *size*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.pipeline_model import ActivationBundle, PipelineLayer, PipelineModel
from repro.nn import Dropout, Embedding, Linear, LSTMCell, WeightDrop
from repro.tensor import cross_entropy, stack

__all__ = ["AWDConfig", "build_awd_lstm"]


@dataclass(frozen=True)
class AWDConfig:
    """Size/regularization parameters of the AWD-LSTM workload."""
    vocab_size: int = 28
    embed_dim: int = 24
    hidden_dim: int = 32
    num_layers: int = 2
    bptt: int = 12
    dropout: float = 0.1
    weight_drop: float = 0.2


class LMEmbedding(PipelineLayer):
    """Token embedding + dropout; bundle 'input' -> 'hidden'."""
    def __init__(self, cfg: AWDConfig) -> None:
        super().__init__()
        self.cfg = cfg
        self.embed = Embedding(cfg.vocab_size, cfg.embed_dim)
        self.drop = Dropout(cfg.dropout)

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        out = dict(bundle)
        out["hidden"] = self.drop(self.embed(bundle["input"]))  # (B, T, E)
        del out["input"]
        return out

    def flops_per_sample(self) -> float:
        return self.cfg.bptt * self.cfg.embed_dim

    def activation_floats_per_sample(self) -> float:
        return self.cfg.bptt * self.cfg.embed_dim + self.cfg.bptt


class WeightDroppedLSTMLayer(PipelineLayer):
    """LSTM layer with DropConnect on its recurrent weights."""
    def __init__(self, cfg: AWDConfig, layer_index: int) -> None:
        super().__init__()
        self.cfg = cfg
        in_dim = cfg.embed_dim if layer_index == 0 else cfg.hidden_dim
        self.in_dim = in_dim
        cell = LSTMCell(in_dim, cfg.hidden_dim)
        self.wrapped = WeightDrop(cell, ["weight_hh"], p=cfg.weight_drop)

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        x = bundle["hidden"]  # (B, T, D)
        cell: LSTMCell = self.wrapped.inner  # type: ignore[assignment]
        h, c = cell.init_state(x.shape[0])
        outs = []
        for t in range(x.shape[1]):
            h, c = self.wrapped(x[:, t, :], (h, c))
            outs.append(h)
        out = dict(bundle)
        out["hidden"] = stack(outs, axis=1)
        return out

    def flops_per_sample(self) -> float:
        cfg = self.cfg
        return cfg.bptt * 4 * cfg.hidden_dim * (self.in_dim + cfg.hidden_dim)

    def activation_floats_per_sample(self) -> float:
        return self.cfg.bptt * self.cfg.hidden_dim + self.cfg.bptt


class LMHead(PipelineLayer):
    """Vocabulary projection + token cross-entropy loss head."""
    def __init__(self, cfg: AWDConfig) -> None:
        super().__init__()
        self.cfg = cfg
        self.decoder = Linear(cfg.hidden_dim, cfg.vocab_size)

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        logits = self.decoder(bundle["hidden"])  # (B, T, V)
        targets = np.asarray(bundle["target"]).reshape(-1)
        out = dict(bundle)
        out["logits"] = logits
        out["loss"] = cross_entropy(logits.reshape(-1, logits.shape[-1]), targets)
        del out["hidden"]
        return out

    def flops_per_sample(self) -> float:
        return self.cfg.bptt * self.cfg.hidden_dim * self.cfg.vocab_size

    def activation_floats_per_sample(self) -> float:
        return 1.0


def build_awd_lstm(cfg: AWDConfig | None = None) -> PipelineModel:
    """Assemble the AWD-LSTM pipeline: embed, LSTM stack, LM head."""
    cfg = cfg or AWDConfig()
    layers: list[PipelineLayer] = [LMEmbedding(cfg)]
    layers += [WeightDroppedLSTMLayer(cfg, i) for i in range(cfg.num_layers)]
    layers.append(LMHead(cfg))
    return PipelineModel(layers=layers, name="awd", metric_mode="min")
