"""GNMT-style sequence-to-sequence model (translation workload).

A scaled-down Google-NMT: embedding -> stacked encoder LSTMs -> decoder
LSTM with Luong dot attention over encoder states -> projection -> token
cross-entropy.  Expressed as :class:`PipelineLayer` stages so the
partitioner can cut it; the paper partitions GNMT over 6 GPUs.

Bundle keys
-----------
input:   ``src`` (B, S) int, ``tgt_in`` (B, T) int, ``tgt_out`` (B, T) int
flow:    ``src_emb`` -> ``enc_out`` -> (+``tgt_emb``) -> ``dec_out`` ->
         ``logits`` -> ``loss``
``tgt_in``/``tgt_out`` are carried through the encoder stages (cheap:
integer rows), exactly like PipeDream ships labels to the last stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.vocab import PAD
from repro.models.pipeline_model import ActivationBundle, PipelineLayer, PipelineModel
from repro.nn import Dropout, Embedding, Linear, LSTMCell
from repro.tensor import Tensor, cross_entropy, softmax, stack, tanh

__all__ = ["GNMTConfig", "build_gnmt"]


@dataclass(frozen=True)
class GNMTConfig:
    """Size parameters of the GNMT-style translation workload."""
    vocab_size: int = 64
    embed_dim: int = 32
    hidden_dim: int = 48
    # Depth mirrors real GNMT's stacked-residual design and, with two
    # layers per stage, lets the partitioner balance the paper's 6 GPUs.
    encoder_layers: int = 10
    decoder_layers: int = 2
    src_len: int = 12
    tgt_len: int = 12
    dropout: float = 0.1


class SourceEmbedding(PipelineLayer):
    """Source token embedding; bundle 'src' -> 'src_emb'."""
    def __init__(self, cfg: GNMTConfig) -> None:
        super().__init__()
        self.cfg = cfg
        self.embed = Embedding(cfg.vocab_size, cfg.embed_dim, padding_idx=PAD)
        self.drop = Dropout(cfg.dropout)

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        out = dict(bundle)
        out["src_emb"] = self.drop(self.embed(bundle["src"]))  # (B, S, E)
        del out["src"]
        return out

    def flops_per_sample(self) -> float:
        return self.cfg.src_len * self.cfg.embed_dim

    def activation_floats_per_sample(self) -> float:
        cfg = self.cfg
        return cfg.src_len * cfg.embed_dim + 2 * cfg.tgt_len  # emb + carried targets


class EncoderLSTMLayer(PipelineLayer):
    """One encoder LSTM layer with a residual connection (as in real GNMT,
    which adds residuals from the third layer up to keep deep stacks
    trainable); reads the previous layer's sequence output."""

    def __init__(self, cfg: GNMTConfig, layer_index: int) -> None:
        super().__init__()
        self.cfg = cfg
        self.layer_index = layer_index
        in_dim = cfg.embed_dim if layer_index == 0 else cfg.hidden_dim
        self.cell = LSTMCell(in_dim, cfg.hidden_dim)
        self.in_dim = in_dim
        self.in_key = "src_emb" if layer_index == 0 else "enc_out"
        self.residual = layer_index >= 1  # in/out dims match from layer 1

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        x = bundle[self.in_key]  # (B, S, D)
        batch = x.shape[0]
        h, c = self.cell.init_state(batch)
        outs = []
        for t in range(x.shape[1]):
            h, c = self.cell(x[:, t, :], (h, c))
            outs.append(h)
        seq = stack(outs, axis=1)  # (B, S, H)
        out = dict(bundle)
        out["enc_out"] = seq + x if self.residual else seq
        out.pop("src_emb", None)
        return out

    def flops_per_sample(self) -> float:
        cfg = self.cfg
        return cfg.src_len * 4 * cfg.hidden_dim * (self.in_dim + cfg.hidden_dim)

    def activation_floats_per_sample(self) -> float:
        cfg = self.cfg
        return cfg.src_len * cfg.hidden_dim + 2 * cfg.tgt_len


class DecoderWithAttention(PipelineLayer):
    """One teacher-forced LSTM decoder layer with Luong dot attention.

    Layer 0 embeds ``tgt_in``; deeper layers consume the previous decoder
    layer's ``dec_out`` with a residual connection.  Every layer carries
    ``enc_out`` until the last decoder layer releases it.
    """

    def __init__(self, cfg: GNMTConfig, layer_index: int = 0) -> None:
        super().__init__()
        self.cfg = cfg
        self.layer_index = layer_index
        self.is_first = layer_index == 0
        self.is_last = layer_index == cfg.decoder_layers - 1
        if self.is_first:
            self.embed = Embedding(cfg.vocab_size, cfg.embed_dim, padding_idx=PAD)
            in_dim = cfg.embed_dim
        else:
            self.embed = None
            in_dim = cfg.hidden_dim
        self.in_dim = in_dim
        self.cell = LSTMCell(in_dim, cfg.hidden_dim)
        self.attn_combine = Linear(2 * cfg.hidden_dim, cfg.hidden_dim)
        self.drop = Dropout(cfg.dropout)

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        enc_out = bundle["enc_out"]  # (B, S, H)
        if self.is_first:
            x = self.drop(self.embed(bundle["tgt_in"]))  # (B, T, E)
        else:
            x = bundle["dec_out"]  # (B, T, H)
        batch = x.shape[0]
        h, c = self.cell.init_state(batch)
        outs = []
        enc_t = enc_out.transpose(0, 2, 1)  # (B, H, S)
        for t in range(x.shape[1]):
            h, c = self.cell(x[:, t, :], (h, c))
            scores = (h.unsqueeze(1) @ enc_t).squeeze(1)  # (B, S)
            weights = softmax(scores, axis=-1)
            ctx = (weights.unsqueeze(1) @ enc_out).squeeze(1)  # (B, H)
            combined = tanh(self.attn_combine(_cat2(h, ctx)))
            outs.append(combined)
        seq = stack(outs, axis=1)  # (B, T, H)
        out = dict(bundle)
        out["dec_out"] = seq + x if not self.is_first else seq
        if self.is_first:
            del out["tgt_in"]
        if self.is_last:
            del out["enc_out"]
        return out

    def flops_per_sample(self) -> float:
        cfg = self.cfg
        lstm = cfg.tgt_len * 4 * cfg.hidden_dim * (self.in_dim + cfg.hidden_dim)
        attn = cfg.tgt_len * (2 * cfg.src_len * cfg.hidden_dim + 2 * cfg.hidden_dim * cfg.hidden_dim)
        return lstm + attn

    def activation_floats_per_sample(self) -> float:
        cfg = self.cfg
        carried = 0.0 if self.is_last else cfg.src_len * cfg.hidden_dim
        return cfg.tgt_len * cfg.hidden_dim + cfg.tgt_len + carried


class OutputProjection(PipelineLayer):
    """Hidden-to-vocabulary projection; 'dec_out' -> 'logits'."""
    def __init__(self, cfg: GNMTConfig) -> None:
        super().__init__()
        self.cfg = cfg
        self.proj = Linear(cfg.hidden_dim, cfg.vocab_size)

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        out = dict(bundle)
        out["logits"] = self.proj(bundle["dec_out"])  # (B, T, V)
        del out["dec_out"]
        return out

    def flops_per_sample(self) -> float:
        cfg = self.cfg
        return cfg.tgt_len * cfg.hidden_dim * cfg.vocab_size

    def activation_floats_per_sample(self) -> float:
        cfg = self.cfg
        return cfg.tgt_len * cfg.vocab_size + cfg.tgt_len


class TokenLossHead(PipelineLayer):
    """Padding-masked token cross-entropy over (B, T, V) logits."""

    def __init__(self, cfg: GNMTConfig) -> None:
        super().__init__()
        self.cfg = cfg

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        logits = bundle["logits"]
        targets = np.asarray(bundle["tgt_out"]).reshape(-1)
        flat = logits.reshape(-1, logits.shape[-1])
        out = dict(bundle)
        out["loss"] = cross_entropy(flat, targets, ignore_index=PAD)
        return out

    def flops_per_sample(self) -> float:
        return self.cfg.tgt_len * self.cfg.vocab_size

    def activation_floats_per_sample(self) -> float:
        return 1.0


def _cat2(a: Tensor, b: Tensor) -> Tensor:
    from repro.tensor import cat

    return cat([a, b], axis=-1)


def build_gnmt(cfg: GNMTConfig | None = None) -> PipelineModel:
    """Assemble the GNMT pipeline: embed, encoders, decoders, proj, loss."""
    cfg = cfg or GNMTConfig()
    layers: list[PipelineLayer] = [SourceEmbedding(cfg)]
    layers += [EncoderLSTMLayer(cfg, i) for i in range(cfg.encoder_layers)]
    layers += [DecoderWithAttention(cfg, i) for i in range(cfg.decoder_layers)]
    layers += [OutputProjection(cfg), TokenLossHead(cfg)]
    return PipelineModel(layers=layers, name="gnmt", metric_mode="max")
