"""BERT-style encoder classifier (paraphrase workload).

Embedding + positional encoding, a stack of transformer encoder blocks,
a [BOS]-token pooler and a 2-way classification head — the fine-tuning
configuration the paper uses on QQP.  Each transformer block is its own
:class:`PipelineLayer`, the natural cut granularity for the partitioner
(Megatron/PipeDream partition BERT at block boundaries too).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.pipeline_model import ActivationBundle, PipelineLayer, PipelineModel
from repro.nn import Dropout, Embedding, Linear, PositionalEncoding, Tanh, TransformerEncoderLayer
from repro.tensor import Tensor, cross_entropy

__all__ = ["BertConfig", "build_bert"]


@dataclass(frozen=True)
class BertConfig:
    """Size parameters of the BERT-style classifier workload."""
    vocab_size: int = 64
    d_model: int = 32
    num_heads: int = 4
    num_blocks: int = 12  # two blocks per stage on the paper's 6 GPUs
    d_ff: int = 64
    seq_len: int = 19  # 2 * sentence_len + 3 packing from the dataset
    num_classes: int = 6  # pair-topic classes; see repro.data.synthetic_paraphrase
    dropout: float = 0.1


class BertEmbedding(PipelineLayer):
    """Token + positional embedding; bundle 'tokens' -> 'hidden'."""
    def __init__(self, cfg: BertConfig) -> None:
        super().__init__()
        self.cfg = cfg
        self.embed = Embedding(cfg.vocab_size, cfg.d_model)
        self.pos = PositionalEncoding(cfg.d_model, max_len=max(cfg.seq_len, 16))
        self.drop = Dropout(cfg.dropout)

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        out = dict(bundle)
        out["hidden"] = self.drop(self.pos(self.embed(bundle["tokens"])))  # (B, T, D)
        del out["tokens"]
        return out

    def flops_per_sample(self) -> float:
        return self.cfg.seq_len * self.cfg.d_model

    def activation_floats_per_sample(self) -> float:
        return self.cfg.seq_len * self.cfg.d_model + 1  # hidden + carried label


class BertBlock(PipelineLayer):
    """One pre-norm transformer encoder block over 'hidden'."""
    def __init__(self, cfg: BertConfig) -> None:
        super().__init__()
        self.cfg = cfg
        self.block = TransformerEncoderLayer(cfg.d_model, cfg.num_heads, cfg.d_ff, cfg.dropout)

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        out = dict(bundle)
        out["hidden"] = self.block(bundle["hidden"])
        return out

    def flops_per_sample(self) -> float:
        cfg = self.cfg
        attn = 4 * cfg.seq_len * cfg.d_model * cfg.d_model + 2 * cfg.seq_len * cfg.seq_len * cfg.d_model
        mlp = 2 * cfg.seq_len * cfg.d_model * cfg.d_ff
        return attn + mlp

    def activation_floats_per_sample(self) -> float:
        return self.cfg.seq_len * self.cfg.d_model + 1


class BertClassifierHead(PipelineLayer):
    """Pool the first token, project to classes, compute the loss."""

    def __init__(self, cfg: BertConfig) -> None:
        super().__init__()
        self.cfg = cfg
        self.pooler = Linear(cfg.d_model, cfg.d_model)
        self.act = Tanh()
        self.classifier = Linear(cfg.d_model, cfg.num_classes)

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:
        hidden = bundle["hidden"]  # (B, T, D)
        pooled = self.act(self.pooler(hidden[:, 0, :]))
        logits = self.classifier(pooled)  # (B, C)
        labels = np.asarray(bundle["labels"]).reshape(-1)
        out = dict(bundle)
        out["logits"] = logits
        out["loss"] = cross_entropy(logits, labels)
        del out["hidden"]
        return out

    def flops_per_sample(self) -> float:
        cfg = self.cfg
        return cfg.d_model * cfg.d_model + cfg.d_model * cfg.num_classes

    def activation_floats_per_sample(self) -> float:
        return self.cfg.num_classes + 1.0


def build_bert(cfg: BertConfig | None = None) -> PipelineModel:
    """Assemble the BERT pipeline: embedding, blocks, classifier head."""
    cfg = cfg or BertConfig()
    layers: list[PipelineLayer] = [BertEmbedding(cfg)]
    layers += [BertBlock(cfg) for _ in range(cfg.num_blocks)]
    layers.append(BertClassifierHead(cfg))
    return PipelineModel(layers=layers, name="bert", metric_mode="max")
