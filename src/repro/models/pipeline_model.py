"""Pipeline-model abstraction.

A :class:`PipelineModel` is an ordered list of :class:`PipelineLayer`
modules.  Data flows as an *activation bundle* — a dict mapping names to
tensors (or raw integer ndarrays for token inputs).  Each layer consumes
some keys and produces others; a contiguous slice of layers is a valid
pipeline stage whose inter-stage traffic is exactly the bundle contents at
the cut point.  That makes three things uniform across GNMT / BERT /
AWD-LSTM:

* the runtime executes ``stage(bundle) -> bundle`` without model-specific
  code,
* the partitioner reads ``flops_per_sample`` / ``activation_floats_per_sample``
  per layer to balance stages and price inter-stage communication,
* the simulator prices a stage's compute from the same cost hints.

The last layer must be a loss head producing a scalar ``"loss"`` entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor

__all__ = ["ActivationBundle", "PipelineLayer", "PipelineModel"]

ActivationBundle = dict  # dict[str, Tensor | np.ndarray]


class PipelineLayer(Module):
    """A model slice with cost annotations.

    Subclasses implement ``forward(bundle) -> bundle`` and the two cost
    hooks.  ``carried_keys`` names bundle entries this layer merely passes
    through (they count toward inter-stage communication if a cut follows).
    """

    def forward(self, bundle: ActivationBundle) -> ActivationBundle:  # pragma: no cover
        raise NotImplementedError

    def flops_per_sample(self) -> float:
        """Approximate multiply-accumulate count per batch sample."""
        raise NotImplementedError

    def activation_floats_per_sample(self) -> float:
        """Floats per sample in the bundle *after* this layer (the traffic
        a pipeline cut here would ship, and the stash cost of one
        micro-batch sample)."""
        raise NotImplementedError


@dataclass
class PipelineModel:
    """An ordered pipeline of layers plus workload metadata.

    Attributes
    ----------
    layers:
        The :class:`PipelineLayer` sequence; ``layers[-1]`` is the loss head.
    name:
        Workload name ("gnmt" / "bert" / "awd").
    metric_mode:
        "max" if higher metric is better (BLEU, accuracy), "min" for loss.
    """

    layers: list[PipelineLayer]
    name: str = "model"
    metric_mode: str = "max"

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("PipelineModel needs at least one layer")
        if self.metric_mode not in ("max", "min"):
            raise ValueError(f"metric_mode must be 'max' or 'min', got {self.metric_mode}")

    # ------------------------------------------------------------------ #
    # whole-model execution (used by data-parallel baselines and eval)

    def forward(self, batch: Mapping[str, np.ndarray]) -> ActivationBundle:
        bundle: ActivationBundle = dict(batch)
        for layer in self.layers:
            bundle = layer(bundle)
        return bundle

    def loss(self, batch: Mapping[str, np.ndarray]) -> Tensor:
        bundle = self.forward(batch)
        if "loss" not in bundle:
            raise KeyError("final layer did not produce a 'loss' entry")
        return bundle["loss"]

    # ------------------------------------------------------------------ #
    # module-ish plumbing

    def named_parameters(self):
        # The flattened walk is cached: every layer creates all of its
        # parameters in __init__ and nothing rebinds them afterwards, so
        # the (name, Parameter) pairs are fixed for the model's lifetime.
        cache = self.__dict__.get("_named_params")
        if cache is None:
            cache = [
                (f"layer{i}.{name}", p)
                for i, layer in enumerate(self.layers)
                for name, p in layer.named_parameters()
            ]
            self.__dict__["_named_params"] = cache
        return iter(cache)

    def parameters(self):
        for _, p in self.named_parameters():
            yield p

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def parameter_bytes(self) -> int:
        return sum(p.data.nbytes for p in self.parameters())

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def train(self, mode: bool = True) -> "PipelineModel":
        for layer in self.layers:
            layer.train(mode)
        return self

    def eval(self) -> "PipelineModel":
        return self.train(False)

    def seed(self, seed: int) -> "PipelineModel":
        for i, layer in enumerate(self.layers):
            layer.seed(seed * 1000003 + i)
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)[:3]} unexpected={sorted(unexpected)[:3]}")
        for name, value in state.items():
            param = params[name]
            if value.shape != param.shape:
                raise ValueError(f"{name}: shape {value.shape} != {param.shape}")
            param.data = np.array(value, dtype=param.dtype, copy=True)

    # ------------------------------------------------------------------ #
    # cost introspection

    def layer_flops(self) -> list[float]:
        return [layer.flops_per_sample() for layer in self.layers]

    def layer_activation_floats(self) -> list[float]:
        return [layer.activation_floats_per_sample() for layer in self.layers]

    def layer_param_bytes(self) -> list[int]:
        return [layer.parameter_bytes() for layer in self.layers]

    def __len__(self) -> int:
        return len(self.layers)

    def slice_layers(self, start: int, stop: int) -> list[PipelineLayer]:
        """The layers of stage [start, stop) — validated contiguous cut."""
        if not 0 <= start < stop <= len(self.layers):
            raise IndexError(f"invalid stage slice [{start}, {stop}) of {len(self.layers)} layers")
        return self.layers[start:stop]
