"""Workload registry: binds each paper workload to its model, data,
optimizer recipe, quality metric and target.

The three entries mirror §7's setups (scaled to CPU):

* ``gnmt`` — Adam, BLEU-like target (paper: Adam @3e-4, batch 128,
  BLEU 21.8, 6 GPUs).
* ``bert`` — Adam, top-1 accuracy target (paper: Adam @2e-5, batch 32,
  >67% in 3 epochs, 6 GPUs).
* ``awd``  — SGD/ASGD, validation-loss target (paper: lr 30, batch 40,
  loss 6.5, 4 GPUs).

Targets here are calibrated against the synthetic tasks so that a
well-behaved run reaches them in a handful of epochs; what the
experiments compare is *relative* epochs-to-target across systems.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data import (
    LMConfig,
    ParaphraseConfig,
    TranslationConfig,
    batchify_lm,
    bleu_like,
    make_lm_corpus,
    make_paraphrase_dataset,
    make_translation_dataset,
)
from repro.data.dataset import ArrayDataset, DataLoader
from repro.data.vocab import EOS, PAD
from repro.models.awd_lstm import AWDConfig, build_awd_lstm
from repro.models.bert import BertConfig, build_bert
from repro.models.gnmt import GNMTConfig, build_gnmt
from repro.models.pipeline_model import PipelineModel
from repro.optim import SGD, Adam, Optimizer
from repro.tensor import no_grad

__all__ = ["WorkloadSpec", "WORKLOADS", "build_workload"]


@dataclass
class WorkloadSpec:
    """Everything a trainer needs to run one paper workload."""

    name: str
    build_model: Callable[[], PipelineModel]
    make_train_loader: Callable[[int, int], "list[dict[str, np.ndarray]] | DataLoader"]
    evaluate: Callable[[PipelineModel], float]
    make_optimizer: Callable[[PipelineModel], Optimizer]
    target: float
    metric_mode: str  # "max" (BLEU, accuracy) or "min" (loss)
    metric_name: str
    batch_size: int
    paper_devices: int

    def target_reached(self, metric: float) -> bool:
        return metric >= self.target if self.metric_mode == "max" else metric <= self.target


# --------------------------------------------------------------------- #
# GNMT

_GNMT_CFG = GNMTConfig(vocab_size=32)
_GNMT_DATA_CFG = TranslationConfig(num_pairs=1536, vocab_size=_GNMT_CFG.vocab_size - 4, seq_len=_GNMT_CFG.src_len - 2)


@functools.lru_cache(maxsize=1)
def _gnmt_data() -> tuple[ArrayDataset, ArrayDataset]:
    train, valid, _ = make_translation_dataset(_GNMT_DATA_CFG)
    return train, valid


def _gnmt_loader(batch_size: int, seed: int) -> DataLoader:
    train, _ = _gnmt_data()
    return DataLoader(train, batch_size=batch_size, shuffle=True, seed=seed)


def _gnmt_eval(model: PipelineModel) -> float:
    """Teacher-forced BLEU-like score on the validation split."""
    _, valid = _gnmt_data()
    model.eval()
    hyps: list[list[int]] = []
    refs: list[list[int]] = []
    with no_grad():
        for start in range(0, len(valid), 64):
            idx = np.arange(start, min(start + 64, len(valid)))
            batch = {k: v[idx] for k, v in valid.arrays.items()}
            bundle = dict(batch)
            for layer in model.layers[:-1]:  # skip loss head
                bundle = layer(bundle)
            pred = bundle["logits"].argmax(axis=-1)  # (B, T)
            for row_pred, row_ref in zip(pred, batch["tgt_out"]):
                cut = np.where(row_ref == EOS)[0]
                limit = int(cut[0]) if len(cut) else len(row_ref)
                hyps.append([int(t) for t in row_pred[:limit]])
                refs.append([int(t) for t in row_ref[:limit]])
    model.train()
    return bleu_like(hyps, refs)


# --------------------------------------------------------------------- #
# BERT

_BERT_CFG = BertConfig()
_BERT_DATA_CFG = ParaphraseConfig(num_pairs=1536, vocab_size=_BERT_CFG.vocab_size - 5, seq_len=(_BERT_CFG.seq_len - 3) // 2)


@functools.lru_cache(maxsize=1)
def _bert_data() -> tuple[ArrayDataset, ArrayDataset]:
    train, valid, _ = make_paraphrase_dataset(_BERT_DATA_CFG)
    return train, valid


def _bert_loader(batch_size: int, seed: int) -> DataLoader:
    train, _ = _bert_data()
    return DataLoader(train, batch_size=batch_size, shuffle=True, seed=seed)


def _bert_eval(model: PipelineModel) -> float:
    """Top-1 accuracy (percent) on the validation split."""
    _, valid = _bert_data()
    model.eval()
    correct = total = 0
    with no_grad():
        for start in range(0, len(valid), 64):
            idx = np.arange(start, min(start + 64, len(valid)))
            batch = {k: v[idx] for k, v in valid.arrays.items()}
            bundle = model.forward(batch)
            pred = bundle["logits"].argmax(axis=-1)
            correct += int((pred == batch["labels"]).sum())
            total += len(idx)
    model.train()
    return 100.0 * correct / total


# --------------------------------------------------------------------- #
# AWD

_AWD_CFG = AWDConfig()
_AWD_DATA_CFG = LMConfig(corpus_len=16000, vocab_size=_AWD_CFG.vocab_size)


@functools.lru_cache(maxsize=1)
def _awd_corpus() -> tuple[np.ndarray, np.ndarray, float]:
    return make_lm_corpus(_AWD_DATA_CFG)


def _awd_loader(batch_size: int, seed: int) -> list[dict[str, np.ndarray]]:
    train, _, _ = _awd_corpus()
    del seed  # BPTT batches are sequential; no shuffling in the AWD recipe
    return batchify_lm(train, batch_size=batch_size, bptt=_AWD_CFG.bptt)


def _awd_eval(model: PipelineModel) -> float:
    """Validation cross-entropy (nats/token)."""
    _, valid, _ = _awd_corpus()
    batches = batchify_lm(valid, batch_size=8, bptt=_AWD_CFG.bptt)
    model.eval()
    total_loss = 0.0
    with no_grad():
        for batch in batches:
            total_loss += float(model.loss(batch).item())
    model.train()
    return total_loss / max(len(batches), 1)


# --------------------------------------------------------------------- #

WORKLOADS: dict[str, WorkloadSpec] = {
    "gnmt": WorkloadSpec(
        name="gnmt",
        build_model=lambda: build_gnmt(_GNMT_CFG),
        make_train_loader=_gnmt_loader,
        evaluate=_gnmt_eval,
        make_optimizer=lambda m: Adam(m.parameters(), lr=3e-3),
        target=21.8,  # the paper's own GNMT BLEU target
        metric_mode="max",
        metric_name="BLEU-like",
        batch_size=128,
        paper_devices=6,
    ),
    "bert": WorkloadSpec(
        name="bert",
        build_model=lambda: build_bert(_BERT_CFG),
        make_train_loader=_bert_loader,
        evaluate=_bert_eval,
        make_optimizer=lambda m: Adam(m.parameters(), lr=1e-3),
        target=67.0,
        metric_mode="max",
        metric_name="top-1 acc %",
        batch_size=32,
        paper_devices=6,
    ),
    "awd": WorkloadSpec(
        name="awd",
        build_model=lambda: build_awd_lstm(_AWD_CFG),
        make_train_loader=_awd_loader,
        evaluate=_awd_eval,
        make_optimizer=lambda m: SGD(m.parameters(), lr=1.0),
        target=2.0,
        metric_mode="min",
        metric_name="val loss (nats)",
        batch_size=40,
        paper_devices=4,
    ),
}


def build_workload(name: str) -> WorkloadSpec:
    """Look up a workload spec by name ('gnmt', 'bert', 'awd')."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOADS)}") from None
