"""Autoregressive inference for the GNMT workload.

Training and the registry's quality metric use teacher forcing (cheap,
stable for epochs-to-target comparisons).  This module provides the real
deployment path: greedy decoding, where the decoder consumes its *own*
previous outputs — the paper's BLEU targets are measured this way on
WMT14.  The decode re-runs the decoder stack over the grown prefix each
step (O(T^2) in sequence length; fine at the miniature's T<=12 and free
of incremental-state plumbing).
"""

from __future__ import annotations

import numpy as np

from repro.data.vocab import BOS, EOS, PAD
from repro.models.gnmt import DecoderWithAttention, EncoderLSTMLayer, OutputProjection, SourceEmbedding
from repro.models.pipeline_model import PipelineModel
from repro.tensor import no_grad

__all__ = ["greedy_decode", "beam_search_decode"]


def _split_layers(model: PipelineModel):
    encoder, decoders, projection = [], [], None
    for layer in model.layers:
        if isinstance(layer, (SourceEmbedding, EncoderLSTMLayer)):
            encoder.append(layer)
        elif isinstance(layer, DecoderWithAttention):
            decoders.append(layer)
        elif isinstance(layer, OutputProjection):
            projection = layer
    if not encoder or not decoders or projection is None:
        raise TypeError("greedy_decode expects a GNMT-style PipelineModel")
    return encoder, decoders, projection


def greedy_decode(model: PipelineModel, src: np.ndarray, max_len: int | None = None) -> np.ndarray:
    """Greedy translation of ``src`` (B, S) int tokens.

    Returns (B, T) generated tokens (without BOS, padded with PAD after
    each sequence's EOS).
    """
    encoder, decoders, projection = _split_layers(model)
    src = np.asarray(src)
    if src.ndim != 2:
        raise ValueError(f"src must be (B, S), got shape {src.shape}")
    batch, _ = src.shape
    max_len = max_len or src.shape[1]

    model.eval()
    with no_grad():
        bundle: dict = {"src": src, "tgt_in": None, "tgt_out": None}
        for layer in encoder:
            bundle = layer(bundle)
        enc_out = bundle["enc_out"]

        prefix = np.full((batch, 1), BOS, dtype=np.int64)
        finished = np.zeros(batch, dtype=bool)
        outputs = []
        for _ in range(max_len):
            dec_bundle: dict = {"enc_out": enc_out, "tgt_in": prefix}
            for layer in decoders:
                dec_bundle = layer(dec_bundle)
            logits = projection(dec_bundle)["logits"]
            next_token = logits.data[:, -1, :].argmax(axis=-1).astype(np.int64)
            next_token[finished] = PAD
            outputs.append(next_token)
            finished |= next_token == EOS
            prefix = np.concatenate([prefix, next_token[:, None]], axis=1)
            if finished.all():
                break
    model.train()
    return np.stack(outputs, axis=1)


def beam_search_decode(
    model: PipelineModel,
    src: np.ndarray,
    beam_width: int = 4,
    max_len: int | None = None,
    length_penalty: float = 0.6,
) -> np.ndarray:
    """Beam-search translation of ``src`` (B, S) int tokens.

    Standard length-normalized beam search (GNMT's alpha-penalty with the
    usual 0.6 default): hypotheses are scored by
    ``sum(log p) / ((5 + len) / 6) ** alpha``.  Returns (B, T) tokens
    padded with PAD after EOS.  Greedy decoding is ``beam_width = 1`` up
    to tie-breaking.
    """
    if beam_width < 1:
        raise ValueError(f"beam_width must be >= 1, got {beam_width}")
    encoder, decoders, projection = _split_layers(model)
    src = np.asarray(src)
    if src.ndim != 2:
        raise ValueError(f"src must be (B, S), got shape {src.shape}")
    max_len = max_len or src.shape[1]

    model.eval()
    results = []
    with no_grad():
        bundle: dict = {"src": src, "tgt_in": None, "tgt_out": None}
        for layer in encoder:
            bundle = layer(bundle)
        enc_out_all = bundle["enc_out"]

        def lp(length: int) -> float:
            return ((5.0 + length) / 6.0) ** length_penalty

        for b in range(src.shape[0]):
            enc_out = enc_out_all[b : b + 1]
            # Each hypothesis: (tokens tuple without BOS, logprob, finished)
            beams: list[tuple[tuple[int, ...], float, bool]] = [((), 0.0, False)]
            for _ in range(max_len):
                if all(done for _, _, done in beams):
                    break
                candidates: list[tuple[tuple[int, ...], float, bool]] = []
                for tokens, score, done in beams:
                    if done:
                        candidates.append((tokens, score, True))
                        continue
                    prefix = np.array([[BOS, *tokens]], dtype=np.int64)
                    dec_bundle: dict = {"enc_out": enc_out, "tgt_in": prefix}
                    for layer in decoders:
                        dec_bundle = layer(dec_bundle)
                    logits = projection(dec_bundle)["logits"].data[0, -1, :]
                    shifted = logits - logits.max()
                    log_probs = shifted - np.log(np.exp(shifted).sum())
                    top = np.argsort(log_probs)[-beam_width:]
                    for token in top:
                        candidates.append(
                            (tokens + (int(token),), score + float(log_probs[token]),
                             int(token) == EOS)
                        )
                candidates.sort(key=lambda c: c[1] / lp(max(len(c[0]), 1)), reverse=True)
                beams = candidates[:beam_width]
            best = max(beams, key=lambda c: c[1] / lp(max(len(c[0]), 1)))
            results.append(list(best[0]))

    model.train()
    out = np.full((src.shape[0], max_len), PAD, dtype=np.int64)
    for i, tokens in enumerate(results):
        trimmed = tokens[:max_len]
        out[i, : len(trimmed)] = trimmed
        # Normalize: everything after the first EOS is padding.
        hits = np.where(out[i] == EOS)[0]
        if len(hits):
            out[i, hits[0] + 1 :] = PAD
    return out
