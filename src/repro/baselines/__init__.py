"""Baseline systems (§7.1's five comparison points).

Each baseline couples a *timing* model (a schedule + runner on the
simulated cluster) with an *update-semantics* model (a real-numerics
trainer), matching how the paper reimplements all baselines on one
runtime engine:

=================  ======================  ==============================
system             timing                  update semantics
=================  ======================  ==============================
PyTorch (DDP)      DataParallelSimRunner   SyncTrainer
GPipe              AFAB schedule           SyncTrainer
PipeDream          1F1B async, K-k vers.   PipeDreamTrainer (stale)
PipeDream-2BW      1F1B, 2 versions        PipeDream2BWTrainer (1 stale)
Dapple             1F1B, sync              SyncTrainer
AvgPipe            advance-FP, N pipes     AvgPipeTrainer (elastic avg)
=================  ======================  ==============================
"""

from repro.baselines.systems import (
    BASELINE_SYSTEMS,
    BaselineSystem,
    baseline_by_name,
    simulate_baseline,
    choose_baseline_micro,
)

__all__ = [
    "BaselineSystem",
    "BASELINE_SYSTEMS",
    "baseline_by_name",
    "simulate_baseline",
    "choose_baseline_micro",
]
