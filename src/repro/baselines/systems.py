"""Baseline system definitions and simulation helpers.

A :class:`BaselineSystem` bundles the schedule the system runs, its
weight-version memory behaviour (already encoded in the schedule), and
which real-numerics trainer carries its update semantics.  The helpers
here run one baseline on a workload's calibrated cluster, picking each
baseline's micro-batch count the way its authors would (the fastest
feasible power-of-two under the memory budget), so comparisons are not
rigged by a bad hand-picked M.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.profiler import Profiler
from repro.core.simcfg import SimCalibration
from repro.core.trainer import (
    AvgPipeTrainer,
    PipeDream2BWTrainer,
    PipeDreamTrainer,
    SyncTrainer,
    _TrainerBase,
)
from repro.core.tuner import default_m_candidates
from repro.models.registry import WorkloadSpec
from repro.schedules.base import (
    AFABSchedule,
    OneFOneBSchedule,
    PipeDreamSchedule,
    Schedule,
)
from repro.schedules.data_parallel import DataParallelSimRunner
from repro.schedules.executor import SimIterationResult
from repro.sim.cluster import Cluster
from repro.sim.events import Simulator

__all__ = [
    "BaselineSystem",
    "BASELINE_SYSTEMS",
    "baseline_by_name",
    "simulate_baseline",
    "choose_baseline_micro",
]


@dataclass(frozen=True)
class BaselineSystem:
    """One comparison system: its schedule (timing) and trainer (semantics)."""
    name: str
    display: str
    schedule: Callable[[], Schedule] | None  # None => data parallel
    trainer: Callable[[WorkloadSpec, int, int], _TrainerBase]
    is_pipeline: bool = True
    #: "num_devices" pins M to K (Dapple's planner default, per the paper's
    #: "with the micro-batch number of six"); None sweeps for the best M.
    fixed_micro: str | None = None


def _sync(spec: WorkloadSpec, seed: int, max_epochs: int) -> SyncTrainer:
    return SyncTrainer(spec, seed=seed, max_epochs=max_epochs)


def _pipedream(spec: WorkloadSpec, seed: int, max_epochs: int) -> PipeDreamTrainer:
    return PipeDreamTrainer(spec, seed=seed, max_epochs=max_epochs)


def _2bw(spec: WorkloadSpec, seed: int, max_epochs: int) -> PipeDream2BWTrainer:
    return PipeDream2BWTrainer(spec, seed=seed, max_epochs=max_epochs)


BASELINE_SYSTEMS: dict[str, BaselineSystem] = {
    "pytorch": BaselineSystem(
        name="pytorch", display="PyTorch (DP)", schedule=None, trainer=_sync, is_pipeline=False
    ),
    "gpipe": BaselineSystem(
        name="gpipe", display="GPipe", schedule=AFABSchedule, trainer=_sync
    ),
    "pipedream": BaselineSystem(
        name="pipedream", display="PipeDream", schedule=PipeDreamSchedule, trainer=_pipedream
    ),
    "pipedream-2bw": BaselineSystem(
        name="pipedream-2bw",
        display="PipeDream-2BW",
        schedule=lambda: OneFOneBSchedule(versions=2),
        trainer=_2bw,
    ),
    "dapple": BaselineSystem(
        name="dapple",
        display="Dapple",
        schedule=lambda: OneFOneBSchedule(versions=1),
        trainer=_sync,
        fixed_micro="num_devices",
    ),
}


def baseline_by_name(name: str) -> BaselineSystem:
    """Look up a baseline definition by its short name."""
    try:
        return BASELINE_SYSTEMS[name]
    except KeyError:
        raise KeyError(f"unknown baseline {name!r}; available: {sorted(BASELINE_SYSTEMS)}") from None


def _make_profiler(calibration: SimCalibration, schedule: Schedule) -> Profiler:
    return Profiler(
        layer_costs=calibration.layer_costs(),
        partition=calibration.partition(),
        schedule=schedule,
        cluster_spec=calibration.cluster_spec(),
        batch_size=calibration.batch_size,
        activation_byte_scale=calibration.activation_byte_scale,
        param_byte_scale=calibration.param_byte_scale,
        stash_multiplier=calibration.stash_multiplier,
        optimizer_state_factor=calibration.optimizer_state_factor,
        with_reference_model=False,
    )


def choose_baseline_micro(
    system: BaselineSystem, calibration: SimCalibration, iterations: int = 2
) -> int:
    """The fastest feasible micro-batch count for a pipeline baseline."""
    if system.schedule is None:
        raise ValueError("data parallelism has no micro-batch count")
    if system.fixed_micro == "num_devices":
        m = calibration.num_devices
        while calibration.batch_size % m != 0:  # Dapple pins M ~= K
            m -= 1
        return max(m, 1)
    profiler = _make_profiler(calibration, system.schedule())
    best_m, best_t = None, float("inf")
    for m in default_m_candidates(calibration.batch_size):
        result = profiler.run_setting(m, 1, iterations=iterations)
        if result.oom is not None:
            continue
        if max(result.peak_memory) > calibration.memory_capacity_bytes:
            continue
        if result.batch_time < best_t:
            best_m, best_t = m, result.batch_time
    if best_m is None:
        raise RuntimeError(f"{system.name}: no feasible micro-batch count (OOM everywhere)")
    return best_m


def simulate_baseline(
    system: BaselineSystem,
    calibration: SimCalibration,
    num_micro: int | None = None,
    iterations: int = 3,
    record_utilization: bool = False,
    registry=None,
) -> SimIterationResult:
    """Simulate a baseline's per-batch performance on the workload.

    ``registry`` (repro.obs) mirrors pipeline-run telemetry — spans,
    Eq.-1 component seconds, memory high-water marks — for every
    pipelined baseline; the data-parallel runner has no span stream and
    ignores it.
    """
    if system.schedule is None:
        sim = Simulator()
        cluster = Cluster(sim, calibration.cluster_spec())
        runner = DataParallelSimRunner(
            cluster,
            calibration.layer_costs(),
            batch_size=calibration.batch_size,
            activation_byte_scale=calibration.activation_byte_scale * calibration.stash_multiplier,
            param_byte_scale=calibration.param_byte_scale,
            optimizer_state_factor=calibration.optimizer_state_factor,
            allreduce_inefficiency=calibration.allreduce_inefficiency,
        )
        return runner.run(iterations=iterations)
    m = num_micro if num_micro is not None else choose_baseline_micro(system, calibration)
    profiler = _make_profiler(calibration, system.schedule())
    return profiler.run_setting(
        m, 1, iterations=iterations, record_utilization=record_utilization,
        registry=registry,
    )
