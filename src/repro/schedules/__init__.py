"""Pipeline schedules.

A schedule maps (stage index, num stages K, num micro-batches M) to an
ordered op stream of forward/backward ops; the simulator executor
(:mod:`repro.schedules.executor`) and the real-numerics runtimes both
consume the same streams, so timing experiments and statistical-efficiency
experiments always agree on *what* runs — only the substrate differs.

Implemented schedules (paper §4):

* :class:`AFABSchedule` — all-forward-all-backward (GPipe): full
  comm/compute overlap, full activation stash.
* :class:`OneFOneBSchedule` — 1F1B / early-backward (PipeDream-2BW,
  Dapple): stash bound K-k+1, but interleaving exposes communication.
* :class:`AdvanceFPSchedule` — 1F1B plus ``advance`` extra forwards
  scheduled early (the paper's contribution; Algorithm 1's degenerate
  cases: advance=0 is 1F1B, advance=M is AFAB).
* :class:`PipeDreamSchedule` — 1F1B with per-micro-batch asynchronous
  updates and K-k weight versions (multi-version pipeline).
* :class:`AdaptiveAdvanceController` — Algorithm 1's runtime policy for
  growing ``advance`` while it pays off and memory allows.
"""

from repro.schedules.base import (
    AFABSchedule,
    AdvanceFPSchedule,
    OneFOneBSchedule,
    PipeDreamSchedule,
    Schedule,
    StageOp,
    schedule_by_name,
)
from repro.schedules.adaptive import AdaptiveAdvanceController
from repro.schedules.executor import PipelineSimRunner, SimIterationResult, StageCosts
from repro.schedules.data_parallel import DataParallelSimRunner
from repro.schedules.chimera import chimera_device_map, simulate_chimera
from repro.schedules.interleaved import interleaved_device_map, simulate_interleaved

__all__ = [
    "StageOp",
    "Schedule",
    "AFABSchedule",
    "OneFOneBSchedule",
    "AdvanceFPSchedule",
    "PipeDreamSchedule",
    "schedule_by_name",
    "AdaptiveAdvanceController",
    "PipelineSimRunner",
    "SimIterationResult",
    "StageCosts",
    "DataParallelSimRunner",
    "simulate_chimera",
    "chimera_device_map",
    "simulate_interleaved",
    "interleaved_device_map",
]
