"""Schedule definitions: per-stage op streams and weight-version policies.

All schedules here share the op-stream representation: stage k executes
its list of :class:`StageOp` in order, blocking on data dependencies
(activations from stage k-1 for forwards, gradients from stage k+1 for
backwards).  The list encodes *when the stage is willing to run an op*,
which is the whole difference between AFAB, 1F1B and advance-FP.

Invariants (property-tested):
* every stream contains F(i) and B(i) exactly once for each micro-batch;
* F(i) precedes B(i);
* forwards appear in micro-batch order, backwards in micro-batch order;
* the peak number of in-flight micro-batches (forwarded, not yet
  backwarded) equals the schedule's advertised ``stash_bound``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "StageOp",
    "Schedule",
    "AFABSchedule",
    "OneFOneBSchedule",
    "AdvanceFPSchedule",
    "PipeDreamSchedule",
    "schedule_by_name",
]


@dataclass(frozen=True)
class StageOp:
    """One schedule slot: run 'fwd' or 'bwd' of a micro-batch."""
    kind: str  # "fwd" | "bwd"
    micro: int

    def __post_init__(self) -> None:
        if self.kind not in ("fwd", "bwd"):
            raise ValueError(f"bad op kind {self.kind!r}")
        if self.micro < 0:
            raise ValueError(f"negative micro-batch index {self.micro}")


# StageOp is frozen, so instances are freely shared: every stream for a
# given micro-batch count draws from these interned pools instead of
# re-running the dataclass constructor per slot.
_FWD_POOL: list[StageOp] = []
_BWD_POOL: list[StageOp] = []


def _ensure_pools(n: int) -> None:
    while len(_FWD_POOL) < n:
        i = len(_FWD_POOL)
        _FWD_POOL.append(StageOp("fwd", i))
        _BWD_POOL.append(StageOp("bwd", i))


def _interleaved_stream(num_micro: int, warmup: int) -> list[StageOp]:
    """F x warmup, then (F, B) pairs, then drain the remaining Bs."""
    warmup = max(0, min(warmup, num_micro))
    _ensure_pools(num_micro)
    ops = _FWD_POOL[:warmup]
    steady = num_micro - warmup
    ops.extend(
        op
        for pair in zip(_FWD_POOL[warmup:num_micro], _BWD_POOL[:steady])
        for op in pair
    )
    ops.extend(_BWD_POOL[steady:num_micro])
    return ops


def _interleaved_stash_bound(num_micro: int, warmup: int) -> int:
    """Closed-form peak in-flight count of :func:`_interleaved_stream`.

    The depth rises through the warmup forwards, gains one more on each
    steady-state forward before the paired backward retires one — so the
    peak is ``warmup + 1``, capped at ``num_micro`` when the warmup
    already covers the whole batch (the stream degenerates to AFAB).
    """
    warmup = max(0, min(warmup, num_micro))
    return num_micro if warmup >= num_micro else warmup + 1


class Schedule:
    """Base class: subclasses define the op stream + version policy."""

    name = "base"
    #: weights are updated once per batch (True) or per micro-batch (False)
    sync_at_batch_end = True

    def stage_ops(self, stage: int, num_stages: int, num_micro: int) -> list[StageOp]:
        raise NotImplementedError

    def weight_versions(self, stage: int, num_stages: int) -> int:
        """How many weight copies the stage keeps resident."""
        return 1

    def stash_bound(self, stage: int, num_stages: int, num_micro: int) -> int:
        """Max simultaneously-stashed forward activations on ``stage``."""
        ops = self.stage_ops(stage, num_stages, num_micro)
        depth = peak = 0
        for op in ops:
            depth += 1 if op.kind == "fwd" else -1
            peak = max(peak, depth)
        return peak

    def _validate(self, stage: int, num_stages: int, num_micro: int) -> None:
        if not 0 <= stage < num_stages:
            raise ValueError(f"stage {stage} outside 0..{num_stages - 1}")
        if num_micro <= 0:
            raise ValueError(f"num_micro must be positive, got {num_micro}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AFABSchedule(Schedule):
    """All-forward-all-backward (GPipe §4.1, Figure 7a)."""

    name = "afab"

    def stage_ops(self, stage: int, num_stages: int, num_micro: int) -> list[StageOp]:
        self._validate(stage, num_stages, num_micro)
        _ensure_pools(num_micro)
        return _FWD_POOL[:num_micro] + _BWD_POOL[:num_micro]

    def stash_bound(self, stage: int, num_stages: int, num_micro: int) -> int:
        # All forwards run before any backward: the whole batch is stashed.
        self._validate(stage, num_stages, num_micro)
        return num_micro


class OneFOneBSchedule(Schedule):
    """1F1B / early-backward (PipeDream-2BW, Dapple; Figure 7b).

    Stage k warms up with K-1-k forwards then strictly alternates; peak
    stash is K-k micro-batches (the paper's K-k+1 in 1-indexed stages).

    ``versions`` distinguishes the two users of this schedule: Dapple is
    fully synchronous (1 resident weight copy) while PipeDream-2BW
    double-buffers (2 copies) to overlap the update with the next batch.
    """

    name = "1f1b"

    def __init__(self, versions: int = 2) -> None:
        if versions not in (1, 2):
            raise ValueError(f"1F1B keeps 1 (Dapple) or 2 (2BW) versions, got {versions}")
        self.versions = versions

    def stage_ops(self, stage: int, num_stages: int, num_micro: int) -> list[StageOp]:
        self._validate(stage, num_stages, num_micro)
        return _interleaved_stream(num_micro, warmup=num_stages - 1 - stage)

    def stash_bound(self, stage: int, num_stages: int, num_micro: int) -> int:
        self._validate(stage, num_stages, num_micro)
        return _interleaved_stash_bound(num_micro, warmup=num_stages - 1 - stage)

    def weight_versions(self, stage: int, num_stages: int) -> int:
        return self.versions


class AdvanceFPSchedule(Schedule):
    """1F1B with ``advance`` extra forwards issued early (§4.2, Figure 7c).

    ``advance = 0`` degenerates to 1F1B; ``advance >= M`` to AFAB —
    exactly the trade-off §4.2 describes.
    """

    name = "advance_fp"

    def __init__(self, advance: int = 1) -> None:
        if advance < 0:
            raise ValueError(f"advance must be non-negative, got {advance}")
        self.advance = advance

    def stage_ops(self, stage: int, num_stages: int, num_micro: int) -> list[StageOp]:
        self._validate(stage, num_stages, num_micro)
        warmup = (num_stages - 1 - stage) + self.advance
        return _interleaved_stream(num_micro, warmup=warmup)

    def stash_bound(self, stage: int, num_stages: int, num_micro: int) -> int:
        self._validate(stage, num_stages, num_micro)
        warmup = (num_stages - 1 - stage) + self.advance
        return _interleaved_stash_bound(num_micro, warmup=warmup)

    def weight_versions(self, stage: int, num_stages: int) -> int:
        return 1  # AvgPipe pipelines are synchronous per batch

    def __repr__(self) -> str:
        return f"AdvanceFPSchedule(advance={self.advance})"


class PipeDreamSchedule(Schedule):
    """PipeDream's multi-version async pipeline (§2, Figure 3b).

    The op stream is 1F1B-shaped, but weights update per micro-batch
    (``sync_at_batch_end = False``) and stage k keeps K-k weight versions
    resident — the memory behaviour that OOMs BERT on six devices in
    Figure 11.
    """

    name = "pipedream"
    sync_at_batch_end = False

    def stage_ops(self, stage: int, num_stages: int, num_micro: int) -> list[StageOp]:
        self._validate(stage, num_stages, num_micro)
        return _interleaved_stream(num_micro, warmup=num_stages - 1 - stage)

    def stash_bound(self, stage: int, num_stages: int, num_micro: int) -> int:
        self._validate(stage, num_stages, num_micro)
        return _interleaved_stash_bound(num_micro, warmup=num_stages - 1 - stage)

    def weight_versions(self, stage: int, num_stages: int) -> int:
        return num_stages - stage


def schedule_by_name(name: str, advance: int = 1) -> Schedule:
    """Look up a schedule by its short name or alias."""
    table: dict[str, Schedule] = {
        "afab": AFABSchedule(),
        "gpipe": AFABSchedule(),
        "1f1b": OneFOneBSchedule(),
        "dapple": OneFOneBSchedule(versions=1),
        "2bw": OneFOneBSchedule(versions=2),
        "advance_fp": AdvanceFPSchedule(advance=advance),
        "pipedream": PipeDreamSchedule(),
    }
    try:
        return table[name]
    except KeyError:
        raise KeyError(f"unknown schedule {name!r}; available: {sorted(table)}") from None
