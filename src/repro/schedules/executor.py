"""Simulator-side pipeline executor.

Runs one or more training iterations of N parallel pipelines over a
simulated cluster under a given schedule, producing the measurements the
paper's figures report: batch time, per-device T_gpu/T_com/T_bub
(Equation 1), peak memory by category, utilization traces and ASCII
timelines.

One generator process per (pipeline, stage) walks the schedule's op
stream; data dependencies are events completed by link transfers, so
starvation, overlap and contention emerge from the event engine rather
than being hand-coded per schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.graph.cost_model import LayerCost
from repro.graph.partitioner import Partition
from repro.schedules.base import Schedule, StageOp
from repro.sim.cluster import Cluster
from repro.sim.events import Event, Simulator
from repro.sim.memory import OutOfMemoryError
from repro.sim.trace import SpanKind, TraceRecorder

__all__ = ["StageCosts", "PipelineSimRunner", "SimIterationResult"]

#: backward work relative to forward (the usual 2x rule of thumb)
BWD_FLOP_FACTOR = 2.0
#: optimizer state bytes per parameter byte (Adam: m and v)
OPT_STATE_FACTOR = 2.0


@dataclass(frozen=True)
class StageCosts:
    """Per-stage costs for one micro-batch of ``mb_size`` samples."""

    fwd_flops: tuple[float, ...]
    act_out_bytes: tuple[float, ...]  # transfer size stage k -> k+1
    stash_bytes: tuple[float, ...]  # activation memory retained F -> B
    param_bytes: tuple[int, ...]

    @property
    def num_stages(self) -> int:
        return len(self.fwd_flops)

    @staticmethod
    def from_partition(
        costs: Sequence[LayerCost],
        partition: Partition,
        mb_size: float,
        activation_byte_scale: float = 1.0,
        param_byte_scale: float = 1.0,
        stash_multiplier: float = 6.0,
    ) -> "StageCosts":
        """Aggregate per-layer costs into per-stage costs at ``mb_size``.

        The two scale factors calibrate the miniature CPU models back to
        the paper's testbed regime: model *width* was shrunk ~20x, which
        shrinks flops quadratically but bytes only linearly, so byte
        quantities must be re-inflated for the simulated comm/compute and
        memory/capacity ratios to match the 1 Gbps + 32 GB V100 setup.
        Values per workload live in :mod:`repro.core.simcfg`; the
        calibration rationale is documented in DESIGN.md.

        ``stash_multiplier`` prices the *internal* activations a backward
        pass needs (LSTM gates, attention maps, MLP intermediates) as a
        multiple of the layer's output bytes — the stash a stage holds
        between a micro-batch's forward and backward is several times the
        tensor it ships downstream.
        """
        if mb_size <= 0:
            raise ValueError(f"micro-batch size must be positive, got {mb_size}")
        if activation_byte_scale <= 0 or param_byte_scale <= 0:
            raise ValueError("byte scales must be positive")
        if stash_multiplier < 1.0:
            raise ValueError("stash_multiplier must be >= 1")
        fwd, act_out, stash, params = [], [], [], []
        for k in range(partition.num_stages):
            lo, hi = partition.span(k)
            fwd.append(sum(c.flops_per_sample for c in costs[lo:hi]) * mb_size)
            act_out.append(
                costs[hi - 1].activation_bytes_per_sample * mb_size * activation_byte_scale
            )
            stash.append(
                sum(c.activation_bytes_per_sample for c in costs[lo:hi])
                * mb_size
                * activation_byte_scale
                * stash_multiplier
            )
            params.append(int(sum(c.param_bytes for c in costs[lo:hi]) * param_byte_scale))
        return StageCosts(tuple(fwd), tuple(act_out), tuple(stash), tuple(params))


@dataclass
class SimIterationResult:
    """Measurements from a simulated run of ``iterations`` batches."""

    batch_time: float  # mean seconds per iteration
    total_time: float
    iterations: int
    num_stages: int
    num_micro: int
    num_pipelines: int
    decomposition: list[dict[str, float]]  # per device, per batch
    comm_sent_time: list[float]  # T^k: per-stage total transfer seconds/batch
    peak_memory: list[int]  # bytes per device
    weight_memory: list[int]  # bytes per device (model + versions + opt state)
    reference_memory: list[int]  # bytes of the co-partitioned reference copy
    data_memory_peak: list[int]  # peak activation bytes per device
    avg_utilization: float
    utilization_curves: np.ndarray | None = None
    timeline: str = ""
    oom: OutOfMemoryError | None = None
    #: the recorder behind the decomposition — lets repro.obs export the
    #: run as a Chrome trace without re-running the simulation.
    trace: TraceRecorder | None = None

    @property
    def time_per_batch(self) -> float:
        """Seconds per *batch* of data: an iteration advances
        ``num_pipelines`` batches concurrently (Equation 2's amortization)."""
        return self.batch_time / self.num_pipelines

    @property
    def last_device_idle(self) -> float:
        d = self.decomposition[-1]
        return d["com"] + d["bub"]


class _TransferTag:
    """Bookkeeping for COMM-vs-BUBBLE wait classification."""

    __slots__ = ("started_at", "event")

    def __init__(self, event: Event) -> None:
        self.started_at: float | None = None
        self.event = event


class PipelineSimRunner:
    """Simulates N parallel pipelines of K stages on a cluster.

    Stage k of every pipeline is placed on device k (the paper's straight
    chain).  The reference-model process of AvgPipe lives on the same
    device and communicates through intra-process queues, so it adds
    memory but no network traffic; its (tiny) update cost is modelled as
    a low-demand kernel at batch boundaries.
    """

    def __init__(
        self,
        cluster: Cluster,
        schedule: Schedule,
        stage_costs: StageCosts,
        num_micro: int,
        mb_size: float,
        num_pipelines: int = 1,
        with_reference_model: bool = False,
        optimizer_state_factor: float = OPT_STATE_FACTOR,
        record_utilization: bool = False,
        device_map: list[list[int]] | None = None,
        activation_recompute: bool = False,
        registry=None,
    ) -> None:
        if device_map is None and stage_costs.num_stages != cluster.num_devices:
            raise ValueError(
                f"{stage_costs.num_stages} stages vs {cluster.num_devices} devices "
                "(pass device_map for virtual stages)"
            )
        if num_pipelines < 1:
            raise ValueError("need at least one pipeline")
        if device_map is not None:
            if len(device_map) != num_pipelines:
                raise ValueError("device_map needs one row per pipeline")
            for row in device_map:
                if len(row) != stage_costs.num_stages:
                    raise ValueError(
                        f"device_map rows must have one device per stage, got {row}"
                    )
                if any(not 0 <= d < cluster.num_devices for d in row):
                    raise ValueError(f"device index out of range in {row}")
                # Every device must host at least one stage so weights and
                # traffic stay balanced across the cluster.
                if set(row) != set(range(cluster.num_devices)):
                    raise ValueError(
                        f"each device_map row must cover every device, got {row}"
                    )
        self.cluster = cluster
        self.schedule = schedule
        self.costs = stage_costs
        self.num_micro = num_micro
        self.mb_size = mb_size
        self.num_pipelines = num_pipelines
        self.with_reference_model = with_reference_model
        self.optimizer_state_factor = optimizer_state_factor
        self.record_utilization = record_utilization
        #: device_map[p][k] = device hosting stage k of pipeline p.  The
        #: default straight chain puts stage k on device k for every
        #: pipeline; Chimera-style bidirectional pipelines pass a reversed
        #: row for the second pipeline so each device hosts one early and
        #: one late stage and the warmup bubbles interleave.
        self.device_map = device_map or [
            list(range(stage_costs.num_stages)) for _ in range(num_pipelines)
        ]
        #: Activation recomputation (GPipe's re-materialization; the
        #: paper's baselines disable it, §7.1): between a micro-batch's
        #: forward and backward only the stage-input activation is kept
        #: (act_out of the previous stage) and the internal stash is
        #: rebuilt by an extra forward pass folded into the backward —
        #: trading ~1x forward flops for the stash memory.
        self.activation_recompute = activation_recompute
        #: optional repro.obs MetricRegistry; spans are mirrored into it
        #: by the TraceRecorder and end-of-run footprints/iteration
        #: counters are published by run().  None (default) = no hooks.
        self.registry = registry
        self.trace = TraceRecorder(registry=registry)
        #: pipelines aborted mid-run (repro.resilience fault injection).
        self._crashed: set[int] = set()
        #: sim time of each pipeline's last completed compute span — the
        #: progress clock heartbeat detectors watch.
        self.last_progress: dict[int, float] = {}
        #: batches fully completed per pipeline (barrier passages).
        self.iterations_completed: list[int] = []
        self._stash_outstanding: dict[tuple[int, int], int] = {}
        self._act_ready = None
        self._grad_ready = None
        self._stage_done = None

    def _device_of(self, pipeline: int, stage: int) -> int:
        return self.device_map[pipeline][stage]

    # ------------------------------------------------------------------ #
    # fault injection (repro.resilience)

    def crash_pipeline(self, pipeline: int) -> None:
        """Abort one pipeline mid-iteration and let its stages drain.

        Marks the pipeline crashed and wakes every stage process of it that
        is blocked on a data dependency or batch barrier; each woken stage
        notices the flag, frees the activation stash it still holds and
        returns.  Other pipelines are untouched — they only shared device
        time with the victim.  Stages stuck inside a kernel on a *frozen*
        device cannot be woken (nothing completes on a dead device); their
        stash stays allocated, like a real dead process's memory.
        """
        if self._act_ready is None:
            raise RuntimeError("no run in progress")
        if not 0 <= pipeline < self.num_pipelines:
            raise ValueError(f"pipeline index {pipeline} out of range")
        if pipeline in self._crashed:
            return
        self._crashed.add(pipeline)
        for per_stage in (self._act_ready[pipeline], self._grad_ready[pipeline]):
            for tags in per_stage:
                for tag in tags:
                    if not tag.event.triggered:
                        tag.event.succeed()
        for per_it in self._stage_done[pipeline]:
            for ev in per_it:
                if not ev.triggered:
                    ev.succeed()

    def _drain_stage(self, pipeline: int, stage: int, device) -> None:
        """Free the stash a crashed pipeline's stage still holds."""
        key = (pipeline, stage)
        outstanding = self._stash_outstanding.pop(key, 0)
        if outstanding:
            device.memory.free(outstanding * self._stash_bytes(stage), tag="activations")

    # ------------------------------------------------------------------ #

    def run(self, iterations: int = 1, render_timeline: bool = False) -> SimIterationResult:
        sim = self.cluster.sim
        K = self.costs.num_stages
        N = self.num_pipelines
        M = self.num_micro

        try:
            weight_bytes, reference_bytes = self._allocate_weights()
        except OutOfMemoryError as oom:
            return self._oom_result(oom)

        start_time = sim.now
        comm_sent = [0.0] * K
        oom_box: list[OutOfMemoryError] = []

        # Dependency events: act_ready[p][k][it*M + i], grad_ready likewise.
        total_mb = iterations * M
        act_ready = [
            [[_TransferTag(sim.event()) for _ in range(total_mb)] for _ in range(K)]
            for _ in range(N)
        ]
        grad_ready = [
            [[_TransferTag(sim.event()) for _ in range(total_mb)] for _ in range(K)]
            for _ in range(N)
        ]
        # Per-iteration barriers for synchronous schedules.
        stage_done = [
            [[sim.event() for _ in range(K)] for _ in range(iterations)] for _ in range(N)
        ]
        # Exposed for crash_pipeline (fault injection mid-run).
        self._crashed = set()
        self._act_ready, self._grad_ready, self._stage_done = act_ready, grad_ready, stage_done
        self._stash_outstanding = {}
        self.last_progress = {p: start_time for p in range(N)}
        self.iterations_completed = [0] * N

        processes = []
        for p in range(N):
            for k in range(K):
                gen = self._stage_process(
                    sim, p, k, iterations, act_ready, grad_ready, stage_done,
                    comm_sent, oom_box,
                )
                processes.append(sim.process(gen, name=f"pipe{p}.stage{k}"))

        finish = sim.all_of(processes)
        try:
            sim.run_until_process(finish)
        except RuntimeError:
            # A stage that died on OOM starves its neighbours of events;
            # the engine reports the resulting deadlock — translate it.
            if not oom_box:
                raise
        if oom_box:
            self._free_weights(weight_bytes)
            return self._oom_result(oom_box[0])
        total = sim.now - start_time
        horizon = sim.now

        decomposition = [
            {key: v / iterations for key, v in d.items()}
            for d in self.trace.time_decomposition_all(self.cluster.num_devices)
        ]

        peak_mem = [dev.memory.peak for dev in self.cluster.devices]
        data_peak = [dev.memory.peak_by_tag.get("activations", 0) for dev in self.cluster.devices]
        avg_util = TraceRecorder.average_utilization(self.cluster, horizon) if horizon > 0 else 0.0
        curves = None
        if self.record_utilization:
            curves = np.stack(
                [
                    TraceRecorder.utilization_curve(self.cluster, dev, horizon)
                    for dev in range(self.cluster.num_devices)
                ]
            )
        timeline = (
            self.trace.render(self.cluster.num_devices, end_time=horizon)
            if render_timeline
            else ""
        )

        if self.registry is not None:
            self._publish_run_metrics(iterations, total)
        self._free_weights(weight_bytes)
        return SimIterationResult(
            batch_time=total / iterations,
            total_time=total,
            iterations=iterations,
            num_stages=K,
            num_micro=M,
            num_pipelines=N,
            decomposition=decomposition,
            comm_sent_time=[c / iterations for c in comm_sent],
            peak_memory=peak_mem,
            weight_memory=weight_bytes,
            reference_memory=reference_bytes,
            data_memory_peak=data_peak,
            avg_utilization=avg_util,
            utilization_curves=curves,
            timeline=timeline,
            trace=self.trace,
        )

    def _publish_run_metrics(self, iterations: int, total: float) -> None:
        """End-of-run telemetry: memory high-water marks per device
        (weights still allocated at this point), per-pipeline iteration
        counters and wall totals on the sim clock."""
        reg = self.registry
        for device in self.cluster.devices:
            device.publish_telemetry(reg)
        for p, done in enumerate(self.iterations_completed):
            reg.counter("sim.pipeline.iterations", pipeline=p).inc(done)
        reg.gauge("sim.run.iterations").set(iterations)
        reg.gauge("sim.run.total_seconds").set(total)
        reg.gauge("sim.run.num_micro").set(self.num_micro)
        reg.gauge("sim.run.num_pipelines").set(self.num_pipelines)
        samples = self.mb_size * self.num_micro * sum(self.iterations_completed)
        reg.counter("sim.run.samples").inc(samples)
        if total > 0:
            reg.gauge("sim.run.samples_per_second").set(samples / total)

    # ------------------------------------------------------------------ #

    def _allocate_weights(self) -> tuple[list[int], list[int]]:
        """Reserve model(+versions+optimizer+reference) memory per device.

        Returns (total bytes, reference bytes) per device; the reference
        copy is reported separately because it does not scale with the
        pipeline count (the predictor's refined Equation 8 needs this).
        """
        K = self.costs.num_stages
        out = [0] * self.cluster.num_devices
        refs = [0] * self.cluster.num_devices
        for p in range(self.num_pipelines):
            for k in range(K):
                dev_idx = self._device_of(p, k)
                versions = self.schedule.weight_versions(k, K)
                out[dev_idx] += int(
                    self.costs.param_bytes[k] * (versions + self.optimizer_state_factor)
                )
        if self.with_reference_model:
            # The reference is co-partitioned along the first pipeline.
            for k in range(K):
                dev_idx = self._device_of(0, k)
                refs[dev_idx] = self.costs.param_bytes[k]
                out[dev_idx] += refs[dev_idx]
        for dev, nbytes in zip(self.cluster.devices, out):
            dev.memory.alloc(nbytes, tag="weights")
        return out, refs

    def _free_weights(self, allocated: list[int]) -> None:
        for dev, nbytes in zip(self.cluster.devices, allocated):
            dev.memory.free(nbytes, tag="weights")

    def _oom_result(self, oom: OutOfMemoryError) -> SimIterationResult:
        K = self.costs.num_stages
        D = self.cluster.num_devices
        return SimIterationResult(
            batch_time=float("inf"),
            total_time=float("inf"),
            iterations=0,
            num_stages=K,
            num_micro=self.num_micro,
            num_pipelines=self.num_pipelines,
            decomposition=[{"gpu": 0.0, "com": 0.0, "bub": 0.0, "sync": 0.0}] * D,
            comm_sent_time=[0.0] * K,
            peak_memory=[dev.memory.capacity for dev in self.cluster.devices],
            weight_memory=[0] * D,
            reference_memory=[0] * D,
            data_memory_peak=[0] * D,
            avg_utilization=0.0,
            oom=oom,
            trace=self.trace,
        )

    # ------------------------------------------------------------------ #

    def _stage_process(
        self,
        sim: Simulator,
        pipeline: int,
        stage: int,
        iterations: int,
        act_ready,
        grad_ready,
        stage_done,
        comm_sent: list[float],
        oom_box: list[OutOfMemoryError],
    ):
        K = self.costs.num_stages
        M = self.num_micro
        device = self.cluster.devices[self._device_of(pipeline, stage)]
        ops = self.schedule.stage_ops(stage, K, M)
        sync = self.schedule.sync_at_batch_end

        # Per-stage constants, hoisted out of the event-driven hot loop.
        crashed = self._crashed
        stash_outstanding = self._stash_outstanding
        last_progress = self.last_progress
        trace_record = self.trace.record
        memory = device.memory
        run_kernel = device.run_kernel
        dev_index = device.index
        mb_size = self.mb_size
        key = (pipeline, stage)
        stash = self._stash_bytes(stage)
        fwd_flops = self.costs.fwd_flops[stage]
        bwd_flops = fwd_flops * BWD_FLOP_FACTOR
        if self.activation_recompute:
            # Re-materialize the stash: one extra forward pass.
            bwd_flops += fwd_flops
        this_dev = self._device_of(pipeline, stage)
        fwd_name = f"p{pipeline}.fwd"
        bwd_name = f"p{pipeline}.bwd"
        if stage < K - 1:
            down_dev = self._device_of(pipeline, stage + 1)
            down_bytes = self.costs.act_out_bytes[stage]
            down_link = self.cluster.link(this_dev, down_dev)
            act_wait_row = act_ready[pipeline][stage]
            act_send_row = act_ready[pipeline][stage + 1]
            grad_wait_row = grad_ready[pipeline][stage]
        else:
            act_wait_row = act_ready[pipeline][stage]
        if stage > 0:
            up_dev = self._device_of(pipeline, stage - 1)
            up_bytes = self.costs.act_out_bytes[stage - 1]
            up_link = self.cluster.link(this_dev, up_dev)
            grad_send_row = grad_ready[pipeline][stage - 1]
        # The op sequence repeats every iteration: pre-resolve kind and the
        # trace label once instead of per (iteration, op).
        op_seq = [(op.kind == "fwd", op.micro, str(op.micro + 1)) for op in ops]

        for it in range(iterations):
            if oom_box:
                return
            if pipeline in crashed:
                self._drain_stage(pipeline, stage, device)
                return
            base = it * M
            for is_fwd, micro, label in op_seq:
                if pipeline in crashed:
                    self._drain_stage(pipeline, stage, device)
                    return
                mb = base + micro
                if is_fwd:
                    # -- wait for the activation from upstream ---------------
                    if stage > 0:
                        tag = act_wait_row[mb]
                        if not tag.event.triggered:
                            yield from self._classified_wait(sim, dev_index, tag)
                        if pipeline in crashed:  # woken by the abort
                            self._drain_stage(pipeline, stage, device)
                            return
                    # -- stash activation memory -----------------------------
                    try:
                        memory.alloc(stash, tag="activations")
                    except OutOfMemoryError as oom:
                        oom_box.append(oom)
                        return
                    stash_outstanding[key] = stash_outstanding.get(key, 0) + 1
                    # -- compute ---------------------------------------------
                    t0 = sim.now
                    yield run_kernel(fwd_flops, mb_size, name=fwd_name)
                    trace_record(
                        dev_index, t0, sim.now, SpanKind.FWD, label,
                        pipeline=pipeline, stage=stage, micro=mb,
                    )
                    last_progress[pipeline] = sim.now
                    # -- ship the activation downstream (asynchronously) -----
                    if stage < K - 1:
                        self._send(
                            sim, down_link, down_bytes,
                            act_send_row[mb], comm_sent, stage,
                        )
                else:  # bwd
                    if stage < K - 1:
                        tag = grad_wait_row[mb]
                        if not tag.event.triggered:
                            yield from self._classified_wait(sim, dev_index, tag)
                        if pipeline in crashed:  # woken by the abort
                            self._drain_stage(pipeline, stage, device)
                            return
                    t0 = sim.now
                    yield run_kernel(bwd_flops, mb_size, name=bwd_name)
                    trace_record(
                        dev_index, t0, sim.now, SpanKind.BWD, label,
                        pipeline=pipeline, stage=stage, micro=mb,
                    )
                    last_progress[pipeline] = sim.now
                    memory.free(stash, tag="activations")
                    stash_outstanding[key] = stash_outstanding.get(key, 1) - 1
                    if stage > 0:
                        self._send(
                            sim, up_link, up_bytes,
                            grad_send_row[mb], comm_sent, stage,
                        )

            # ---------------- batch boundary -------------------------------
            if sync:
                # Local optimizer step (+ elastic pull & async update send for
                # AvgPipe): elementwise over the stage's weights, low demand.
                t0 = sim.now
                update_flops = self.costs.param_bytes[stage] / 4 * 3
                if self.with_reference_model:
                    update_flops *= 2  # elastic pull + reference accumulate
                yield device.compute.execute(update_flops, demand=0.25, name="opt")
                self.trace.record(device.index, t0, sim.now, SpanKind.SYNC, "opt")
                if not stage_done[pipeline][it][stage].triggered:  # abort may have fired it
                    stage_done[pipeline][it][stage].succeed()
                # All stages of this pipeline join before the next batch —
                # the semantics of a per-batch optimizer step.
                yield sim.all_of(stage_done[pipeline][it])
                if pipeline in self._crashed:
                    self._drain_stage(pipeline, stage, device)
                    return
            # Async schedules (PipeDream) roll straight into the next batch.
            if stage == 0:
                self.iterations_completed[pipeline] = it + 1

    def _stash_bytes(self, stage: int) -> int:
        """Bytes held between a micro-batch's forward and its backward."""
        if self.activation_recompute:
            # Only the stage boundary input survives; internals are rebuilt.
            boundary = self.costs.act_out_bytes[stage - 1] if stage > 0 else (
                self.costs.act_out_bytes[stage]  # first stage keeps its input batch
            )
            return int(min(boundary, self.costs.stash_bytes[stage]))
        return int(self.costs.stash_bytes[stage])

    # ------------------------------------------------------------------ #

    def _send(
        self, sim, link, nbytes: float,
        tag: "_TransferTag", comm_sent, src_stage: int,
    ) -> None:
        tag.started_at = sim.now
        t_start = sim.now
        done = link.transfer(nbytes)

        def deliver(_: Event) -> None:
            comm_sent[src_stage] += sim.now - t_start
            if not tag.event.triggered:
                tag.event.succeed()

        done.add_callback(deliver)

    def _classified_wait(self, sim, device_index: int, tag: "_TransferTag"):
        """Wait on a dependency; split the wait into BUBBLE (producer not
        even started sending) and COMM (transfer in flight) spans."""
        if tag.event.triggered:
            return
        wait_start = sim.now
        yield tag.event
        arrive = sim.now
        if arrive <= wait_start:
            return
        xfer_start = tag.started_at if tag.started_at is not None else arrive
        split = min(max(xfer_start, wait_start), arrive)
        if split > wait_start:
            self.trace.record(device_index, wait_start, split, SpanKind.BUBBLE)
        if arrive > split:
            self.trace.record(device_index, split, arrive, SpanKind.COMM)
