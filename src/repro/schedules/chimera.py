"""Chimera-style bidirectional pipelines [Li & Hoefler, SC'21].

The paper discusses Chimera as related work (§8): two pipelines run in
opposite directions over the same devices, each carrying half of the
batch's micro-batches, so one pipeline's warmup bubbles are filled by the
other's steady phase.  We model it with the executor's ``device_map``:
pipeline 0 places stage k on device k, pipeline 1 on device K-1-k, each
running a 1F1B stream over M/2 micro-batches.

Unlike AvgPipe's parallel pipelines, Chimera's two halves together form
ONE batch, so the iteration time *is* the batch time (no 1/N
amortization) and there is no statistical-efficiency change — but each
device holds two stage replicas, the memory cost the paper points out.
"""

from __future__ import annotations

from repro.schedules.base import OneFOneBSchedule
from repro.schedules.executor import PipelineSimRunner, SimIterationResult, StageCosts
from repro.sim.cluster import Cluster

__all__ = ["simulate_chimera", "chimera_device_map"]


def chimera_device_map(num_stages: int) -> list[list[int]]:
    """Down pipeline on devices 0..K-1, up pipeline on K-1..0."""
    forward = list(range(num_stages))
    return [forward, forward[::-1]]


def simulate_chimera(
    cluster: Cluster,
    stage_costs: StageCosts,
    num_micro: int,
    mb_size: float,
    iterations: int = 1,
    optimizer_state_factor: float = 2.0,
) -> SimIterationResult:
    """Run one Chimera iteration: two opposed half-pipelines per batch.

    ``num_micro`` is the total micro-batch count of the batch; each
    direction carries half.  Requires an even count.
    """
    if num_micro % 2 != 0:
        raise ValueError(f"Chimera needs an even micro-batch count, got {num_micro}")
    runner = PipelineSimRunner(
        cluster,
        OneFOneBSchedule(versions=1),
        stage_costs,
        num_micro=num_micro // 2,
        mb_size=mb_size,
        num_pipelines=2,
        with_reference_model=False,
        optimizer_state_factor=optimizer_state_factor,
        device_map=chimera_device_map(stage_costs.num_stages),
    )
    result = runner.run(iterations=iterations)
    if result.oom is not None:
        return result
    # The two "pipelines" jointly process ONE batch: undo the executor's
    # per-pipeline amortization so time_per_batch reports honestly.
    result.num_pipelines = 1
    result.num_micro = num_micro
    return result
