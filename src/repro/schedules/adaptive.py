"""Algorithm 1: adaptive advance-forward-propagation.

Starts at ``advance = 0`` (pure 1F1B) and raises it one micro-batch per
iteration while (a) the measured iteration time keeps improving
(``is_faster``) and (b) predicted activation memory stays under the
user's limit (``is_mem_available``).  The controller is pure policy — the
caller supplies a ``measure(advance) -> (batch_time, peak_mem)`` probe,
so the same logic drives both the simulator and unit tests with stubbed
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["AdaptiveAdvanceController"]


@dataclass
class AdaptiveAdvanceController:
    """Stateful Algorithm-1 controller.

    Parameters
    ----------
    num_micro:
        Upper bound on ``advance`` (advance = M degenerates to AFAB).
    memory_limit_bytes:
        The user-defined per-device limit (Algorithm 1 line 9).
    improvement_threshold:
        Relative speedup below which ``is_faster()`` reports False; the
        paper's conservative strategy stops growing as soon as gains stop.
    """

    num_micro: int
    memory_limit_bytes: float
    improvement_threshold: float = 0.005
    advance: int = 0
    _best_time: float = field(default=float("inf"), repr=False)
    _stopped: bool = field(default=False, repr=False)
    history: list[tuple[int, float, float]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.num_micro <= 0:
            raise ValueError("num_micro must be positive")
        if self.memory_limit_bytes <= 0:
            raise ValueError("memory limit must be positive")

    @property
    def stopped(self) -> bool:
        return self._stopped

    def observe(self, batch_time: float, peak_memory_bytes: float) -> int:
        """Feed one iteration's measurements; returns the advance to use
        for the *next* iteration (Algorithm 1 lines 9-10)."""
        self.history.append((self.advance, batch_time, peak_memory_bytes))
        if self._stopped:
            return self.advance
        faster = batch_time < self._best_time * (1.0 - self.improvement_threshold)
        if batch_time < self._best_time:
            self._best_time = batch_time
        mem_ok = peak_memory_bytes < self.memory_limit_bytes
        if not mem_ok:
            # The current advance already violates the user limit: settle
            # one step back (Algorithm 1's conservative strategy must never
            # end over budget).
            if self.advance > 0:
                self.advance -= 1
            self._stopped = True
        elif faster and self.advance < self.num_micro:
            self.advance += 1
        else:
            if not faster and self.advance > 0 and len(self.history) > 1:
                # The last increment did not pay off; settle one step back.
                self.advance -= 1
            self._stopped = True
        return self.advance

    def tune(self, measure: Callable[[int], tuple[float, float]], max_iters: int = 64) -> int:
        """Closed-loop tuning against a measurement probe; returns the
        settled advance value."""
        for _ in range(max_iters):
            batch_time, peak_mem = measure(self.advance)
            before = self.advance
            after = self.observe(batch_time, peak_mem)
            if self._stopped or after == before and self._stopped:
                break
            if self._stopped:
                break
        return self.advance
