"""Interleaved virtual stages (Megatron-LM's interleaved 1F1B).

A further bubble-reduction technique from the ecosystem the paper
competes in: cut the model into v*K *virtual* stages and give device d
the non-contiguous chunks {d, d+K, d+2K, ...}.  The pipeline fill then
advances one *chunk* at a time instead of one device-sized stage, so
warmup bubbles shrink by ~v at the cost of v times more inter-stage
transfers (and messier communication).

Implemented on the generic executor via ``device_map``; the op stream is
plain 1F1B over the virtual stages.  Provided as an extension/related
comparison — the paper's AvgPipe attacks the same bubbles with parallel
pipelines instead.
"""

from __future__ import annotations

from repro.graph.cost_model import LayerCost
from repro.graph.partitioner import Partition, partition_model
from repro.schedules.base import OneFOneBSchedule
from repro.schedules.executor import PipelineSimRunner, SimIterationResult, StageCosts
from repro.sim.cluster import Cluster

__all__ = ["interleaved_device_map", "simulate_interleaved"]


def interleaved_device_map(num_devices: int, virtual_factor: int) -> list[int]:
    """Device of each of the ``virtual_factor * num_devices`` stages:
    stage s runs on device ``s % num_devices`` (round-robin chunks)."""
    if virtual_factor < 1:
        raise ValueError("virtual_factor must be >= 1")
    return [s % num_devices for s in range(virtual_factor * num_devices)]


def simulate_interleaved(
    cluster: Cluster,
    layer_costs: list[LayerCost],
    num_micro: int,
    mb_size: float,
    virtual_factor: int = 2,
    iterations: int = 1,
    activation_byte_scale: float = 1.0,
    param_byte_scale: float = 1.0,
    stash_multiplier: float = 6.0,
    optimizer_state_factor: float = 2.0,
) -> SimIterationResult:
    """1F1B over ``virtual_factor x devices`` interleaved virtual stages."""
    num_stages = virtual_factor * cluster.num_devices
    if len(layer_costs) < num_stages:
        raise ValueError(
            f"{len(layer_costs)} layers cannot form {num_stages} virtual stages"
        )
    partition = partition_model(
        layer_costs,
        num_stages,
        bandwidth_bytes_per_sec=cluster.spec.inter_node_bandwidth / activation_byte_scale,
        flops_per_sec=cluster.spec.peak_flops,
    )
    stage_costs = StageCosts.from_partition(
        layer_costs, partition, mb_size,
        activation_byte_scale=activation_byte_scale,
        param_byte_scale=param_byte_scale,
        stash_multiplier=stash_multiplier,
    )
    runner = PipelineSimRunner(
        cluster,
        OneFOneBSchedule(versions=1),
        stage_costs,
        num_micro=num_micro,
        mb_size=mb_size,
        num_pipelines=1,
        optimizer_state_factor=optimizer_state_factor,
        device_map=[interleaved_device_map(cluster.num_devices, virtual_factor)],
    )
    return runner.run(iterations=iterations)
