"""Data-parallel (PyTorch-DDP style) simulation baseline.

Every device holds a full model replica and processes ``batch/K``
samples, then gradients are all-reduced.  We model the ring all-reduce:
each device ships ``2 (K-1)/K * grad_bytes`` through its ring neighbour
link; with the paper's placement the ring crosses the 1 Gbps inter-node
Ethernet, which is why DDP loses by ~4.7x in Figure 11.  Memory: full
replica + optimizer state per device — the highest footprint in
Figure 12.

Memory is *reported but not enforced* for this runner: the paper itself
shows a PyTorch footprint above the physical 32 GB on BERT (Figure 12)
while still reporting a PyTorch training time in Figure 11 (host paging /
allocator slack).  We reproduce that anomaly faithfully rather than
inventing an OOM the paper does not show.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.cost_model import LayerCost
from repro.schedules.executor import BWD_FLOP_FACTOR, OPT_STATE_FACTOR, SimIterationResult
from repro.sim.cluster import Cluster
from repro.sim.memory import OutOfMemoryError
from repro.sim.trace import SpanKind, TraceRecorder

__all__ = ["DataParallelSimRunner"]


class DataParallelSimRunner:
    """Simulates PyTorch-DDP: replicas + ring all-reduce per batch."""
    def __init__(
        self,
        cluster: Cluster,
        layer_costs: list[LayerCost],
        batch_size: int,
        optimizer_state_factor: float = OPT_STATE_FACTOR,
        activation_byte_scale: float = 1.0,
        param_byte_scale: float = 1.0,
        allreduce_inefficiency: float = 3.5,
    ) -> None:
        self.cluster = cluster
        self.costs = layer_costs
        self.batch_size = batch_size
        self.optimizer_state_factor = optimizer_state_factor
        self.activation_byte_scale = activation_byte_scale
        self.param_byte_scale = param_byte_scale
        #: DDP at 1 Gbps achieves a fraction of line rate (bucketing,
        #: protocol rounds, no overlap with the tail of backward); the
        #: factor prices that inefficiency on the all-reduce traffic.
        self.allreduce_inefficiency = allreduce_inefficiency
        self.trace = TraceRecorder()

    def run(self, iterations: int = 1) -> SimIterationResult:
        sim = self.cluster.sim
        K = self.cluster.num_devices
        per_device = self.batch_size / K
        flops = sum(c.flops_per_sample for c in self.costs) * per_device
        param_bytes = sum(c.param_bytes for c in self.costs) * self.param_byte_scale
        act_bytes = int(
            sum(c.activation_bytes_per_sample for c in self.costs)
            * per_device
            * self.activation_byte_scale
        )
        grad_traffic = 2.0 * (K - 1) / K * param_bytes * self.allreduce_inefficiency

        weight_bytes = int(param_bytes * (1 + self.optimizer_state_factor))
        for dev in self.cluster.devices:
            dev.memory.alloc(weight_bytes, tag="weights", enforce=False)

        start = sim.now
        comm_time = [0.0] * K

        def worker(k: int):
            device = self.cluster.devices[k]
            for _ in range(iterations):
                device.memory.alloc(act_bytes, tag="activations", enforce=False)
                t0 = sim.now
                yield device.run_kernel(flops, per_device, name=f"dp.f{k}")
                self.trace.record(k, t0, sim.now, SpanKind.FWD, "F")
                t0 = sim.now
                yield device.run_kernel(flops * BWD_FLOP_FACTOR, per_device, name=f"dp.b{k}")
                self.trace.record(k, t0, sim.now, SpanKind.BWD, "B")
                device.memory.free(act_bytes, tag="activations")
                # Ring all-reduce: every device's chunks traverse the node
                # boundary, so the traffic is priced on the inter-node NIC
                # (the next *node's* paired device), not the fast local link.
                t0 = sim.now
                gpn = self.cluster.spec.gpus_per_node
                nxt = (k + gpn) % K if K > gpn else (k + 1) % K
                yield self.cluster.link(k, nxt).transfer(grad_traffic, name=f"allreduce{k}")
                comm_time[k] += sim.now - t0
                self.trace.record(k, t0, sim.now, SpanKind.COMM, "ar")
                t0 = sim.now
                yield device.compute.execute(param_bytes / 4 * 3, demand=0.25, name="opt")
                self.trace.record(k, t0, sim.now, SpanKind.SYNC, "opt")

        processes = [sim.process(worker(k), name=f"dp{k}") for k in range(K)]
        sim.run_until_process(sim.all_of(processes))
        total = sim.now - start

        decomposition = [
            {key: v / iterations for key, v in self.trace.time_decomposition(k).items()}
            for k in range(K)
        ]
        peak = [dev.memory.peak for dev in self.cluster.devices]
        data_peak = [dev.memory.peak_by_tag.get("activations", 0) for dev in self.cluster.devices]
        avg_util = TraceRecorder.average_utilization(self.cluster, sim.now) if sim.now > 0 else 0.0
        for dev in self.cluster.devices:
            dev.memory.free(weight_bytes, tag="weights")
        return SimIterationResult(
            batch_time=total / iterations,
            total_time=total,
            iterations=iterations,
            num_stages=K,
            num_micro=1,
            # One *global* batch per iteration (sharded across devices), so
            # time_per_batch must NOT amortize over the device count.
            num_pipelines=1,
            decomposition=decomposition,
            comm_sent_time=[c / iterations for c in comm_time],
            peak_memory=peak,
            weight_memory=[weight_bytes] * K,
            reference_memory=[0] * K,
            data_memory_peak=data_peak,
            avg_utilization=avg_util,
        )

    def _oom_result(self, oom: OutOfMemoryError) -> SimIterationResult:
        K = self.cluster.num_devices
        return SimIterationResult(
            batch_time=float("inf"),
            total_time=float("inf"),
            iterations=0,
            num_stages=K,
            num_micro=1,
            num_pipelines=1,
            decomposition=[{"gpu": 0.0, "com": 0.0, "bub": 0.0, "sync": 0.0}] * K,
            comm_sent_time=[0.0] * K,
            peak_memory=[dev.memory.capacity for dev in self.cluster.devices],
            weight_memory=[0] * K,
            reference_memory=[0] * K,
            data_memory_peak=[0] * K,
            avg_utilization=0.0,
            oom=oom,
        )
