"""Gradcheck property tests for the layers that previously lacked them:
attention, full-sequence recurrence, normalization, and dropout in eval
mode.  All inputs are float64 and seeded (central differences need the
same example on every run)."""

import numpy as np
import pytest

from repro.nn import Dropout, LSTM, LSTMCell, LayerNorm, MultiHeadAttention
from repro.tensor import gradcheck, tensor
from repro.utils.seeding import derive_rng


def _f64(module):
    for p in module.parameters():
        p.data = p.data.astype(np.float64)
    return module


def _input(shape, tag, seed=0):
    rng = derive_rng("gradcheck", tag, seed=seed)
    return tensor(rng.standard_normal(shape), requires_grad=True, dtype=np.float64)


class TestAttentionGradients:
    def test_self_attention_input_gradient(self):
        attn = _f64(MultiHeadAttention(d_model=8, num_heads=2))
        x = _input((2, 3, 8), "attn-self")
        assert gradcheck(lambda t: attn(t), [x])

    def test_cross_attention_query_and_memory_gradients(self):
        attn = _f64(MultiHeadAttention(d_model=8, num_heads=2))
        q = _input((1, 2, 8), "attn-q")
        kv = _input((1, 4, 8), "attn-kv")
        assert gradcheck(lambda a, b: attn(a, b, b), [q, kv])

    def test_masked_attention_gradient(self):
        attn = _f64(MultiHeadAttention(d_model=4, num_heads=1))
        x = _input((1, 3, 4), "attn-mask")
        mask = np.tril(np.ones((3, 3), dtype=bool))  # causal
        assert gradcheck(lambda t: attn(t, mask=mask), [x])

    def test_projection_weight_gradients(self):
        attn = _f64(MultiHeadAttention(d_model=4, num_heads=2))
        x = _input((1, 2, 4), "attn-w")

        def run(t, _w):
            return attn(t)

        for proj in (attn.q_proj, attn.k_proj, attn.v_proj, attn.out_proj):
            assert gradcheck(run, [x, proj.weight])


class TestRecurrentGradients:
    def test_lstm_full_sequence_input_gradient(self):
        lstm = _f64(LSTM(3, 4))
        x = _input((3, 2, 3), "lstm-seq")  # (T, B, D)
        assert gradcheck(lambda t: lstm(t)[0], [x])

    def test_lstm_cell_hidden_state_gradient(self):
        cell = _f64(LSTMCell(3, 4))
        x = _input((2, 3), "lstm-x")
        h0 = _input((2, 4), "lstm-h0")
        c0 = _input((2, 4), "lstm-c0")

        def run(xt, h, c):
            h1, c1 = cell(xt, (h, c))
            return h1 + c1

        assert gradcheck(run, [x, h0, c0])

    def test_lstm_cell_weight_gradients(self):
        cell = _f64(LSTMCell(2, 3))
        x = _input((2, 2), "lstm-w")

        def run(t, _w):
            h, c = cell.init_state(2)
            h, _ = cell(t, (h, c))
            return h

        assert gradcheck(run, [x, cell.weight_ih])
        assert gradcheck(run, [x, cell.weight_hh])
        assert gradcheck(run, [x, cell.bias])


class TestNormalizationGradients:
    def test_layer_norm_input_gradient(self):
        ln = _f64(LayerNorm(6))
        x = _input((4, 6), "ln-x")
        assert gradcheck(lambda t: ln(t), [x])

    def test_layer_norm_affine_gradients(self):
        ln = _f64(LayerNorm(5))
        x = _input((3, 5), "ln-affine")

        def run(t, _p):
            return ln(t)

        assert gradcheck(run, [x, ln.weight])
        assert gradcheck(run, [x, ln.bias])

    def test_layer_norm_3d_gradient(self):
        ln = _f64(LayerNorm(4))
        x = _input((2, 3, 4), "ln-3d")
        assert gradcheck(lambda t: ln(t), [x])


class TestDropoutEvalGradients:
    def test_eval_mode_is_identity_with_exact_gradient(self):
        drop = Dropout(0.5).eval()
        x = _input((3, 5), "drop-eval")
        out = drop(x)
        np.testing.assert_array_equal(out.data, x.data)
        assert gradcheck(lambda t: drop(t), [x])
        x.zero_grad()
        out2 = drop(x)
        out2.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones_like(x.data))

    def test_train_mode_gradient_masks_match_forward(self):
        # In train mode the gradient must be the same scaled mask the
        # forward applied — checked directly (finite differences would
        # resample the mask).
        drop = Dropout(0.4)
        drop.seed(123)
        x = _input((64, 8), "drop-train")
        out = drop(x)
        mask = np.zeros_like(out.data)
        nz = out.data != 0
        mask[nz] = out.data[nz] / x.data[nz]
        out.sum().backward()
        np.testing.assert_allclose(x.grad, mask, rtol=1e-12)
