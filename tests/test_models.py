"""Model zoo: bundle flow, shapes, cost annotations, trainability signals."""

import numpy as np
import pytest

from repro.graph import model_costs, profile_layer_costs
from repro.models import (
    AWDConfig,
    BertConfig,
    GNMTConfig,
    PipelineModel,
    build_awd_lstm,
    build_bert,
    build_gnmt,
    build_workload,
)
from repro.models.registry import WORKLOADS
from repro.optim import Adam


SMALL_GNMT = GNMTConfig(vocab_size=16, embed_dim=8, hidden_dim=12, encoder_layers=3,
                        decoder_layers=2, src_len=6, tgt_len=6, dropout=0.0)
SMALL_BERT = BertConfig(vocab_size=16, d_model=8, num_heads=2, num_blocks=3, d_ff=16,
                        seq_len=9, num_classes=3, dropout=0.0)
SMALL_AWD = AWDConfig(vocab_size=10, embed_dim=8, hidden_dim=12, num_layers=2, bptt=5,
                      dropout=0.0, weight_drop=0.0)


def _gnmt_batch(n=4):
    rng = np.random.default_rng(0)
    return {
        "src": rng.integers(4, 16, size=(n, 6)),
        "tgt_in": rng.integers(4, 16, size=(n, 6)),
        "tgt_out": rng.integers(4, 16, size=(n, 6)),
    }


def _bert_batch(n=4):
    rng = np.random.default_rng(1)
    return {"tokens": rng.integers(4, 16, size=(n, 9)), "labels": rng.integers(0, 3, size=n)}


def _awd_batch(n=4):
    rng = np.random.default_rng(2)
    return {"input": rng.integers(0, 10, size=(n, 5)), "target": rng.integers(0, 10, size=(n, 5))}


class TestBundleFlow:
    @pytest.mark.parametrize(
        "build,cfg,batch",
        [
            (build_gnmt, SMALL_GNMT, _gnmt_batch()),
            (build_bert, SMALL_BERT, _bert_batch()),
            (build_awd_lstm, SMALL_AWD, _awd_batch()),
        ],
        ids=["gnmt", "bert", "awd"],
    )
    def test_loss_is_finite_scalar_and_backprops(self, build, cfg, batch):
        model = build(cfg)
        loss = model.loss(batch)
        assert loss.data.size == 1
        assert np.isfinite(loss.item())
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)

    def test_every_prefix_of_layers_is_a_valid_stage(self):
        """Stopping after any layer and resuming must reproduce the full
        forward — the property the pipeline runtime depends on."""
        model = build_gnmt(SMALL_GNMT)
        batch = _gnmt_batch()
        full = model.loss(batch).item()
        for cut in range(1, len(model.layers)):
            bundle = dict(batch)
            for layer in model.layers[:cut]:
                bundle = layer(bundle)
            for layer in model.layers[cut:]:
                bundle = layer(bundle)
            assert bundle["loss"].item() == pytest.approx(full, rel=1e-5)

    def test_bundles_do_not_leak_consumed_keys(self):
        model = build_bert(SMALL_BERT)
        bundle = model.forward(_bert_batch())
        assert "hidden" not in bundle
        assert "tokens" not in bundle
        assert set(bundle) >= {"logits", "loss", "labels"}


class TestCostAnnotations:
    @pytest.mark.parametrize(
        "model",
        [build_gnmt(SMALL_GNMT), build_bert(SMALL_BERT), build_awd_lstm(SMALL_AWD)],
        ids=["gnmt", "bert", "awd"],
    )
    def test_costs_positive(self, model):
        costs = model_costs(model)
        assert all(c.flops_per_sample >= 0 for c in costs)
        assert all(c.activation_bytes_per_sample > 0 for c in costs)
        assert sum(c.param_bytes for c in costs) == model.parameter_bytes()

    def test_analytic_ranking_matches_profiled_ranking(self):
        """The heaviest layers by analytic flops must be the slowest when
        actually executed (rank correlation, not exact timing)."""
        model = build_gnmt(GNMTConfig(vocab_size=32, encoder_layers=4, dropout=0.0))
        batch = {
            "src": np.random.default_rng(0).integers(4, 32, size=(16, 12)),
            "tgt_in": np.random.default_rng(1).integers(4, 32, size=(16, 12)),
            "tgt_out": np.random.default_rng(2).integers(4, 32, size=(16, 12)),
        }
        analytic = [c.flops_per_sample for c in model_costs(model)]
        profiled = [c.flops_per_sample for c in profile_layer_costs(model, batch, repeats=8)]
        heavy_analytic = int(np.argmax(analytic))
        # The analytically-heaviest layer is among the top-3 measured
        # (wall-clock profiling is noisy on a loaded CI machine; what
        # matters is that the annotation identifies the heavy region).
        assert heavy_analytic in np.argsort(profiled)[-3:]


class TestWorkloadRegistry:
    def test_all_workloads_run_one_step(self):
        for name, spec in WORKLOADS.items():
            model = spec.build_model().seed(0)
            loader = spec.make_train_loader(8, 0)
            batch = next(iter(loader))
            model.zero_grad()
            loss = model.loss(batch)
            loss.backward()
            opt = spec.make_optimizer(model)
            opt.step()
            assert np.isfinite(loss.item()), name

    def test_evaluate_returns_finite_metric(self):
        for name, spec in WORKLOADS.items():
            metric = spec.evaluate(spec.build_model().seed(0))
            assert np.isfinite(metric), name

    def test_target_reached_direction(self):
        gnmt = build_workload("gnmt")
        assert gnmt.target_reached(gnmt.target + 1)
        assert not gnmt.target_reached(gnmt.target - 1)
        awd = build_workload("awd")
        assert awd.target_reached(awd.target - 0.1)
        assert not awd.target_reached(awd.target + 0.1)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            build_workload("resnet")


class TestPipelineModelPlumbing:
    def test_state_dict_roundtrip_preserves_loss(self):
        m1 = build_bert(SMALL_BERT).seed(3)
        m2 = build_bert(SMALL_BERT).seed(9)
        batch = _bert_batch()
        m2.load_state_dict(m1.state_dict())
        m1.eval(), m2.eval()
        assert m1.loss(batch).item() == pytest.approx(m2.loss(batch).item(), rel=1e-6)

    def test_seed_reproducibility_of_training_step(self):
        def run():
            model = build_awd_lstm(AWDConfig(dropout=0.3, weight_drop=0.3)).seed(11)
            opt = Adam(model.parameters(), lr=1e-3)
            batch = {
                "input": np.random.default_rng(5).integers(0, 28, size=(8, 12)),
                "target": np.random.default_rng(6).integers(0, 28, size=(8, 12)),
            }
            model.zero_grad()
            model.loss(batch).backward()
            opt.step()
            return model.state_dict()

        s1, s2 = run(), run()
        for k in s1:
            assert np.array_equal(s1[k], s2[k]), k

    def test_slice_layers_validation(self):
        model = build_bert(SMALL_BERT)
        with pytest.raises(IndexError):
            model.slice_layers(3, 2)
        assert len(model.slice_layers(0, 2)) == 2

    def test_invalid_metric_mode(self):
        with pytest.raises(ValueError):
            PipelineModel(layers=build_bert(SMALL_BERT).layers, metric_mode="sideways")
