"""Elastic resize properties and the recovery-policy ladder.

The resize invariants mirror `test_core_elastic_properties`: the 1/N'
fixed point and the conservation identity must survive a membership
change, and an evict-then-immediately-rejoin must be invisible to the
reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ElasticAveragingFramework
from repro.core.checkpoint import save_trainer
from repro.core.trainer import AvgPipeTrainer
from repro.models.pipeline_model import PipelineModel
from repro.resilience import (
    EvictPipeline,
    FailureReport,
    RecoveryManager,
    RejoinPipeline,
    RestartFromCheckpoint,
    RetunePlan,
)
from tests.test_core_elastic_properties import _Probe, apply_updates, make_framework
from tests.test_core_trainers import tiny_awd_spec


def _probe_model():
    return PipelineModel(layers=[_Probe()], name="probe")


def _ref_copy(framework):
    return {k: v.copy() for k, v in framework.reference.items()}


# --------------------------------------------------------------------- #
# resize: alpha renormalization and validation


class TestResize:
    def test_auto_alpha_renormalizes(self):
        framework, _ = make_framework(4, alpha=None)
        assert framework.alpha == pytest.approx(1 / 4)
        framework.resize(3)
        assert framework.alpha == pytest.approx(1 / 3)
        framework.resize([0, 2])
        assert framework.alpha == pytest.approx(1 / 2)
        assert framework.num_parallel == 2

    def test_explicit_alpha_is_kept(self):
        framework, _ = make_framework(4, alpha=0.2)
        framework.resize(2)
        assert framework.alpha == 0.2
        framework.resize([0], alpha=0.9)
        assert framework.alpha == 0.9

    def test_resize_validation(self):
        framework, _ = make_framework(3)
        with pytest.raises(ValueError, match="at least one"):
            framework.resize([])
        with pytest.raises(ValueError, match="duplicate"):
            framework.resize([0, 0])
        with pytest.raises(ValueError, match="out of range"):
            framework.resize([0, 5])
        with pytest.raises(ValueError, match="cannot evict the last"):
            f1, _ = make_framework(1)
            f1.remove_model(0)

    def test_resize_discards_the_in_flight_round(self):
        framework, models = make_framework(3, alpha=None)
        before = framework.capture(0)
        for _, p in models[0].named_parameters():
            p.data = p.data + np.float32(1.0)
        framework.commit(0, before)
        ref0 = _ref_copy(framework)
        framework.remove_model(0)
        # The posted delta came from the victim under N=3 normalization;
        # ending a round now must not fold it into the reference.
        framework.end_iteration()
        for name in ref0:
            np.testing.assert_array_equal(framework.reference[name], ref0[name])


# --------------------------------------------------------------------- #
# resize: the elastic invariants survive


@pytest.mark.parametrize("n,drop", [(3, 1), (5, 0), (4, 2)])
def test_alpha_reciprocal_fixed_point_survives_resize(n, drop):
    """All survivors at the reference with zero updates: a round after an
    eviction must change nothing, exactly as at the original N."""
    framework, _ = make_framework(n, alpha=None)
    framework.remove_model(drop)
    assert framework.alpha == pytest.approx(1 / (n - 1))
    ref0 = _ref_copy(framework)
    states0 = [m.state_dict() for m in framework.models]
    apply_updates(framework, framework.models, [np.float32(0.0)] * (n - 1))
    for name in ref0:
        np.testing.assert_array_equal(framework.reference[name], ref0[name])
    for model, s0 in zip(framework.models, states0):
        for k, v in model.state_dict().items():
            np.testing.assert_allclose(v, s0[k], rtol=2e-7, atol=0)
    assert framework.divergence() < 1e-6


@settings(max_examples=20, deadline=None)
@given(
    updates=st.lists(st.floats(-1.0, 1.0).filter(lambda x: abs(x) > 1e-3),
                     min_size=2, max_size=4),
    victim=st.integers(0, 4),
    seed=st.integers(0, 100),
)
def test_conservation_identity_survives_resize(updates, victim, seed):
    """Evict a pipeline sitting at the consensus point (so the survivors'
    mean still equals the reference, the identity's precondition), then
    one full round at alpha = 1/N' must redistribute without creating
    mass — resize renormalized alpha and reset the accumulators
    consistently."""
    n_before = len(updates) + 1
    victim = victim % n_before
    models = [_probe_model() for _ in range(n_before)]
    rng = np.random.default_rng(seed)
    keep = [m for i, m in enumerate(models) if i != victim]
    for m in keep:  # distinct survivors: conservation must not rely on symmetry
        for _, p in m.named_parameters():
            p.data = rng.standard_normal(p.shape).astype(np.float32)
    # The victim sits at the survivors' mean, so evicting it leaves the
    # reference equal to the survivors' mean — the identity's precondition.
    victim_state = {
        name: np.mean([m.state_dict()[name] for m in keep], axis=0, dtype=np.float64)
        .astype(np.float32)
        for name in keep[0].state_dict()
    }
    models[victim].load_state_dict(victim_state)
    framework = ElasticAveragingFramework(models, alpha=None, queue_delay=0)
    framework.remove_model(victim)
    survivors = framework.models

    post_opt_total: dict[str, np.ndarray] = {}
    for i, (model, upd) in enumerate(zip(survivors, updates)):
        before = framework.capture(i)
        for name, p in model.named_parameters():
            p.data = p.data + np.float32(upd)
            post_opt_total[name] = post_opt_total.get(name, 0.0) + p.data.astype(np.float64)
        framework.commit(i, before)
    ref_before = {k: v.astype(np.float64) for k, v in framework.reference.items()}
    framework.end_iteration()

    for name in ref_before:
        total_before = post_opt_total[name] + ref_before[name]
        total_after = sum(
            dict(m.named_parameters())[name].data.astype(np.float64) for m in survivors
        ) + framework.reference[name].astype(np.float64)
        np.testing.assert_allclose(total_after, total_before, atol=1e-5)


class TestEvictThenRejoin:
    def test_reference_bitwise_unchanged(self):
        framework, models = make_framework(3, alpha=None)
        rng = np.random.default_rng(7)
        for _ in range(3):  # drift away from the symmetric start
            apply_updates(framework, models,
                          [np.float32(u) for u in rng.uniform(-1, 1, size=3)])
        ref0 = _ref_copy(framework)
        framework.remove_model(1)
        framework.add_model(_probe_model())
        assert framework.num_parallel == 3
        assert framework.alpha == pytest.approx(1 / 3)
        for name in ref0:
            np.testing.assert_array_equal(framework.reference[name], ref0[name])

    def test_newcomer_starts_at_the_reference(self):
        framework, models = make_framework(3, alpha=None)
        apply_updates(framework, models, [np.float32(u) for u in (0.5, -0.25, 1.0)])
        newcomer = _probe_model()
        framework.remove_model(2)
        framework.add_model(newcomer)
        for name, value in newcomer.state_dict().items():
            np.testing.assert_array_equal(value, framework.reference[name])

    def test_trajectory_unchanged_at_the_fixed_point(self):
        """At the fixed point, evict + rejoin + further zero-update rounds
        leave the reference exactly where it started: a churn event on a
        converged consensus is a no-op."""
        framework, _ = make_framework(3, alpha=None)
        ref0 = _ref_copy(framework)
        apply_updates(framework, framework.models, [np.float32(0.0)] * 3)
        framework.remove_model(0)
        framework.add_model(_probe_model())
        apply_updates(framework, framework.models, [np.float32(0.0)] * 3)
        for name in ref0:
            np.testing.assert_array_equal(framework.reference[name], ref0[name])

    def test_mismatched_structure_rejected(self):
        framework, _ = make_framework(2)
        wrong = PipelineModel(layers=[_Probe(), _Probe()], name="probe2")
        with pytest.raises(ValueError, match="mismatched parameter structure"):
            framework.add_model(wrong)


# --------------------------------------------------------------------- #
# trainer-level evict / rejoin


class TestTrainerElasticity:
    def test_evict_renormalizes_to_the_tuned_rule(self):
        trainer = AvgPipeTrainer(tiny_awd_spec(), seed=0, max_epochs=1,
                                 num_pipelines=3)
        trainer.train()
        trainer.evict_pipeline(1)
        assert trainer.num_pipelines == 2
        assert len(trainer.models) == len(trainer.optimizers) == 2
        assert trainer.framework.num_parallel == 2
        assert trainer.framework.alpha == pytest.approx(0.5 / 2)

    def test_cannot_evict_the_last_pipeline(self):
        trainer = AvgPipeTrainer(tiny_awd_spec(), seed=0, max_epochs=1,
                                 num_pipelines=2)
        with pytest.raises(ValueError, match="out of range"):
            trainer.evict_pipeline(5)
        trainer.evict_pipeline(0)
        with pytest.raises(RuntimeError, match="last pipeline"):
            trainer.evict_pipeline(0)

    def test_rejoin_seeds_from_reference(self):
        trainer = AvgPipeTrainer(tiny_awd_spec(), seed=0, max_epochs=1,
                                 num_pipelines=3)
        trainer.train()
        trainer.evict_pipeline(2)
        index = trainer.rejoin_pipeline()
        assert index == 2
        assert trainer.num_pipelines == 3
        assert trainer.framework.alpha == pytest.approx(0.5 / 3)
        state = trainer.models[index].state_dict()
        for name, value in trainer.framework.reference.items():
            np.testing.assert_array_equal(state[name], value)


# --------------------------------------------------------------------- #
# policies and the manager


class TestRecoveryManager:
    def _trained(self, n=3):
        trainer = AvgPipeTrainer(tiny_awd_spec(), seed=0, max_epochs=1,
                                 num_pipelines=n)
        trainer.train()
        return trainer

    def test_routes_crash_to_evict(self):
        trainer = self._trained()
        manager = RecoveryManager([RejoinPipeline(), EvictPipeline()])
        record = manager.handle(
            FailureReport("pipeline_crash", 1, detected_at=5.0), trainer, now=6.0
        )
        assert record is not None and record.policy == "evict"
        assert record.recovered_at == 6.0
        assert record.details["num_pipelines"] == 2
        assert trainer.num_pipelines == 2
        assert manager.records == [record]
        assert manager.unhandled == []

    def test_unclaimed_report_lands_in_unhandled(self):
        trainer = self._trained()
        manager = RecoveryManager([])
        report = FailureReport("pipeline_crash", 1, detected_at=5.0)
        assert manager.handle(report, trainer, now=6.0) is None
        assert manager.unhandled == [report]
        assert trainer.num_pipelines == 3  # nothing was applied

    def test_restart_from_checkpoint_policy(self, tmp_path):
        trained = self._trained(n=2)
        path = tmp_path / "ckpt.npz"
        save_trainer(trained, path)

        wrecked = AvgPipeTrainer(tiny_awd_spec(), seed=99, max_epochs=1,
                                 num_pipelines=2)
        manager = RecoveryManager([RestartFromCheckpoint(path)])
        record = manager.handle(
            FailureReport("device_crash", 0, detected_at=1.0), wrecked, now=2.0
        )
        assert record is not None and record.policy == "restart"
        for m1, m2 in zip(trained.models, wrecked.models):
            s1, s2 = m1.state_dict(), m2.state_dict()
            assert all(np.array_equal(s1[k], s2[k]) for k in s1)
        for k in trained.framework.reference:
            np.testing.assert_array_equal(
                trained.framework.reference[k], wrecked.framework.reference[k]
            )

    def test_retune_degrades_the_cluster_by_observed_severity(self):
        from repro.core.profiler import Profiler
        from repro.graph import LayerCost, partition_model
        from repro.schedules import OneFOneBSchedule
        from repro.sim import ClusterSpec

        spec = ClusterSpec(nodes=2, gpus_per_node=2)
        layer_costs = [
            LayerCost(f"l{i}", flops_per_sample=2.0e5,
                      activation_bytes_per_sample=2.0e4, param_bytes=500_000)
            for i in range(8)
        ]
        partition = partition_model(
            layer_costs, 4, bandwidth_bytes_per_sec=spec.inter_node_bandwidth,
            flops_per_sec=spec.peak_flops,
        )
        profiler = Profiler(
            layer_costs=layer_costs, partition=partition,
            schedule=OneFOneBSchedule(versions=1), cluster_spec=spec,
            batch_size=64, with_reference_model=True,
        )
        policy = RetunePlan(profiler, memory_limit_bytes=2 * 1024**3,
                            m_candidates=[8, 16], n_candidates=[1, 2])
        report = FailureReport("straggler", 2, detected_at=3.0,
                               evidence="capacity 4x below peak", severity=4.0)
        assert policy.handles(report)
        details = policy.apply(None, report)
        assert details["slowdown"] == 4.0
        assert details["m"] in (8, 16)
        assert details["n"] in (1, 2)
        assert details["measured_batch_time"] > 0
        assert policy.last_outcome is not None
        # The original profiler's cluster model is untouched.
        assert profiler.cluster_spec is spec
