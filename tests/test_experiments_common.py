"""Experiment harness plumbing: baseline runs and memory-matched AvgPipe."""

import numpy as np
import pytest

from repro.experiments.common import (
    BASELINE_ORDER,
    VARIANT_TAG,
    avgpipe_matched_to,
    run_all_baselines,
    run_baseline,
)


class TestRunBaseline:
    def test_results_cached(self):
        a = run_baseline("awd", "gpipe")
        b = run_baseline("awd", "gpipe")
        assert a is b  # lru_cache: figures share runs

    def test_all_baselines_order(self):
        runs = run_all_baselines("awd", iterations=1)
        assert [r.system for r in runs] == BASELINE_ORDER

    def test_oom_baseline_reported_not_raised(self):
        run = run_baseline("bert", "pipedream")
        assert run.oom
        assert run.result.batch_time == float("inf")

    def test_data_parallel_has_no_micro(self):
        run = run_baseline("awd", "pytorch")
        assert run.num_micro is None
        assert np.isfinite(run.time_per_batch)


class TestMatchedAvgPipe:
    @pytest.mark.parametrize("workload", ["gnmt", "awd"])
    def test_budget_respected_without_relaxation(self, workload):
        run = avgpipe_matched_to(workload, "gpipe")
        assert run.peak_memory <= run.budget_bytes * 1.001
        assert run.variant == VARIANT_TAG["gpipe"]

    def test_beats_matched_baseline_per_batch_on_gnmt(self):
        base = run_baseline("gnmt", "gpipe")
        ours = avgpipe_matched_to("gnmt", "gpipe")
        assert ours.time_per_batch < base.time_per_batch

    def test_bert_relaxation_is_reported_when_needed(self):
        run = avgpipe_matched_to("bert", "gpipe")
        # Under our conservative accounting the paper's N=2 needs a
        # relaxed budget on BERT (DESIGN.md item 5); whichever way the
        # search lands, the relaxation must be explicit and bounded.
        assert run.budget_relaxation >= 1.0
        assert run.budget_relaxation < 3.0
        assert run.peak_memory <= run.budget_bytes * 1.001

    def test_matched_to_oom_baseline_uses_capacity(self):
        from repro.core.simcfg import calibration_for

        run = avgpipe_matched_to("bert", "pipedream")
        assert run.budget_bytes <= calibration_for("bert").memory_capacity_bytes * 3
