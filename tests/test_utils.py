"""Utilities: seeding, statistics, tables, Gantt rendering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils import (
    RunningMean,
    RunningStat,
    SeedSequence,
    derive_rng,
    format_table,
    geometric_mean,
    render_gantt,
    set_global_seed,
    speedup,
)
from repro.utils.timeline_render import TimelineSpan


class TestSeeding:
    def test_same_tags_same_stream(self):
        a = derive_rng("x", 1, seed=42).random(5)
        b = derive_rng("x", 1, seed=42).random(5)
        assert np.array_equal(a, b)

    def test_different_tags_different_streams(self):
        a = derive_rng("x", 1, seed=42).random(5)
        b = derive_rng("x", 2, seed=42).random(5)
        assert not np.array_equal(a, b)

    def test_global_seed_fallback(self):
        set_global_seed(7)
        a = derive_rng("y").random(3)
        set_global_seed(7)
        b = derive_rng("y").random(3)
        set_global_seed(0)
        assert np.array_equal(a, b)

    def test_seed_sequence_children_independent(self):
        root = SeedSequence(5)
        a = root.child("a").rng().random(4)
        b = root.child("b").rng().random(4)
        assert not np.array_equal(a, b)

    def test_tag_order_matters(self):
        a = derive_rng("a", "b", seed=1).random(3)
        b = derive_rng("b", "a", seed=1).random(3)
        assert not np.array_equal(a, b)

    def test_integer_is_63_bit(self):
        assert 0 <= SeedSequence(3).child("z").integer() < 2**63


class TestStats:
    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50))
    def test_running_mean_matches_numpy(self, values):
        rm = RunningMean()
        for v in values:
            rm.update(v)
        assert rm.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)

    def test_running_mean_merge(self):
        a, b = RunningMean(), RunningMean()
        for v in [1.0, 2.0]:
            a.update(v)
        for v in [3.0, 4.0, 5.0]:
            b.update(v)
        a.merge(b)
        assert a.mean == pytest.approx(3.0)
        assert a.count == 5

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.floats(-100, 100), min_size=2, max_size=40))
    def test_running_stat_matches_numpy(self, values):
        rs = RunningStat()
        for v in values:
            rs.update(v)
        assert rs.mean == pytest.approx(np.mean(values), abs=1e-9)
        assert rs.variance == pytest.approx(np.var(values, ddof=1), rel=1e-6, abs=1e-9)
        assert rs.min == min(values) and rs.max == max(values)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    def test_speedup(self):
        assert speedup(10.0, 5.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "t"], [["gpipe", 1.2345], ["avgpipe", 0.5]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "gpipe" in lines[2]

    def test_title(self):
        out = format_table(["a"], [[1]], title="Figure 11")
        assert out.splitlines()[0] == "Figure 11"

    def test_nan_rendered_as_dash(self):
        out = format_table(["a"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestGantt:
    def test_rows_and_scale(self):
        spans = [
            TimelineSpan(0, 0.0, 1.0, "fwd", "1"),
            TimelineSpan(1, 1.0, 2.0, "bwd", "1"),
            TimelineSpan(0, 2.0, 4.0, "comm", ""),
        ]
        art = render_gantt(spans, 2, width=40)
        lines = art.splitlines()
        assert len(lines) == 3
        assert "~" in lines[0]  # comm fill

    def test_empty(self):
        assert "empty" in render_gantt([], 2)

    def test_device_out_of_range(self):
        with pytest.raises(ValueError):
            render_gantt([TimelineSpan(5, 0, 1, "fwd", "1")], 2)


class TestGanttEdgeCases:
    def test_overlapping_spans_render_without_error(self):
        spans = [
            TimelineSpan(0, 0.0, 2.0, "fwd", "1"),
            TimelineSpan(0, 1.0, 3.0, "bwd", "2"),
        ]
        art = render_gantt(spans, 1, width=30)
        assert "|" in art

    def test_explicit_end_time_extends_axis(self):
        spans = [TimelineSpan(0, 0.0, 1.0, "fwd", "1")]
        art = render_gantt(spans, 1, width=20, end_time=10.0)
        assert "t=10" in art

    def test_zero_horizon_rejected(self):
        with pytest.raises(ValueError):
            render_gantt([TimelineSpan(0, 0.0, 0.0, "fwd", "1")], 1, end_time=0.0)
