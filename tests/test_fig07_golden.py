"""Golden regression test for the Figure 7 artifact.

The benchmark suite regenerates ``benchmarks/results/fig07_schedule_timelines.txt``
on every run; this test pins it.  It re-runs the (fast, K=2, M=4)
experiment, re-renders the table and the ASCII timelines exactly the way
the benchmark does, and compares byte-for-byte against the checked-in
artifact.  Any drift in the simulator, the schedules, or the timeline
renderer that changes the figure now fails loudly here instead of
silently rewriting the golden file on the next benchmark run.
"""

import pathlib

from repro.experiments import run_fig07
from repro.utils import format_table

GOLDEN = (
    pathlib.Path(__file__).parent.parent
    / "benchmarks"
    / "results"
    / "fig07_schedule_timelines.txt"
)


def render_fig07() -> str:
    """Render the artifact exactly as benchmarks/test_fig07_schedule_timelines.py emits it."""
    rows = run_fig07()["rows"]
    table = format_table(
        ["schedule", "batch time (ms)", "peak mem (MiB)", "act stash (MiB)"],
        [[r.schedule, r.batch_time * 1e3, r.peak_memory / 2**20, r.stash_peak / 2**20] for r in rows],
        title="Figure 7 — one batch, K=2, M=4",
    )
    art = "\n\n".join(f"{r.schedule}:\n{r.timeline}" for r in rows)
    return table + "\n\n" + art + "\n"


def test_fig07_artifact_matches_golden():
    assert GOLDEN.exists(), f"golden artifact missing: {GOLDEN}"
    fresh = render_fig07()
    golden = GOLDEN.read_text()
    assert fresh == golden, (
        "fig07 artifact drifted from benchmarks/results/fig07_schedule_timelines.txt; "
        "if the change is intentional, regenerate it with "
        "`PYTHONPATH=src python -m pytest benchmarks/test_fig07_schedule_timelines.py`"
    )


def test_fig07_render_is_deterministic():
    assert render_fig07() == render_fig07()
