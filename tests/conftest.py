"""Shared test configuration: deterministic RNG per test.

Two sources of cross-run flakiness are closed here:

* legacy ``np.random.*`` calls (global-state NumPy) — the autouse fixture
  reseeds the global state per test from a hash of the test's nodeid, so
  every test sees the same stream on every run and reordering tests
  cannot shift another test's randomness;
* hypothesis — the ``repro`` profile derandomizes example generation and
  disables the example database, so property tests explore the same
  examples on every run instead of accumulating machine-local failures.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import settings

from repro.utils.seeding import set_global_seed

settings.register_profile("repro", derandomize=True, database=None)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _seed_per_test(request):
    digest = hashlib.blake2b(request.node.nodeid.encode(), digest_size=4).digest()
    seed = int.from_bytes(digest, "big")
    np.random.seed(seed)
    set_global_seed(0)
    yield
