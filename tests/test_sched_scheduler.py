"""Scheduler event loop, occupancy ledger, policies and determinism."""

import pytest

from repro.obs.registry import MetricRegistry
from repro.sim.cluster import ClusterSpec

from repro.sched import (
    ClusterScheduler,
    Job,
    JobSpec,
    JobState,
    SchedulerError,
    run_scenario,
)
from repro.sched.scheduler import _Occupancy

GIB = 2**30


def awd_job(job_id, submit_time=0.0, batches=8, stages=2, priority=0,
            pipelines=1, max_pipelines=None, weight=None):
    return Job(
        spec=JobSpec(
            job_id=job_id,
            family="awd",
            num_stages=stages,
            num_micro=4,
            total_batches=batches,
            priority=priority,
            weight=float(weight if weight is not None else priority + 1),
            pipelines=pipelines,
            min_pipelines=1,
            max_pipelines=max_pipelines if max_pipelines is not None else pipelines,
            submit_time=submit_time,
        )
    )


def run_jobs(jobs, policy="fifo", devices=4, memory=2 * GIB):
    spec = ClusterSpec(nodes=devices, gpus_per_node=1, memory_bytes=memory)
    sched = ClusterScheduler(spec, jobs, policy, registry=MetricRegistry())
    return sched.run()


# --------------------------------------------------------------------- #
# occupancy ledger


def test_occupancy_rejects_double_claim_and_foreign_release():
    occ = _Occupancy(num_devices=4)
    occ.claim([0, 1], "a")
    assert occ.free == [2, 3]
    with pytest.raises(SchedulerError, match="already owned"):
        occ.claim([1], "b")
    with pytest.raises(SchedulerError, match="not owned"):
        occ.release([2], "a")
    with pytest.raises(SchedulerError, match="not owned"):
        occ.release([0], "b")
    occ.release([0, 1], "a")
    assert occ.free == [0, 1, 2, 3]


# --------------------------------------------------------------------- #
# event loop basics


def test_single_job_runs_to_completion():
    result = run_jobs([awd_job("j00", batches=8)])
    (job,) = result.jobs
    assert job.state == JobState.DONE
    assert job.batches_done == 8
    assert job.queue_wait == 0.0
    assert result.makespan > 0
    # one 2-device job on a 4-device cluster: exactly half the cluster busy
    assert result.utilization == pytest.approx(0.5)
    assert result.busy_device_seconds == pytest.approx(job.device_seconds)


def test_infeasible_job_is_rejected_at_submit():
    # 5 stages can never fit 4 devices, even empty
    result = run_jobs([awd_job("j00", stages=5)])
    (job,) = result.jobs
    assert job.state == JobState.REJECTED
    assert result.registry.value("sched.jobs", event="rejected") == 1
    assert not job.waits


def test_queued_job_waits_for_capacity():
    # two 2-chain jobs on 4 devices: the second waits for the first
    jobs = [
        awd_job("j00", submit_time=0.0, pipelines=2, batches=20),
        awd_job("j01", submit_time=0.0, pipelines=2, batches=8),
    ]
    result = run_jobs(jobs)
    j0, j1 = result.jobs
    assert j0.queue_wait == 0.0
    assert j1.queue_wait == pytest.approx(j0.finished_at)
    assert j1.state == JobState.DONE


def test_device_time_is_conserved():
    result = run_scenario("rush", "fair", seed=0)
    per_job = sum(j.device_seconds for j in result.jobs)
    assert per_job == pytest.approx(result.busy_device_seconds, rel=1e-9)


def test_completions_beat_arrivals_on_ties():
    """A completion and an arrival at the same instant: the finishing
    job's devices must be released before the arrival is considered, so
    the arrival admits immediately instead of queueing behind a corpse."""
    first = awd_job("j00", submit_time=0.0, pipelines=2, batches=8)
    probe = run_jobs([first])
    finish = probe.jobs[0].finished_at
    jobs = [
        awd_job("j00", submit_time=0.0, pipelines=2, batches=8),
        awd_job("j01", submit_time=finish, pipelines=2, batches=8),
    ]
    result = run_jobs(jobs)
    assert result.jobs[1].queue_wait == 0.0


# --------------------------------------------------------------------- #
# policies


def test_fifo_holds_the_requested_n():
    jobs = [awd_job("j00", pipelines=2, max_pipelines=4, batches=20)]
    result = run_jobs(jobs, policy="fifo")
    (job,) = result.jobs
    assert job.n_label() == "2"  # never grown despite free devices
    assert not job.was_resized


def test_fair_share_grows_into_free_devices():
    jobs = [awd_job("j00", pipelines=1, max_pipelines=2, batches=40)]
    result = run_jobs(jobs, policy="fair")
    (job,) = result.jobs
    assert job.trajectory[0][1] == "admit"
    assert any(kind == "grow" for _, kind, _ in job.trajectory)
    assert result.registry.value("sched.resize", direction="grow") >= 1


def test_fair_share_shrinks_to_admit_an_arrival():
    """An incumbent holding the whole cluster above its floor must give a
    chain back so a newcomer with a fair claim can start."""
    jobs = [
        awd_job("j00", submit_time=0.0, pipelines=2, batches=400),
        awd_job("j01", submit_time=0.5, pipelines=1, batches=8),
    ]
    result = run_jobs(jobs, policy="fair")
    j0, j1 = result.jobs
    assert any(kind == "shrink" for _, kind, _ in j0.trajectory)
    assert j1.state == JobState.DONE
    # the newcomer started long before the incumbent's solo finish time
    assert j1.queue_wait < 1.0


def test_priority_preempts_lower_priority():
    jobs = [
        awd_job("j00", submit_time=0.0, priority=0, pipelines=2, batches=400),
        awd_job("j01", submit_time=0.5, priority=2, pipelines=2, batches=8),
    ]
    result = run_jobs(jobs, policy="priority")
    j0, j1 = result.jobs
    assert j0.was_preempted
    assert j0.checkpoints and j0.checkpoints[0].startswith("ckpt-v2-j00")
    assert j1.queue_wait == pytest.approx(0.5 - 0.5)  # admitted on arrival
    # the victim resumed and still finished all its work
    assert j0.state == JobState.DONE
    assert j0.batches_done == 400
    resumes = [k for _, k, _ in j0.trajectory if k == "resume"]
    assert resumes == ["resume"]
    assert result.registry.value("sched.jobs", event="preempted") == 1
    assert result.registry.value("sched.jobs", event="resumed") == 1


def test_priority_does_not_preempt_equal_priority():
    jobs = [
        awd_job("j00", submit_time=0.0, priority=1, pipelines=2, batches=40),
        awd_job("j01", submit_time=0.5, priority=1, pipelines=2, batches=8),
    ]
    result = run_jobs(jobs, policy="priority")
    assert not result.jobs[0].was_preempted
    assert result.jobs[1].queue_wait > 0


def test_unknown_policy_raises():
    with pytest.raises(KeyError, match="unknown policy"):
        run_jobs([awd_job("j00")], policy="lottery")


# --------------------------------------------------------------------- #
# determinism (the satellite's byte-identity requirement)


@pytest.mark.parametrize("policy", ["fifo", "priority", "fair"])
def test_same_seed_same_scenario_is_byte_identical(policy):
    a = run_scenario("smoke", policy, seed=0)
    b = run_scenario("smoke", policy, seed=0)
    assert a.log_text() == b.log_text()
    assert a.queue_wait_summary() == b.queue_wait_summary()
    assert a.makespan == b.makespan
    assert a.utilization == b.utilization
    assert a.registry.snapshot() == b.registry.snapshot()


def test_different_seeds_differ():
    a = run_scenario("smoke", "fair", seed=0)
    b = run_scenario("smoke", "fair", seed=1)
    assert a.log_text() != b.log_text()


def test_acceptance_elastic_beats_static_fifo():
    """ISSUE 9's acceptance criterion on the canned seeded scenario."""
    fifo = run_scenario("smoke", "fifo", seed=0)
    fair = run_scenario("smoke", "fair", seed=0)
    assert fair.utilization > fifo.utilization
    assert fair.queue_wait_summary()["p95"] < fifo.queue_wait_summary()["p95"]


def test_sched_metrics_published():
    result = run_scenario("smoke", "fair", seed=0)
    reg = result.registry
    assert reg.value("sched.jobs", event="submitted") == 7
    assert reg.value("sched.cluster_util") == pytest.approx(result.utilization)
    assert reg.value("sched.makespan") == pytest.approx(result.makespan)
    hist = reg.get("sched.queue_wait")
    assert hist is not None and hist.summary()["count"] == 7
    assert reg.get("sched.job_throughput").summary()["count"] == 7
